"""F1 — Fig. 1: the distributed data analytics system.

Stands up the paper's deployment — client nodes, a cloud analytics
server, a home data store and AI web services on a latency/bandwidth
simulated network — and measures: (a) distributed evaluation makespan
under the two scheduler policies (the DESIGN.md scheduler ablation),
(b) local-vs-remote data access latency, and (c) web-service
round-trips.
"""

import numpy as np
import pytest

from conftest import print_table, report
from repro.core import GraphEvaluator, prepare_regression_graph
from repro.distributed import (
    AnomalyScoringService,
    ClientNode,
    CloudAnalyticsServer,
    DistributedScheduler,
    HomeDataStore,
    NetworkLink,
    SimulatedNetwork,
)
from repro.ml.model_selection import KFold


def build_world():
    net = SimulatedNetwork(
        default_link=NetworkLink(latency_s=0.02, bandwidth_bps=5e6)
    )
    store = HomeDataStore("store", clock=net.clock)
    net.register("store", store)
    nodes = [
        ClientNode("client-0", net, compute_speed=1.0),
        ClientNode("client-1", net, compute_speed=0.5),
        CloudAnalyticsServer("cloud-0", net, compute_speed=4.0),
    ]
    return net, store, nodes


@pytest.mark.parametrize("policy", ["round_robin", "weighted"])
def test_distributed_sweep_policies(benchmark, regression_xy, policy):
    X, y = regression_xy
    _, _, nodes = build_world()
    graph = prepare_regression_graph(fast=True, k_best=4)
    evaluator = GraphEvaluator(graph, cv=KFold(2, random_state=0))
    jobs = list(evaluator.iter_jobs(X, y))
    scheduler = DistributedScheduler(nodes, policy=policy)
    outcome = benchmark.pedantic(
        lambda: scheduler.execute(evaluator, jobs, X, y),
        rounds=1,
        iterations=1,
    )
    assert len(outcome.results) == 36
    print_table(
        f"Fig. 1 reproduction — distributed sweep, policy={policy}",
        ["node", "jobs", "busy (sim s)"],
        [
            [name, len(keys), f"{outcome.node_busy_seconds[name]:.3f}"]
            for name, keys in sorted(outcome.assignment.items())
        ],
    )
    report(
        f"makespan {outcome.makespan_seconds:.3f}s, total work "
        f"{outcome.total_compute_seconds:.3f}s, speedup "
        f"{outcome.speedup:.2f}x"
    )


def test_scheduler_ablation_weighted_beats_round_robin(benchmark, regression_xy):
    """DESIGN.md ablation: with heterogeneous node *speeds* (1.0 / 0.5 /
    4.0) and a stream of uniform jobs, round-robin lets the slowest node
    set the makespan while the ETA-greedy weighted policy routes work in
    proportion to speed.  (With wildly heterogeneous job costs the
    advantage is noisier — that regime is exercised by
    ``test_distributed_sweep_policies``.)"""
    X, y = regression_xy
    from repro.core import TransformerEstimatorGraph
    from repro.ml.ensemble import RandomForestRegressor

    graph = TransformerEstimatorGraph()
    graph.add_regression_models(
        [RandomForestRegressor(n_estimators=8, random_state=0)]
    )
    evaluator = GraphEvaluator(graph, cv=KFold(2, random_state=0))
    jobs = list(evaluator.iter_jobs(X, y)) * 30  # 30 uniform jobs

    def run_both():
        makespans = {}
        for policy in ("round_robin", "weighted"):
            _, _, nodes = build_world()
            outcome = DistributedScheduler(nodes, policy=policy).execute(
                evaluator, jobs, X, y
            )
            makespans[policy] = outcome.makespan_seconds
        return makespans

    makespans = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print_table(
        "Scheduler ablation — makespan by policy "
        "(node speeds 1.0/0.5/4.0, 30 uniform jobs)",
        ["policy", "makespan (sim s)"],
        [[p, f"{m:.3f}"] for p, m in makespans.items()],
    )
    # theory: round_robin ~ 10 jobs on the 0.5x node; weighted spreads
    # by speed for ~2x+ lower makespan.  Allow generous noise margin.
    assert makespans["weighted"] < makespans["round_robin"]


def test_local_vs_remote_data_access(benchmark, regression_xy):
    """'That can reduce the latency since the client will not have to
    communicate with remote cloud nodes.'"""
    X, y = regression_xy
    net, store, nodes = build_world()
    client = nodes[0]
    store.put("dataset", {"X": X, "y": y})
    client.pull(store, "dataset")  # warm local cache

    def local_read():
        return client.payload("dataset")

    benchmark(local_read)
    # remote pull cost, modeled
    net.reset_accounting()
    fresh = ClientNode("client-fresh", net)
    fresh.pull(store, "dataset")
    remote_seconds = net.total_seconds()
    report(
        f"\nremote first pull: {remote_seconds * 1000:.1f} ms simulated "
        f"({net.total_bytes():,} bytes); local cached read: free"
    )


def test_web_service_roundtrip(benchmark, regression_xy):
    X, _ = regression_xy
    net, _, _ = build_world()
    service = AnomalyScoringService("watson-like", net, free_calls=10**9)
    response = benchmark(lambda: service.call("client-0", X[:50]))
    assert response.result.shape == (50,)
