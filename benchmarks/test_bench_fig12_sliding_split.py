"""F12 — Fig. 12: TimeSeriesSlidingSplit cross validation.

"we use the size of a training and validation set with a buffer window
between them ... The windows slide across time to include future data in
the training and validation sets for k iterations."  Verifies the
no-leakage property, prints the sliding-window layout, and benchmarks
split generation and a CV run under it.
"""

import numpy as np

from conftest import print_table
from repro.ml.model_selection import TimeSeriesSlidingSplit, cross_validate
from repro.timeseries import ZeroModel


def test_split_generation(benchmark):
    splitter = TimeSeriesSlidingSplit(
        n_splits=5, train_size=400, val_size=100, buffer_size=20
    )
    splits = benchmark(lambda: list(splitter.split(2000)))
    assert len(splits) == 5


def test_cv_under_sliding_split(benchmark, sensor_frames):
    X, y = sensor_frames
    splitter = TimeSeriesSlidingSplit(n_splits=4, buffer_size=3)
    result = benchmark(
        lambda: cross_validate(ZeroModel(), X, y, cv=splitter, metric="rmse")
    )
    assert len(result.fold_scores) == 4


def test_layout_and_no_leakage(benchmark):
    n = 1000
    splitter = TimeSeriesSlidingSplit(
        n_splits=4, train_size=300, val_size=80, buffer_size=25
    )
    splits = benchmark(lambda: list(splitter.split(n)))
    rows = []
    for i, (train, val) in enumerate(splits):
        gap = val.min() - train.max() - 1
        assert train.max() < val.min()  # strictly no leakage
        assert gap == 25  # the buffer window of Fig. 12
        rows.append(
            [
                i + 1,
                f"[{train.min():4d}, {train.max():4d}]",
                f"{gap}",
                f"[{val.min():4d}, {val.max():4d}]",
            ]
        )
    print_table(
        "Fig. 12 reproduction — sliding train/buffer/validation windows "
        f"(series length {n})",
        ["iteration", "train window", "buffer", "validation window"],
        rows,
    )
