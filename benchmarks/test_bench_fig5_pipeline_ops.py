"""F5 — Fig. 5: pipeline training vs prediction operations.

Training runs "fit & transform" on internal nodes and "fit" on the last
node; prediction runs "transform" on internal nodes and "predict" on the
trained model.  Benchmarks both operations on the sample pipeline of
Fig. 5 (robustscaler -> Select-k -> MLPRegressor, our DNN).
"""

from conftest import print_table
from repro.core import Pipeline
from repro.ml.feature_selection import SelectKBest
from repro.ml.preprocessing import RobustScaler
from repro.nn import DNNRegressor


def fig5_pipeline():
    return Pipeline(
        [
            ("robustscaler", RobustScaler()),
            ("select_k", SelectKBest(k=4)),
            ("mlpregressor", DNNRegressor(epochs=8, random_state=0)),
        ]
    )


def test_pipeline_fit(benchmark, regression_xy):
    X, y = regression_xy
    pipeline = fig5_pipeline()
    benchmark.pedantic(lambda: pipeline.fit(X, y), rounds=3, iterations=1)


def test_pipeline_predict(benchmark, regression_xy):
    X, y = regression_xy
    pipeline = fig5_pipeline().fit(X, y)
    predictions = benchmark(lambda: pipeline.predict(X))
    assert predictions.shape == (len(X),)
    print_table(
        "Fig. 5 reproduction — operations on the sample pipeline",
        ["operation", "internal nodes", "final node"],
        [
            ["pipeline.fit", "fit & transform", "fit"],
            ["pipeline.predict", "transform", "predict"],
        ],
    )


def test_transform_prefix_only(benchmark, regression_xy):
    """The transformer prefix alone (no estimator) — the data-refresh
    path of Fig. 5's internal nodes."""
    X, y = regression_xy
    pipeline = fig5_pipeline().fit(X, y)
    Z = benchmark(lambda: pipeline.transform(X))
    assert Z.shape == (len(X), 4)
