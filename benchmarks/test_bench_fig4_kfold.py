"""F4 — Fig. 4: K-fold cross-validation evaluation.

"the total number of Pipelines for evaluation, using a K-Fold
cross-validation strategy, is now K times higher" — verifies the K-times
cost multiplier and the K-models/K-estimates averaging of Fig. 4.
"""

import time

import pytest

from conftest import print_table
from repro.ml.linear import LinearRegression
from repro.ml.model_selection import KFold, cross_validate
from repro.ml.tree import DecisionTreeRegressor


@pytest.mark.parametrize("k", [2, 5, 10])
def test_kfold_cost_scales_with_k(benchmark, regression_xy, k):
    X, y = regression_xy
    model = DecisionTreeRegressor(max_depth=6, random_state=0)
    result = benchmark(
        lambda: cross_validate(model, X, y, cv=KFold(k, random_state=0))
    )
    assert len(result.fold_scores) == k


def test_k_models_k_estimates_averaged(benchmark, regression_xy):
    """Fig. 4's semantics: K fitted models, K scores, mean reported."""
    X, y = regression_xy
    result = benchmark(
        lambda: cross_validate(
            LinearRegression(),
            X,
            y,
            cv=KFold(5, random_state=0),
            keep_models=True,
        )
    )
    assert len(result.models) == 5
    assert len(result.fold_scores) == 5

    # Reproduce the cost-multiplier series for the report.
    rows = []
    for k in (2, 3, 5, 10):
        started = time.perf_counter()
        cross_validate(
            DecisionTreeRegressor(max_depth=6, random_state=0),
            X,
            y,
            cv=KFold(k, random_state=0),
        )
        rows.append([k, f"{time.perf_counter() - started:.4f}s"])
    print_table(
        "Fig. 4 reproduction — evaluation cost vs K",
        ["K", "wall time (1 pipeline)"],
        rows,
    )
