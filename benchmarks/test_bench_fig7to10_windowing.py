"""F6-F10 — Figs. 6-10: time-series framing and the four windowing
transformers.

Reproduces the shape algebra of the figures: L-length series with v
variables and history p yields cascaded windows (n, p, v) [Fig. 7],
flattened windows (n, p*v) [Fig. 8], IID rows (n, v) [Fig. 9] and the
untouched pass-through [Fig. 10]; benchmarks each transformation's
throughput.
"""

import numpy as np
import pytest

from conftest import print_table
from repro.datasets import make_sensor_series
from repro.timeseries import (
    CascadedWindows,
    FlatWindowing,
    TSAsIID,
    TSAsIs,
    make_supervised,
)

L, V, P = 2000, 4, 24


@pytest.fixture(scope="module")
def big_frames():
    series = make_sensor_series(length=L, n_variables=V, random_state=0)
    return make_supervised(series, history=P)


def test_framing_throughput(benchmark):
    series = make_sensor_series(length=L, n_variables=V, random_state=0)
    X, y = benchmark(lambda: make_supervised(series, history=P))
    assert X.shape == (L - P, P, V)  # Fig. 6/7 count: L - p windows


@pytest.mark.parametrize(
    "figure,transformer,expected_shape",
    [
        ("Fig. 7 CascadedWindows", CascadedWindows(), (L - P, P, V)),
        ("Fig. 8 FlatWindowing", FlatWindowing(), (L - P, P * V)),
        ("Fig. 9 TS-as-IID", TSAsIID(), (L - P, V)),
        ("Fig. 10 TS-as-is", TSAsIs(), (L - P, P, V)),
    ],
    ids=["cascaded", "flat", "iid", "asis"],
)
def test_windowing_transform(benchmark, big_frames, figure, transformer, expected_shape):
    X, _ = big_frames
    out = benchmark(lambda: transformer.fit(X).transform(X))
    assert out.shape == expected_shape


def test_shape_algebra_report(benchmark, big_frames):
    X, y = big_frames
    benchmark(lambda: CascadedWindows().fit_transform(X))
    rows = [
        ["input series", f"({L}, {V})", "Fig. 6"],
        ["cascaded windows", f"{CascadedWindows().fit_transform(X).shape}", "Fig. 7: (L-p, p, v)"],
        ["flat windows", f"{FlatWindowing().fit_transform(X).shape}", "Fig. 8: (L-p, p*v)"],
        ["TS-as-IID", f"{TSAsIID().fit_transform(X).shape}", "Fig. 9: (L-p, v)"],
        ["TS-as-is", f"{TSAsIs().fit_transform(X).shape}", "Fig. 10: untouched"],
        ["labels", f"{y.shape}", "next-step target"],
    ]
    print_table(
        "Figs. 6-10 reproduction — windowing shape algebra "
        f"(L={L}, v={V}, p={P})",
        ["representation", "shape", "paper reference"],
        rows,
    )
