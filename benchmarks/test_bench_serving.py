"""SERVE — multi-tenant serving under concurrent load.

Drives the :class:`repro.serve.AnalyticsService` front door with
hundreds of concurrent simulated clients submitting a mixed pool of
Fig. 3 (regression TEG) and Fig. 11 (time-series TEG) workloads, via
the bundled :class:`repro.serve.LoadGenerator`.  The workload pool is
deliberately small relative to the client count: a handful of sweeps
compute cold and everything else lands on the shared artifact store,
so the bench exercises exactly the serving-layer story — admission
control shedding a burst, weighted-fair scheduling draining it, and
cross-tenant result reuse making repeat jobs cheap.

Summary lands in ``BENCH_serving.json`` at the repo root: p50/p99
submit-to-terminal latency, sustained jobs/sec, admission-reject rate,
reuse hit rate and the serve counter block.  Gates: admission control
must demonstrably shed load under the burst (reject rate > 0) and no
admitted job may be lost (every admitted job reaches a terminal
state).

Environment knobs (the CI smoke leg turns these down):

* ``REPRO_SERVE_CLIENTS``     — concurrent clients (default 200).
* ``REPRO_SERVE_QUEUE``       — admission queue depth (default 32).
* ``REPRO_SERVE_CONCURRENCY`` — service worker tasks (default 2).
* ``REPRO_SERVE_JOBS``        — jobs per client (default 1).
"""

import asyncio
import os

from conftest import bench_extras, print_table, record_engine
from conftest import report as bench_report
from repro.core import prepare_regression_graph
from repro.ml.model_selection import KFold, TimeSeriesSlidingSplit
from repro.serve import AnalyticsService, JobRequest, LoadGenerator
from repro.timeseries.pipeline import build_time_series_graph

CLIENTS = int(os.environ.get("REPRO_SERVE_CLIENTS", "200"))
QUEUE_DEPTH = int(os.environ.get("REPRO_SERVE_QUEUE", "32"))
CONCURRENCY = int(os.environ.get("REPRO_SERVE_CONCURRENCY", "2"))
JOBS_PER_CLIENT = int(os.environ.get("REPRO_SERVE_JOBS", "1"))


def build_workloads(regression_xy, sensor_frames):
    """A small mixed pool of Fig. 3 / Fig. 11 request variants.

    Two dataset slices per graph family = four distinct computations;
    every client draws from this pool, so the first submission of each
    variant computes cold and the rest reuse through the store.
    """
    Xr, yr = regression_xy
    Xt, yt = sensor_frames
    fig3 = prepare_regression_graph(fast=True, k_best=4)
    fig11 = build_time_series_graph(fast=True, random_state=0)
    variants = [
        ("fig3_full", fig3, Xr, yr, KFold(2, random_state=0)),
        ("fig3_half", fig3, Xr[:120], yr[:120], KFold(2, random_state=0)),
        (
            "fig11_full",
            fig11,
            Xt,
            yt,
            TimeSeriesSlidingSplit(n_splits=2, buffer_size=2),
        ),
        (
            "fig11_half",
            fig11,
            Xt[: len(Xt) // 2],
            yt[: len(yt) // 2],
            TimeSeriesSlidingSplit(n_splits=2, buffer_size=2),
        ),
    ]
    requests = [
        JobRequest(graph=graph, X=X, y=y, cv=cv, metric="rmse", label=label)
        for label, graph, X, y, cv in variants
    ]
    # callables returning shared read-only requests (no per-call build)
    return [lambda req=req: req for req in requests]


def test_serving_load(bench_telemetry, regression_xy, sensor_frames):
    workloads = build_workloads(regression_xy, sensor_frames)
    service = AnalyticsService(
        max_queue=QUEUE_DEPTH,
        concurrency=CONCURRENCY,
        telemetry=bench_telemetry,
    )

    async def main():
        await service.start()
        generator = LoadGenerator(
            service,
            workloads=workloads,
            n_clients=CLIENTS,
            jobs_per_client=JOBS_PER_CLIENT,
            n_tenants=8,
            seed=0,
            max_retries=100_000,
            retry_cap=0.25,
        )
        load = await generator.run()
        await service.stop()
        return load

    load = asyncio.run(main())

    # -- acceptance gates ---------------------------------------------------
    assert load.lost == 0, f"{load.lost} admitted job(s) never finished"
    assert load.completed == load.admitted
    if CLIENTS > QUEUE_DEPTH:
        assert load.rejected > 0, (
            "admission control shed nothing despite "
            f"{CLIENTS} clients over a {QUEUE_DEPTH}-deep queue"
        )

    stats = service.stats()
    counts = stats["counts"]
    fresh = counts["results_fresh"]
    reused = counts["results_reused"]
    reuse_rate = reused / (fresh + reused) if fresh + reused else 0.0
    summary = load.as_dict()

    record_engine("serving", "service", service.engine)
    bench_extras(
        "serving",
        clients=CLIENTS,
        jobs_per_client=JOBS_PER_CLIENT,
        queue_depth=QUEUE_DEPTH,
        concurrency=CONCURRENCY,
        workload_pool=len(workloads),
        load=summary,
        reuse_hit_rate=round(reuse_rate, 4),
        serve_counts=counts,
        queue=stats["queue"],
    )
    print_table(
        f"Serving load ({CLIENTS} clients, queue {QUEUE_DEPTH}, "
        f"{CONCURRENCY} workers)",
        ["metric", "value"],
        [
            ["admitted / submitted", f"{load.admitted} / {load.submitted}"],
            ["rejected (shed)", f"{load.rejected}"],
            ["reject rate", f"{load.reject_rate:.1%}"],
            ["completed", f"{load.completed}"],
            ["lost", f"{load.lost}"],
            ["p50 latency", f"{summary['p50_latency_seconds']:.3f}s"],
            ["p99 latency", f"{summary['p99_latency_seconds']:.3f}s"],
            ["sustained jobs/sec", f"{load.jobs_per_second:.2f}"],
            ["reuse hit rate", f"{reuse_rate:.1%}"],
        ],
    )
    bench_report(
        f"   serving: {load.admitted} jobs over {CLIENTS} clients, "
        f"p50 {summary['p50_latency_seconds']:.3f}s / "
        f"p99 {summary['p99_latency_seconds']:.3f}s, "
        f"{load.jobs_per_second:.2f} jobs/s, "
        f"reject {load.reject_rate:.1%}, reuse {reuse_rate:.1%}"
    )
