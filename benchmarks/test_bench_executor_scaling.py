"""EX — executor scaling: interpreted vs compiled, serial vs pools.

Sweeps the Fig. 3 regression TEG and the Fig. 11 time-series TEG under
five executor cells and reports the median sweep time per cell:

* ``interpreted`` — serial with plan compilation off
  (``ExecutionEngine(compile=False)``): the pre-compilation baseline.
* ``serial`` — serial with the plan compiler on (the default): fused
  transformer kernels plus batched sibling jobs, one thread.
* ``parallel`` — thread pool (GIL-throttled for these CPU-bound
  pure-Python/NumPy estimators).
* ``processes`` — the process pool's shared-memory data plane fanning
  the same work across cores.
* ``auto`` — the cost-aware selector (`GraphEvaluator`'s default):
  serial until measured per-job cost says a pool would pay.

The per-cell medians, speedups over both baselines, and the engine
spec behind each cell land in ``BENCH_executor_scaling.json`` at the
repo root (via ``conftest.bench_extras`` / ``conftest.record_engine``)
so the perf trajectory is machine-readable across PRs.

Environment knobs (the CI smoke leg turns both down):

* ``REPRO_BENCH_WORKERS`` — pool width (default 4, the ISSUE's target).
* ``REPRO_BENCH_ROUNDS``  — timing rounds per cell (default 3).
"""

import os
import statistics
import time

import pytest

from conftest import bench_extras, print_table, record_engine, report
from repro.core import (
    AutoExecutor,
    ExecutionEngine,
    GraphEvaluator,
    ProcessExecutor,
    prepare_regression_graph,
)
from repro.ml.model_selection import KFold, TimeSeriesSlidingSplit
from repro.timeseries.pipeline import build_time_series_graph

N_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "4"))
ROUNDS = int(os.environ.get("REPRO_BENCH_ROUNDS", "3"))
EXECUTORS = ("interpreted", "serial", "parallel", "processes", "auto")

GRAPHS = {
    "fig3_regression": {
        "build": lambda: prepare_regression_graph(fast=True, k_best=4),
        "cv": lambda: KFold(3, random_state=0),
        "data": "regression_xy",
    },
    "fig11_time_series": {
        "build": lambda: build_time_series_graph(fast=True, random_state=0),
        "cv": lambda: TimeSeriesSlidingSplit(n_splits=2, buffer_size=2),
        "data": "sensor_frames",
    },
}

# {graph: {executor: median_seconds}}, filled by the sweep tests and
# read by test_emit_scaling_summary (pytest runs the module in order)
MEDIANS = {name: {} for name in GRAPHS}
_N_RESULTS = {}


@pytest.fixture(scope="module")
def process_pool():
    executor = ProcessExecutor(max_workers=N_WORKERS)
    yield executor
    executor.shutdown()


@pytest.fixture(scope="module")
def auto_pools():
    """One persistent AutoExecutor per graph, shared across rounds so
    its per-job cost model survives the fresh-engine-per-round policy
    (the selector is stateful by design; per-graph because the two
    graphs' job costs differ)."""
    pools = {}
    yield pools
    for pool in pools.values():
        pool.shutdown()


def make_engine(executor_name, process_pool, auto_pools, graph_name, telemetry):
    if executor_name == "interpreted":
        return ExecutionEngine(
            executor="serial", compile=False, telemetry=telemetry
        )
    if executor_name == "processes":
        return ExecutionEngine(executor=process_pool, telemetry=telemetry)
    if executor_name == "auto":
        auto = auto_pools.setdefault(
            graph_name, AutoExecutor(max_workers=N_WORKERS)
        )
        return ExecutionEngine(executor=auto, telemetry=telemetry)
    return ExecutionEngine(
        executor=executor_name, max_workers=N_WORKERS, telemetry=telemetry
    )


@pytest.mark.parametrize("executor_name", EXECUTORS)
@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
def test_sweep(
    graph_name,
    executor_name,
    process_pool,
    auto_pools,
    bench_telemetry,
    request,
):
    spec = GRAPHS[graph_name]
    X, y = request.getfixturevalue(spec["data"])
    timings = []
    for _ in range(ROUNDS):
        # fresh engine per round: a warm prefix cache (or a reused
        # worker-side cache) would flatter the later rounds
        engine = make_engine(
            executor_name, process_pool, auto_pools, graph_name,
            bench_telemetry,
        )
        evaluator = GraphEvaluator(
            spec["build"](), cv=spec["cv"](), metric="rmse", engine=engine
        )
        started = time.perf_counter()
        sweep = evaluator.evaluate(X, y, refit_best=False)
        timings.append(time.perf_counter() - started)
        expected = _N_RESULTS.setdefault(graph_name, len(sweep.results))
        assert len(sweep.results) == expected  # every executor, same work
    record_engine("executor_scaling", executor_name, engine)
    median = statistics.median(timings)
    MEDIANS[graph_name][executor_name] = median
    report(
        f"{graph_name:>18} / {executor_name:<11} "
        f"median {median:8.3f}s over {ROUNDS} round(s)"
    )


def test_compile_speedup(bench_telemetry, request):
    """Plan compilation must pay where transformer/estimator fusion
    applies (the Fig. 3 sweep); the Fig. 11 number is reported honestly
    (its cost is dominated by unfusable NN fits).

    Measured as *interleaved pairs* (interpreted round, compiled round,
    ...) rather than from the sweep cells above, so slow machine drift
    between cells cancels instead of biasing the ratio.
    """
    results = {}
    for graph_name in sorted(GRAPHS):
        spec = GRAPHS[graph_name]
        X, y = request.getfixturevalue(spec["data"])
        times = {"interpreted": [], "compiled": []}
        for _ in range(ROUNDS):
            for name, compile_spec in (
                ("interpreted", False),
                ("compiled", "auto"),
            ):
                engine = ExecutionEngine(
                    executor="serial",
                    compile=compile_spec,
                    telemetry=bench_telemetry,
                )
                evaluator = GraphEvaluator(
                    spec["build"](), cv=spec["cv"](), metric="rmse",
                    engine=engine,
                )
                started = time.perf_counter()
                evaluator.evaluate(X, y, refit_best=False)
                times[name].append(time.perf_counter() - started)
        interpreted = statistics.median(times["interpreted"])
        compiled = statistics.median(times["compiled"])
        speedup = interpreted / compiled
        results[graph_name] = {
            "interpreted_seconds": round(interpreted, 6),
            "compiled_seconds": round(compiled, 6),
            "speedup": round(speedup, 4),
        }
        report(
            f"   compile speedup (paired, {graph_name}): "
            f"interpreted {interpreted:.3f}s, compiled {compiled:.3f}s "
            f"({speedup:.2f}x)"
        )
    bench_extras("executor_scaling", compile_speedup_paired=results)
    if ROUNDS >= 3:
        assert results["fig3_regression"]["speedup"] >= 1.3, (
            f"compiled serial only "
            f"{results['fig3_regression']['speedup']:.2f}x over "
            "interpreted serial on paired Fig. 3 sweeps (expected >= 1.3x)"
        )


def test_auto_matches_serial(bench_telemetry, request):
    """The cost-aware selector must never lose meaningfully to the
    serial executor it can always degrade to.

    Measured as *interleaved pairs* (serial round, auto round, serial
    round, ...) rather than from the sweep cells above: the module's
    cells run minutes apart and slow machine drift between them would
    bias whichever cell runs later.  Pairing cancels the drift.
    """
    spec = GRAPHS["fig3_regression"]
    X, y = request.getfixturevalue(spec["data"])
    auto = AutoExecutor(max_workers=N_WORKERS)
    times = {"serial": [], "auto": []}
    try:
        for _ in range(ROUNDS):
            for name in ("serial", "auto"):
                engine = ExecutionEngine(
                    executor="serial" if name == "serial" else auto,
                    telemetry=bench_telemetry,
                )
                evaluator = GraphEvaluator(
                    spec["build"](), cv=spec["cv"](), metric="rmse",
                    engine=engine,
                )
                started = time.perf_counter()
                evaluator.evaluate(X, y, refit_best=False)
                times[name].append(time.perf_counter() - started)
    finally:
        auto.shutdown()
    serial = statistics.median(times["serial"])
    chosen = statistics.median(times["auto"])
    report(
        f"   auto vs serial (paired, fig3_regression): "
        f"serial {serial:.3f}s, auto {chosen:.3f}s "
        f"({serial / chosen:.2f}x), auto chose {auto.last_choice!r}"
    )
    bench_extras(
        "executor_scaling",
        auto_vs_serial_paired={
            "serial_seconds": round(serial, 6),
            "auto_seconds": round(chosen, 6),
            "auto_over_serial": round(chosen / serial, 4),
            "auto_last_choice": auto.last_choice,
        },
    )
    if ROUNDS >= 3:
        # 5% slack absorbs timing noise; guarded off the 1-round smoke
        assert chosen <= serial * 1.05, (
            f"auto executor {chosen / serial:.2f}x slower than serial "
            "on paired Fig. 3 sweeps (expected within 5%)"
        )


def test_emit_scaling_summary():
    """Aggregate the sweep medians, enforce the scaling and compilation
    criteria, and publish the per-executor rows into
    ``BENCH_executor_scaling.json``."""
    measured = {g: m for g, m in MEDIANS.items() if m}
    if not measured:
        pytest.skip("no sweep cells ran (module filtered)")
    rows = []
    vs_interpreted = {}
    vs_serial = {}
    for graph_name, medians in sorted(measured.items()):
        interpreted = medians.get("interpreted")
        serial = medians.get("serial")
        for executor_name in EXECUTORS:
            if executor_name not in medians:
                continue
            seconds = medians[executor_name]
            speedup_i = interpreted / seconds if interpreted else float("nan")
            speedup_s = serial / seconds if serial else float("nan")
            vs_interpreted.setdefault(graph_name, {})[executor_name] = (
                speedup_i
            )
            vs_serial.setdefault(graph_name, {})[executor_name] = speedup_s
            rows.append(
                [
                    graph_name,
                    executor_name,
                    f"{seconds:.3f}s",
                    f"{speedup_i:.2f}x",
                    f"{speedup_s:.2f}x",
                ]
            )
    print_table(
        f"Executor scaling ({N_WORKERS} workers, {ROUNDS} round(s), "
        f"{os.cpu_count()} cores)",
        ["graph", "executor", "median", "vs interpreted", "vs serial"],
        rows,
    )
    bench_extras(
        "executor_scaling",
        n_workers=N_WORKERS,
        rounds=ROUNDS,
        cpu_count=os.cpu_count(),
        medians_seconds={
            g: {e: round(s, 6) for e, s in m.items()}
            for g, m in measured.items()
        },
        speedup_vs_interpreted={
            g: {e: round(s, 4) for e, s in m.items()}
            for g, m in vs_interpreted.items()
        },
        speedup_vs_serial={
            g: {e: round(s, 4) for e, s in m.items()}
            for g, m in vs_serial.items()
        },
    )
    fig3_s = vs_serial.get("fig3_regression", {})
    # compiled-vs-interpreted and auto-vs-serial are gated by the
    # paired tests above (test_compile_speedup, test_auto_matches_serial);
    # the sweep cells here are minutes apart and drift-biased
    if (os.cpu_count() or 1) >= 4 and N_WORKERS >= 4 and "processes" in fig3_s:
        # the ISSUE's acceptance bar; meaningless on narrower hosts
        assert fig3_s["processes"] >= 2.0, (
            f"ProcessExecutor only {fig3_s['processes']:.2f}x vs serial on "
            f"the Fig. 3 sweep (expected >= 2x at {N_WORKERS} workers)"
        )
