"""EX — executor scaling: serial vs threads vs processes.

Sweeps the Fig. 3 regression TEG and the Fig. 11 time-series TEG under
each in-process executor and reports the median sweep time per
executor.  The pure-Python/NumPy estimators are CPU-bound, so the
thread pool is GIL-throttled while the process pool's shared-memory
data plane fans the same work across cores — the measurable claim
behind offering ``executor="processes"`` at all.

The per-executor medians land in ``BENCH_executor_scaling.json`` at the
repo root (via ``conftest.bench_extras``) so the perf trajectory is
machine-readable across PRs.

Environment knobs (the CI smoke leg turns both down):

* ``REPRO_BENCH_WORKERS`` — pool width (default 4, the ISSUE's target).
* ``REPRO_BENCH_ROUNDS``  — timing rounds per cell (default 3).
"""

import os
import statistics
import time

import pytest

from conftest import bench_extras, print_table, report
from repro.core import (
    ExecutionEngine,
    GraphEvaluator,
    ProcessExecutor,
    prepare_regression_graph,
)
from repro.ml.model_selection import KFold, TimeSeriesSlidingSplit
from repro.timeseries.pipeline import build_time_series_graph

N_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "4"))
ROUNDS = int(os.environ.get("REPRO_BENCH_ROUNDS", "3"))
EXECUTORS = ("serial", "parallel", "processes")

GRAPHS = {
    "fig3_regression": {
        "build": lambda: prepare_regression_graph(fast=True, k_best=4),
        "cv": lambda: KFold(3, random_state=0),
        "data": "regression_xy",
    },
    "fig11_time_series": {
        "build": lambda: build_time_series_graph(fast=True, random_state=0),
        "cv": lambda: TimeSeriesSlidingSplit(n_splits=2, buffer_size=2),
        "data": "sensor_frames",
    },
}

# {graph: {executor: median_seconds}}, filled by the sweep tests and
# read by test_emit_scaling_summary (pytest runs the module in order)
MEDIANS = {name: {} for name in GRAPHS}
_N_RESULTS = {}


@pytest.fixture(scope="module")
def process_pool():
    executor = ProcessExecutor(max_workers=N_WORKERS)
    yield executor
    executor.shutdown()


def make_engine(executor_name, process_pool, telemetry):
    if executor_name == "processes":
        return ExecutionEngine(executor=process_pool, telemetry=telemetry)
    return ExecutionEngine(
        executor=executor_name, max_workers=N_WORKERS, telemetry=telemetry
    )


@pytest.mark.parametrize("executor_name", EXECUTORS)
@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
def test_sweep(
    graph_name, executor_name, process_pool, bench_telemetry, request
):
    spec = GRAPHS[graph_name]
    X, y = request.getfixturevalue(spec["data"])
    timings = []
    for _ in range(ROUNDS):
        # fresh engine per round: a warm prefix cache (or a reused
        # worker-side cache) would flatter the later rounds
        engine = make_engine(executor_name, process_pool, bench_telemetry)
        evaluator = GraphEvaluator(
            spec["build"](), cv=spec["cv"](), metric="rmse", engine=engine
        )
        started = time.perf_counter()
        sweep = evaluator.evaluate(X, y, refit_best=False)
        timings.append(time.perf_counter() - started)
        expected = _N_RESULTS.setdefault(graph_name, len(sweep.results))
        assert len(sweep.results) == expected  # every executor, same work
    median = statistics.median(timings)
    MEDIANS[graph_name][executor_name] = median
    report(
        f"{graph_name:>18} / {executor_name:<9} "
        f"median {median:8.3f}s over {ROUNDS} round(s)"
    )


def test_emit_scaling_summary():
    """Aggregate the sweep medians, enforce the scaling criterion, and
    publish the per-executor rows into ``BENCH_executor_scaling.json``."""
    measured = {g: m for g, m in MEDIANS.items() if m}
    if not measured:
        pytest.skip("no sweep cells ran (module filtered)")
    rows = []
    speedups = {}
    for graph_name, medians in sorted(measured.items()):
        serial = medians.get("serial")
        for executor_name in EXECUTORS:
            if executor_name not in medians:
                continue
            speedup = (
                serial / medians[executor_name] if serial else float("nan")
            )
            speedups.setdefault(graph_name, {})[executor_name] = speedup
            rows.append(
                [
                    graph_name,
                    executor_name,
                    f"{medians[executor_name]:.3f}s",
                    f"{speedup:.2f}x",
                ]
            )
    print_table(
        f"Executor scaling ({N_WORKERS} workers, {ROUNDS} round(s), "
        f"{os.cpu_count()} cores)",
        ["graph", "executor", "median", "vs serial"],
        rows,
    )
    bench_extras(
        "executor_scaling",
        n_workers=N_WORKERS,
        rounds=ROUNDS,
        cpu_count=os.cpu_count(),
        medians_seconds={
            g: {e: round(s, 6) for e, s in m.items()}
            for g, m in measured.items()
        },
        speedup_vs_serial={
            g: {e: round(s, 4) for e, s in m.items()}
            for g, m in speedups.items()
        },
    )
    fig3 = speedups.get("fig3_regression", {})
    if (os.cpu_count() or 1) >= 4 and N_WORKERS >= 4 and "processes" in fig3:
        # the ISSUE's acceptance bar; meaningless on narrower hosts
        assert fig3["processes"] >= 2.0, (
            f"ProcessExecutor only {fig3['processes']:.2f}x vs serial on "
            f"the Fig. 3 sweep (expected >= 2x at {N_WORKERS} workers)"
        )
