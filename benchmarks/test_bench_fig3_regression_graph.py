"""F3 — Fig. 3 / Listing 1: the 36-pipeline regression graph.

"The total number of Pipelines for our working example given in Figure 3
is 36."  Enumerates the graph, verifies the count, benchmarks the full
sweep, and prints the resulting leaderboard — the artifact Fig. 3's
evaluation would produce.
"""

from conftest import print_table, report
from repro.core import GraphEvaluator, prepare_regression_graph
from repro.ml.model_selection import KFold


def test_pipeline_enumeration(benchmark):
    graph = prepare_regression_graph(fast=True, k_best=4)
    pipelines = benchmark(graph.pipelines)
    assert len(pipelines) == 36


def test_full_graph_sweep(benchmark, regression_xy, bench_telemetry):
    X, y = regression_xy
    graph = prepare_regression_graph(fast=True, k_best=4)
    evaluator = GraphEvaluator(
        graph, cv=KFold(3, random_state=0), metric="rmse",
        telemetry=bench_telemetry,
    )
    sweep = benchmark.pedantic(
        lambda: evaluator.evaluate(X, y, refit_best=False),
        rounds=2,
        iterations=1,
    )
    assert len(sweep.results) == 36
    ranked = sweep.ranked()
    print_table(
        "Fig. 3 reproduction — 36-pipeline regression graph sweep",
        ["rank", "cv-RMSE", "std", "pipeline"],
        [
            [i + 1, f"{r.score:.4f}", f"{r.cv_result.std_score:.4f}", r.path]
            for i, r in enumerate(ranked[:10])
        ],
    )
    report(f"pipelines evaluated: {len(sweep.results)} (paper: 36)")
    report(f"best path: {sweep.best_path}")


def test_single_pipeline_evaluation(benchmark, regression_xy):
    """Baseline unit: one (pipeline, 3-fold CV) job."""
    X, y = regression_xy
    graph = prepare_regression_graph(fast=True, k_best=4)
    evaluator = GraphEvaluator(graph, cv=KFold(3, random_state=0))
    job = next(evaluator.iter_jobs(X, y))
    benchmark(lambda: evaluator.run_job(job, X, y))
