"""S2 — Section III: pull vs push (leases) update propagation.

Compares the four propagation strategies the paper discusses — periodic
pull, push-full, push-delta and push-notify — on message count, bytes
moved and client staleness (updates the client's copy lags behind).
"""

import numpy as np
import pytest

from conftest import print_table
from repro.distributed import (
    ClientNode,
    HomeDataStore,
    LeaseManager,
    SimulatedNetwork,
)

N_UPDATES = 20
PULL_EVERY = 5  # the pull client checks every 5th update


def run_strategy(strategy: str):
    """Returns (bytes, messages, mean staleness in versions)."""
    rng = np.random.default_rng(0)
    net = SimulatedNetwork()
    store = HomeDataStore("store", history_depth=8, clock=net.clock)
    net.register("store", store)
    client = ClientNode("client", net)
    data = rng.normal(size=(1500, 8))
    store.put("o", data)
    client.pull(store, "o")
    net.reset_accounting()

    manager = None
    if strategy.startswith("push"):
        mode = strategy.split("-")[1]
        manager = LeaseManager(store, net, default_duration=1e9)
        manager.subscribe("client", "o", client.accept_push, mode=mode)
        manager.record_client_version("client", "o", 1)

    staleness = []
    for i in range(N_UPDATES):
        data = data.copy()
        data[i, 0] += 1.0
        store.put("o", data)
        if strategy == "pull" and (i + 1) % PULL_EVERY == 0:
            client.pull(store, "o")
        if strategy == "push-notify":
            # notified clients fetch lazily; model "fetch every 5th"
            if (i + 1) % PULL_EVERY == 0:
                client.pull(store, "o")
        staleness.append(
            store.current_version("o") - client.cached_version("o")
        )
    return (
        net.total_bytes(),
        net.total_messages(),
        float(np.mean(staleness)),
    )


STRATEGIES = ["pull", "push-full", "push-delta", "push-notify"]


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_strategy(benchmark, strategy):
    total_bytes, messages, staleness = benchmark.pedantic(
        lambda: run_strategy(strategy), rounds=1, iterations=1
    )
    assert messages > 0


def test_strategy_comparison(benchmark):
    rows = []
    results = {}
    for strategy in STRATEGIES:
        total_bytes, messages, staleness = run_strategy(strategy)
        results[strategy] = (total_bytes, messages, staleness)
        rows.append(
            [strategy, f"{total_bytes:,}", messages, f"{staleness:.2f}"]
        )
    benchmark.pedantic(
        lambda: run_strategy("push-delta"), rounds=1, iterations=1
    )
    print_table(
        f"S2 reproduction — propagation strategies over {N_UPDATES} "
        "updates to a ~100KB object",
        ["strategy", "bytes", "messages", "mean staleness (versions)"],
        rows,
    )
    # Shape claims from Section III:
    # push-delta keeps the client perfectly fresh for far fewer bytes
    assert results["push-delta"][2] == 0.0
    assert results["push-full"][2] == 0.0
    assert results["push-delta"][0] < results["push-full"][0] / 10
    # pull trades staleness for bandwidth
    assert results["pull"][2] > 0.0
    # notify is the cheapest messaging with bounded staleness
    assert results["push-notify"][0] < results["push-full"][0]
