"""E1 — Execution engine: shared-prefix transform caching.

Section III argues the job space is "generally too large to exhaustively
determine"; the engine attacks the constant factor instead: on a
dense-prefix graph (few transformer chains x many estimators — the
shape of Fig. 3 and the Fig. 11 time-series graph) each fitted prefix is
reused by every downstream estimator, so the transformer work per fold
collapses from O(paths) to O(prefixes).  This bench sweeps the same
graph with the prefix cache off and on, reports the wall-clock ratio and
the cache's own accounting, and checks the scores agree exactly.
"""

from conftest import print_table, report
from repro.core import ExecutionEngine, GraphEvaluator, prepare_regression_graph
from repro.ml.model_selection import KFold


def _sweep(engine, regression_xy, telemetry=None):
    X, y = regression_xy
    evaluator = GraphEvaluator(
        prepare_regression_graph(fast=True, k_best=4),
        cv=KFold(3, random_state=0),
        metric="rmse",
        engine=engine,
        telemetry=telemetry,
    )
    return evaluator.evaluate(X, y, refit_best=False)


def test_uncached_sweep(benchmark, regression_xy, bench_telemetry):
    sweep = benchmark.pedantic(
        lambda: _sweep(ExecutionEngine(cache=False), regression_xy, bench_telemetry),
        rounds=1,
        iterations=1,
    )
    assert len(sweep.results) == 36


def test_cached_sweep_hits_and_same_scores(benchmark, regression_xy, bench_telemetry):
    cached = benchmark.pedantic(
        lambda: _sweep(ExecutionEngine(cache=True), regression_xy, bench_telemetry),
        rounds=1,
        iterations=1,
    )
    assert len(cached.results) == 36
    stats = cached.stats["cache"]
    # 4 scalers x 3 selector options = 12 distinct prefixes, 3 folds
    # each; the other (36 - 12) x 3 fold-evaluations hit the cache.
    assert stats["stores"] == 12 * 3
    assert stats["hits"] == (36 - 12) * 3
    assert stats["transformer_fits_saved"] > 0

    uncached = _sweep(ExecutionEngine(cache=False), regression_xy)
    assert {r.key: r.score for r in cached.results} == {
        r.key: r.score for r in uncached.results
    }

    print_table(
        "Execution engine — fitted-prefix cache on the Fig. 3 graph "
        "(36 pipelines, 3-fold CV)",
        ["metric", "value"],
        [
            ["prefix chains fitted", stats["stores"]],
            ["fold transforms reused", stats["hits"]],
            ["transformer fits saved", stats["transformer_fits_saved"]],
            ["hit rate", f"{stats['hit_rate']:.2f}"],
        ],
    )
    report(
        "cached and uncached sweeps score identically on all 36 paths"
    )
