"""DARR sharding at scale — rebalance traffic, failover, recovery.

Drives the :class:`repro.darr.ShardedDarr` fabric through the full
membership lifecycle at ~1M published artifacts over 8 shards with
replication factor 2 (ISSUE 8 acceptance scale):

1. **Ingest** — publish the corpus; every record lands on its primary
   plus one follower (sync replication), so the fabric holds ~2M
   copies.
2. **Redundancy avoided** — a sample of checker clients re-fetches
   published keys; every hit is a sweep some client did *not* recompute
   (the paper's cooperation claim, measured at fabric scale).
3. **Scale out** — a 9th shard joins; consistent hashing owes it only
   ``~1/N`` of every range, so bytes moved on rebalance must be a small
   fraction of the corpus, not a reshuffle of all of it.
4. **Shard crash** — a shard fail-stops and crash-driven rebalancing
   restores full replication from the surviving copies (recovery
   time); claims then route around the still-dead shard (claim-routing
   hops counted) and a key sample proves zero published-artifact loss.

Records are synthetic (a slots dataclass exposing the ``key`` /
``dataset`` / ``wire_size`` surface the fabric routes on) so the bench
measures sharding mechanics, not 1M pickles.

Summary lands in ``BENCH_darr_sharding.json`` at the repo root:
ingest throughput, rebalance bytes/records moved (and the moved
fraction), claim-routing hops around the dead shard, redundancy
avoided, and crash-recovery seconds.

Environment knobs (the CI smoke leg turns these down):

* ``REPRO_BENCH_DARR_OBJECTS``     — corpus size (default 1_000_000).
* ``REPRO_BENCH_DARR_SHARDS``      — initial shard count (default 8).
* ``REPRO_BENCH_DARR_REPLICATION`` — replication factor (default 2).
"""

import os
import time
from dataclasses import dataclass

from conftest import bench_extras, print_table, report
from repro.darr import ShardedDarr

N_OBJECTS = int(os.environ.get("REPRO_BENCH_DARR_OBJECTS", "1000000"))
N_SHARDS = int(os.environ.get("REPRO_BENCH_DARR_SHARDS", "8"))
REPLICATION = int(os.environ.get("REPRO_BENCH_DARR_REPLICATION", "2"))

#: Fetch/claim/loss-probe sample sizes (capped by the corpus size).
N_FETCH_SAMPLE = min(10_000, N_OBJECTS)
N_CLAIM_SAMPLE = min(5_000, N_OBJECTS)
N_LOSS_SAMPLE = min(20_000, N_OBJECTS)


@dataclass(frozen=True)
class SyntheticRecord:
    """Minimal record the fabric can route, replicate and rebalance.

    The sharded fabric only touches ``key`` (ring placement),
    ``wire_size`` (byte accounting) and ``dataset`` (query filters);
    a real :class:`~repro.darr.records.AnalyticsResult` would pickle
    its payload per ``wire_size`` call, which at 1M objects would
    benchmark pickling instead of sharding.
    """

    __slots__ = ("key", "dataset", "wire_size")
    key: str
    dataset: str
    wire_size: int


def make_record(i: int) -> SyntheticRecord:
    # deterministic sizes spread 256..4351 bytes, like real artifacts
    return SyntheticRecord(
        key=f"artifact-{i:07d}",
        dataset="bench",
        wire_size=256 + (i * 37) % 4096,
    )


def sample_keys(n: int, stride_salt: int):
    """A deterministic spread of ``n`` corpus keys."""
    stride = max(1, N_OBJECTS // n)
    return [
        f"artifact-{(i * stride + stride_salt) % N_OBJECTS:07d}"
        for i in range(n)
    ]


def live_copy_count(fabric, key: str) -> int:
    return sum(
        1
        for name in fabric.live_shards()
        if fabric.shards[name].holds(key)
    )


def test_sharding_lifecycle_at_scale():
    fabric = ShardedDarr(
        n_shards=N_SHARDS, replication_factor=REPLICATION
    )

    # -- 1. ingest ----------------------------------------------------------
    started = time.perf_counter()
    for i in range(N_OBJECTS):
        fabric.publish(make_record(i), "loader")
    ingest_seconds = time.perf_counter() - started
    corpus_bytes = sum(make_record(i).wire_size for i in range(N_OBJECTS))
    assert fabric.stats["publishes"] == N_OBJECTS
    assert fabric.stats["replications"] == N_OBJECTS * (REPLICATION - 1)

    # -- 2. redundancy avoided ----------------------------------------------
    hits = 0
    for j, key in enumerate(sample_keys(N_FETCH_SAMPLE, 1)):
        if fabric.fetch(key, f"checker-{j % 32:02d}") is not None:
            hits += 1
    assert hits == N_FETCH_SAMPLE  # every published artifact is served
    redundancy_rate = hits / N_FETCH_SAMPLE

    # -- 3. scale out: join a shard -----------------------------------------
    moved_before = fabric.stats["rebalance_records_moved"]
    bytes_before = fabric.stats["rebalance_bytes_moved"]
    started = time.perf_counter()
    joined = fabric.add_shard()
    join_seconds = time.perf_counter() - started
    join_moved = fabric.stats["rebalance_records_moved"] - moved_before
    join_bytes = fabric.stats["rebalance_bytes_moved"] - bytes_before
    moved_fraction = join_moved / (N_OBJECTS * REPLICATION)
    # consistent hashing: the joiner is owed ~R/(N+1) of the copies,
    # not a full reshuffle — allow 2x slack over the ideal share
    assert moved_fraction < 2.0 * REPLICATION / (N_SHARDS + 1)

    # -- 4. crash-driven recovery, then claims around the corpse ------------
    victim = fabric.shard_for(sample_keys(1, 3)[0])
    started = time.perf_counter()
    recovered = fabric.crash_shard(victim)
    recovery_seconds = time.perf_counter() - started
    assert recovered > 0

    # the victim stays dead: claims on its ranges must hop to survivors
    hops_before = fabric.stats["claim_routing_hops"]
    granted = 0
    for j, key in enumerate(
        f"pending-{i:07d}" for i in range(N_CLAIM_SAMPLE)
    ):
        if fabric.claim(key, f"worker-{j % 16:02d}"):
            granted += 1
    claim_hops = fabric.stats["claim_routing_hops"] - hops_before
    assert granted == N_CLAIM_SAMPLE  # failover never starves a claim
    assert claim_hops > 0  # the dead primary really was routed around

    # -- zero-loss probe: sampled keys fully replicated post-recovery -------
    for key in sample_keys(N_LOSS_SAMPLE, 7):
        assert live_copy_count(fabric, key) == REPLICATION, key

    print_table(
        f"DARR sharding lifecycle — {N_OBJECTS:,} artifacts, "
        f"{N_SHARDS} shards, R={REPLICATION}",
        ["phase", "seconds", "detail"],
        [
            [
                "ingest",
                f"{ingest_seconds:.2f}",
                f"{N_OBJECTS / ingest_seconds:,.0f} publishes/s, "
                f"{corpus_bytes:,} corpus bytes",
            ],
            [
                "redundancy",
                "-",
                f"{hits:,}/{N_FETCH_SAMPLE:,} sampled fetches reused "
                f"({redundancy_rate:.0%})",
            ],
            [
                f"join {joined}",
                f"{join_seconds:.2f}",
                f"{join_moved:,} records / {join_bytes:,} bytes moved "
                f"({moved_fraction:.1%} of copies)",
            ],
            [
                f"crash {victim}",
                f"{recovery_seconds:.2f}",
                f"{recovered:,} records re-replicated",
            ],
            [
                "claims (1 dead)",
                "-",
                f"{granted:,} claims granted, {claim_hops:,} "
                f"claim-routing hops around the corpse",
            ],
        ],
    )
    report(
        f"zero-loss probe: {N_LOSS_SAMPLE:,} sampled keys at "
        f"{REPLICATION} live copies each"
    )

    bench_extras(
        "darr_sharding",
        objects=N_OBJECTS,
        shards=N_SHARDS,
        replication_factor=REPLICATION,
        corpus_bytes=corpus_bytes,
        ingest_seconds=round(ingest_seconds, 3),
        ingest_publishes_per_second=round(N_OBJECTS / ingest_seconds, 1),
        redundancy_avoided={
            "sampled_fetches": N_FETCH_SAMPLE,
            "reused": hits,
            "rate": redundancy_rate,
        },
        rebalance_on_join={
            "joined": joined,
            "seconds": round(join_seconds, 3),
            "records_moved": join_moved,
            "bytes_moved": join_bytes,
            "moved_fraction_of_copies": round(moved_fraction, 4),
        },
        crash_failover={
            "victim": victim,
            "claims_granted": granted,
            "claim_routing_hops": claim_hops,
            "claims_lost_to_crash": fabric.stats[
                "claims_lost_to_crash"
            ],
            "recovery_seconds": round(recovery_seconds, 3),
            "records_recovered": recovered,
            "loss_probe_keys": N_LOSS_SAMPLE,
            "loss_probe_missing": 0,
        },
        fabric_stats=dict(fabric.stats),
    )
