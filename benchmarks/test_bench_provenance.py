"""Extension — provenance tracking: overhead gate and query latency.

Provenance sits on every artifact write (a record build plus a dict
insert), so its cost must be invisible next to the fits it annotates.
This bench (a) sweeps the fast Fig. 3 graph with tracking on and off —
fresh engine and store per round, min-of-3 — and gates the overhead at
≤5%, and (b) builds a 100k-record registry of 10-deep lineage chains
and measures ``lineage`` / ``roots`` / ``descendants`` latency
(`BENCH_provenance.json`).
"""

import statistics
import time

from conftest import bench_extras, print_table, report
from repro.core import ExecutionEngine, GraphEvaluator, prepare_regression_graph
from repro.ml.model_selection import KFold
from repro.provenance import ProvenanceRecord, ProvenanceRegistry
from repro.store import MemoryStore

#: ≤5% — tracking must be invisible next to the fits it annotates.
OVERHEAD_GATE = 1.05

CHAINS = 10_000
CHAIN_DEPTH = 10  # 100k records total
QUERY_ROUNDS = 200


def _sweep_seconds(regression_xy, provenance, rounds=3):
    """Best-of-``rounds`` wall time of a cold sweep (fresh engine and
    store each round, so no cross-round result reuse skews a side)."""
    X, y = regression_xy
    best = float("inf")
    for _ in range(rounds):
        engine = ExecutionEngine(
            store=MemoryStore(),
            client="bench",
            data_ref=("sensor", 1),
            provenance=provenance,
        )
        evaluator = GraphEvaluator(
            prepare_regression_graph(fast=True, k_best=4),
            cv=KFold(3, random_state=0),
            metric="rmse",
            engine=engine,
        )
        started = time.perf_counter()
        sweep = evaluator.evaluate(X, y, refit_best=False)
        best = min(best, time.perf_counter() - started)
        assert len(sweep.results) == 36
    return best


def test_tracking_overhead_under_five_percent(benchmark, regression_xy):
    off = _sweep_seconds(regression_xy, provenance=False)
    on = benchmark.pedantic(
        lambda: _sweep_seconds(regression_xy, provenance=True),
        rounds=1,
        iterations=1,
    )
    ratio = on / off
    bench_extras(
        "provenance",
        overhead={
            "off_seconds": round(off, 6),
            "on_seconds": round(on, 6),
            "ratio": round(ratio, 4),
            "gate": OVERHEAD_GATE,
        },
    )
    print_table(
        "Provenance tracking overhead — fast Fig. 3 graph "
        "(36 pipelines, 3-fold CV, min of 3 cold rounds)",
        ["tracking", "seconds"],
        [
            ["off", f"{off:.4f}"],
            ["on", f"{on:.4f}"],
            ["ratio", f"{ratio:.4f} (gate {OVERHEAD_GATE})"],
        ],
    )
    assert ratio <= OVERHEAD_GATE, (
        f"provenance tracking costs {100 * (ratio - 1):.1f}% "
        f"(gate {100 * (OVERHEAD_GATE - 1):.0f}%)"
    )


def _build_large_registry():
    """``CHAINS`` independent 10-deep chains — 100k records, the shape
    a long-lived cooperative deployment accumulates."""
    registry = ProvenanceRegistry()
    for chain in range(CHAINS):
        parent = None
        for depth in range(CHAIN_DEPTH):
            digest = f"c{chain:05d}-d{depth}"
            registry.record(
                digest,
                ProvenanceRecord(
                    producer=f"client-{chain % 17}",
                    kind="result" if depth == CHAIN_DEPTH - 1 else "fold-transform",
                    spec_key=f"spec-{chain}-{depth}",
                    data_object=f"obj-{chain % 100}",
                    data_version=1,
                    parents=(parent,) if parent else (),
                    executor="bench",
                    tick=registry.tick(),
                ),
            )
            parent = digest
    return registry


def test_lineage_query_latency_at_100k(benchmark):
    registry = benchmark.pedantic(
        _build_large_registry, rounds=1, iterations=1
    )
    assert len(registry) == CHAINS * CHAIN_DEPTH

    tips = [
        f"c{chain:05d}-d{CHAIN_DEPTH - 1}"
        for chain in range(0, CHAINS, CHAINS // QUERY_ROUNDS)
    ]
    lineage_times, roots_times = [], []
    for digest in tips:
        started = time.perf_counter()
        chain = registry.lineage(digest)
        lineage_times.append(time.perf_counter() - started)
        assert len(chain) == CHAIN_DEPTH
        started = time.perf_counter()
        roots = registry.roots(digest)
        roots_times.append(time.perf_counter() - started)
        assert len(roots) == 1

    started = time.perf_counter()
    descendants = registry.descendants("obj-42")
    descendants_seconds = time.perf_counter() - started
    assert len(descendants) == (CHAINS // 100) * CHAIN_DEPTH

    lineage_us = statistics.median(lineage_times) * 1e6
    roots_us = statistics.median(roots_times) * 1e6
    bench_extras(
        "provenance",
        registry={
            "records": len(registry),
            "lineage_median_us": round(lineage_us, 2),
            "roots_median_us": round(roots_us, 2),
            "descendants_seconds": round(descendants_seconds, 6),
        },
    )
    print_table(
        f"Lineage queries on a {len(registry):,}-record registry "
        f"({CHAINS:,} chains, depth {CHAIN_DEPTH})",
        ["query", "latency"],
        [
            ["lineage (median, 10-deep chain)", f"{lineage_us:.1f} us"],
            ["roots (median)", f"{roots_us:.1f} us"],
            [
                f"descendants ({len(descendants):,} hits)",
                f"{descendants_seconds * 1e3:.1f} ms",
            ],
        ],
    )
    report(
        "provenance registry scales: per-artifact lineage stays "
        "microseconds at 100k records; the forward audit walk is a "
        "single linear pass"
    )
