"""T1 — Table I: "Different steps in machine learning modeling".

Reproduces the component inventory of Table I: every option the paper
lists for feature selection (SelectKBest / information gain / entropy),
feature normalization (MinMax / Standard), feature transformation (PCA /
kernel-PCA / LDA), model training (random forest / neural net / linear
regression), model evaluation (k-fold / Monte-Carlo) and model scoring
(RMSE / MAPE) — timing each component's core operation on a common
dataset.
"""

import numpy as np
import pytest

from conftest import print_table
from repro.ml.decomposition import LDA, PCA, KernelPCA
from repro.ml.ensemble import RandomForestRegressor
from repro.ml.feature_selection import SelectKBest
from repro.ml.linear import LinearRegression
from repro.ml.metrics import (
    mean_absolute_percentage_error,
    root_mean_squared_error,
)
from repro.ml.model_selection import KFold, MonteCarloSplit, cross_validate
from repro.ml.preprocessing import MinMaxScaler, StandardScaler
from repro.nn import DNNRegressor

SELECTORS = [
    ("SelectKBest(f_score)", SelectKBest(k=4, score_func="f_score")),
    ("SelectKBest(information_gain)", SelectKBest(k=4, score_func="information_gain")),
    ("SelectKBest(entropy)", SelectKBest(k=4, score_func="entropy")),
]
SCALERS = [
    ("MinMaxScaler", MinMaxScaler()),
    ("StandardScaler", StandardScaler()),
]
MODELS = [
    ("RandomForest", RandomForestRegressor(n_estimators=15, random_state=0)),
    ("NeuralNet(DNN)", DNNRegressor(epochs=10, random_state=0)),
    ("LinearRegression", LinearRegression()),
]


@pytest.mark.parametrize("name,selector", SELECTORS, ids=[n for n, _ in SELECTORS])
def test_feature_selection_step(benchmark, regression_xy, name, selector):
    X, y = regression_xy
    benchmark(lambda: selector.fit(X, y).transform(X))


@pytest.mark.parametrize("name,scaler", SCALERS, ids=[n for n, _ in SCALERS])
def test_feature_normalization_step(benchmark, regression_xy, name, scaler):
    X, _ = regression_xy
    benchmark(lambda: scaler.fit(X).transform(X))


@pytest.mark.parametrize(
    "name,transformer",
    [
        ("PCA", PCA(n_components=4)),
        ("kernel-PCA", KernelPCA(n_components=4, gamma=0.2)),
    ],
    ids=["PCA", "kernel-PCA"],
)
def test_feature_transformation_step(benchmark, regression_xy, name, transformer):
    X, _ = regression_xy
    benchmark(lambda: transformer.fit(X).transform(X))


def test_feature_transformation_lda(benchmark, regression_xy):
    X, y = regression_xy
    labels = (y > np.median(y)).astype(int)
    benchmark(lambda: LDA().fit(X, labels).transform(X))


@pytest.mark.parametrize("name,model", MODELS, ids=[n for n, _ in MODELS])
def test_model_training_step(benchmark, regression_xy, name, model):
    X, y = regression_xy
    from repro.ml.base import clone

    benchmark(lambda: clone(model).fit(X, y))


@pytest.mark.parametrize(
    "name,cv",
    [
        ("k-fold", KFold(5, random_state=0)),
        ("monte-carlo", MonteCarloSplit(5, random_state=0)),
    ],
    ids=["k-fold", "monte-carlo"],
)
def test_model_evaluation_step(benchmark, regression_xy, name, cv):
    X, y = regression_xy
    benchmark(lambda: cross_validate(LinearRegression(), X, y, cv=cv))


def test_model_scoring_step(benchmark, regression_xy):
    X, y = regression_xy
    predictions = LinearRegression().fit(X, y).predict(X)

    def score():
        return (
            root_mean_squared_error(y, predictions),
            mean_absolute_percentage_error(y, predictions),
        )

    rmse, mape = benchmark(score)
    print_table(
        "Table I reproduction — component inventory exercised",
        ["step", "options exercised"],
        [
            ["Select Features", "SelectKBest / InformationGain / Entropy"],
            ["Feature Normalization", "MinMax / StandardScaler"],
            ["Feature Transformation", "PCA / kernel-PCA / LDA"],
            ["Model Training", "RandomForest / DNN / LinearRegression"],
            ["Model Evaluation", "k-fold / Monte-Carlo"],
            ["Model Score", f"RMSE={rmse:.4f} / MAPE={mape:.2f}%"],
        ],
    )
