"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark regenerates one artifact of the paper (a table, figure
or section claim — see DESIGN.md's experiment index).  Since the paper's
artifacts are architectural rather than numeric, each bench both times
the operation (pytest-benchmark) and prints the reproduced rows/series
so the run output documents the reproduction.
"""

import json
import os
import statistics
import time

import numpy as np
import pytest

from repro.datasets import make_regression, make_sensor_series
from repro.obs import JsonlSink, Telemetry
from repro.timeseries import make_supervised

_capture_manager = None

#: Where the per-test telemetry records land (one JSON object per line);
#: override with the BENCH_TELEMETRY_PATH environment variable.
TELEMETRY_PATH = os.environ.get(
    "BENCH_TELEMETRY_PATH",
    os.path.join(os.path.dirname(__file__), "telemetry.jsonl"),
)

#: Where the per-module ``BENCH_<name>.json`` summaries land (the repo
#: root, so successive PRs can diff the perf trajectory in one place);
#: override with the BENCH_SUMMARY_DIR environment variable.
SUMMARY_DIR = os.environ.get(
    "BENCH_SUMMARY_DIR",
    os.path.abspath(os.path.join(os.path.dirname(__file__), "..")),
)

# per-module accumulators feeding pytest_sessionfinish
_module_records = {}
_module_extras = {}
_module_engines = {}

#: Compile counters aggregated into every summary (see
#: ``report.stats["compile"]`` and docs/observability.md).
_COMPILE_COUNTERS = (
    "kernels_fused",
    "jobs_batched",
    "stages_interpreted",
    "folds_shared",
    "estimator_fused_fits",
)


def _module_key(nodeid: str) -> str:
    """``test_bench_fig3_regression_graph.py::test_x`` → ``fig3_regression_graph``."""
    name = os.path.basename(nodeid.split("::", 1)[0])
    for prefix in ("test_bench_", "test_"):
        if name.startswith(prefix):
            name = name[len(prefix):]
            break
    return name[:-3] if name.endswith(".py") else name


def bench_extras(module: str, **payload) -> None:
    """Merge extra fields into a module's ``BENCH_<module>.json``.

    Benchmarks with structure the generic per-test summary cannot infer
    (e.g. the executor-scaling sweep's per-executor medians) call this
    to enrich their summary file.
    """
    _module_extras.setdefault(module, {}).update(payload)


def engine_spec(engine) -> dict:
    """JSON-able description of an ``ExecutionEngine``'s configuration.

    Captures the knobs that shape benchmark numbers — executor kind,
    pool width, plan compilation, prefix cache — so a ``BENCH_*.json``
    records *what* was measured, not only how long it took.
    """
    executor = getattr(engine, "executor", None)
    return {
        "executor": getattr(executor, "name", type(executor).__name__),
        "max_workers": getattr(executor, "max_workers", None),
        "compile": getattr(engine, "compile_spec", None),
        "cache": getattr(engine, "cache", None) is not None,
    }


def record_engine(module: str, label: str, engine) -> None:
    """Record the engine configuration behind one benchmark cell.

    The specs land under the ``engines`` key of the module's
    ``BENCH_<module>.json``, keyed by ``label`` (e.g. the executor
    column name).  Re-recording a label overwrites it, so per-round
    calls are harmless.
    """
    _module_engines.setdefault(module, {})[label] = engine_spec(engine)


def pytest_sessionfinish(session, exitstatus):
    """Write one ``BENCH_<module>.json`` per bench module that ran.

    Each summary carries the module's median/total wall time, its
    prefix-cache hit rate and plan-compiler totals (both from the
    engine telemetry counters), the engine specs benchmarks registered
    via :func:`record_engine`, and the per-test timings — a
    machine-readable perf trajectory for future PRs to compare
    against.
    """
    for module, records in sorted(_module_records.items()):
        hits = sum(r["counters"].get("engine.cache_hits", 0) for r in records)
        misses = sum(
            r["counters"].get("engine.cache_misses", 0) for r in records
        )
        summary = {
            "module": module,
            "n_tests": len(records),
            "median_seconds": round(
                statistics.median(r["seconds"] for r in records), 6
            ),
            "total_seconds": round(sum(r["seconds"] for r in records), 6),
            "cache": {
                "hits": hits,
                "misses": misses,
                "hit_rate": round(hits / (hits + misses), 4)
                if hits + misses
                else None,
            },
            "compile": {
                name: sum(
                    r["counters"].get(f"engine.{name}", 0) for r in records
                )
                for name in _COMPILE_COUNTERS
            },
            "tests": [
                {"test": r["test"], "seconds": round(r["seconds"], 6)}
                for r in records
            ],
        }
        if module in _module_engines:
            summary["engines"] = _module_engines[module]
        summary.update(_module_extras.get(module, {}))
        path = os.path.join(SUMMARY_DIR, f"BENCH_{module}.json")
        with open(path, "w") as fh:
            json.dump(summary, fh, indent=2, sort_keys=True)
            fh.write("\n")


def pytest_configure(config):
    global _capture_manager
    _capture_manager = config.pluginmanager.getplugin("capturemanager")


def report(*parts) -> None:
    """Print with pytest capture suspended, so the reproduced tables
    appear in every benchmark run (capture would otherwise swallow them
    for passing tests)."""
    line = " ".join(str(p) for p in parts)
    if _capture_manager is not None:
        with _capture_manager.global_and_fixture_disabled():
            print(line)
    else:
        print(line)


def print_table(title: str, headers, rows) -> None:
    """Render a reproduction table into the benchmark output."""
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows))
        for i, h in enumerate(headers)
    ]
    report(f"\n=== {title} ===")
    report("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        report("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


@pytest.fixture(scope="session")
def bench_telemetry():
    """Session-wide :class:`~repro.obs.Telemetry` handle.

    Benchmarks may pass it to evaluators (``telemetry=bench_telemetry``)
    to fold engine/search/DARR counters into their JSONL records; the
    autouse ``_bench_record`` fixture uses it for per-test records
    either way.
    """
    telemetry = Telemetry(sinks=[JsonlSink(TELEMETRY_PATH, mode="w")])
    yield telemetry
    telemetry.close()


@pytest.fixture(autouse=True)
def _bench_record(request, bench_telemetry):
    """Emit one comparable JSONL record per benchmark test.

    Each record carries the test id, its wall-clock duration, and the
    counters the test's instrumented code incremented (the session
    counter delta), so ``benchmarks/telemetry.jsonl`` reads as one row
    per ``test_bench_*`` run.
    """
    before = bench_telemetry.counters()
    started = time.perf_counter()
    yield
    seconds = time.perf_counter() - started
    after = bench_telemetry.counters()
    delta = {
        name: after[name] - before.get(name, 0)
        for name in after
        if after[name] != before.get(name, 0)
    }
    bench_telemetry.record(
        "bench",
        test=request.node.nodeid,
        seconds=round(seconds, 6),
        counters=delta,
    )
    _module_records.setdefault(_module_key(request.node.nodeid), []).append(
        {"test": request.node.nodeid, "seconds": seconds, "counters": delta}
    )


@pytest.fixture(scope="session")
def regression_xy():
    return make_regression(
        n_samples=200, n_features=8, n_informative=5, noise=0.15,
        random_state=0,
    )


@pytest.fixture(scope="session")
def sensor_frames():
    series = make_sensor_series(length=300, n_variables=2, random_state=0)
    return make_supervised(series, history=10)
