"""S3 — Section III: change-threshold recomputation policies.

"When the amount of change in the data exceeds a threshold, then
analytics calculations are recalculated ... Too frequent retraining can
result in high overhead, while too infrequent retraining can result in
obsolete models."  Reproduces the overhead/staleness trade across the
three policy families and measures model accuracy decay under drift.
"""

import numpy as np
import pytest

from conftest import print_table
from repro.distributed import (
    ApplicationPolicy,
    ChangeMonitor,
    DriftPolicy,
    UpdateCountPolicy,
    UpdateSizePolicy,
)
from repro.ml.linear import RidgeRegression
from repro.ml.metrics import root_mean_squared_error

N_UPDATES = 120


@pytest.mark.parametrize(
    "policy_name,make_policy",
    [
        ("count(10)", lambda: UpdateCountPolicy(10)),
        ("size(50KB)", lambda: UpdateSizePolicy(50_000)),
        ("app(|Δmean|>0.5)", lambda: ApplicationPolicy(
            lambda old, new: abs(float(np.mean(new)) - float(np.mean(old))),
            threshold=0.5,
        )),
    ],
    ids=["count", "size", "application"],
)
def test_policy_overhead(benchmark, policy_name, make_policy):
    def run():
        monitor = ChangeMonitor(make_policy())
        value = 0.0
        for i in range(N_UPDATES):
            new_value = value + 0.05
            monitor.record_update(old=value, new=new_value, size=5_000)
            value = new_value
        return monitor

    monitor = benchmark(run)
    assert monitor.updates_seen == N_UPDATES


def test_threshold_tradeoff_table(benchmark):
    """Recompute count vs staleness across count thresholds."""

    def run(threshold):
        monitor = ChangeMonitor(UpdateCountPolicy(threshold))
        for _ in range(N_UPDATES):
            monitor.record_update()
        return monitor.recomputations, monitor.mean_staleness

    rows = []
    for threshold in (2, 5, 10, 25, 60):
        recomputes, staleness = run(threshold)
        rows.append([threshold, recomputes, f"{staleness:.1f}"])
    benchmark.pedantic(lambda: run(10), rounds=1, iterations=1)
    print_table(
        f"S3 reproduction — overhead vs staleness over {N_UPDATES} updates",
        ["count threshold", "recomputations", "mean staleness (updates)"],
        rows,
    )
    recompute_counts = [int(r[1]) for r in rows]
    assert recompute_counts == sorted(recompute_counts, reverse=True)


def test_model_accuracy_under_drift(benchmark):
    """Connects the policy to model quality: with concept drift, a
    drift-triggered retrain keeps test error bounded while never-retrain
    degrades."""
    rng = np.random.default_rng(0)

    def simulate(retrain: bool):
        # coefficients drift over time
        coef = np.array([1.0, -1.0, 0.5])
        X = rng.normal(size=(200, 3))
        y = X @ coef
        model = RidgeRegression(alpha=0.1).fit(X, y)
        monitor = ChangeMonitor(DriftPolicy(threshold=0.4))
        monitor.record_update(new=X)
        errors = []
        for step in range(12):
            coef = coef + 0.15  # concept drift
            X_new = rng.normal(size=(100, 3)) + 0.2 * step
            y_new = X_new @ coef
            fired = monitor.record_update(new=X_new)
            if fired and retrain:
                model = RidgeRegression(alpha=0.1).fit(X_new, y_new)
            errors.append(
                root_mean_squared_error(y_new, model.predict(X_new))
            )
        return float(np.mean(errors)), monitor.recomputations

    (retrain_err, retrains) = benchmark.pedantic(
        lambda: simulate(True), rounds=1, iterations=1
    )
    stale_err, _ = simulate(False)
    print_table(
        "S3 reproduction — accuracy under concept drift",
        ["strategy", "mean RMSE", "retrains"],
        [
            ["drift-triggered retrain", f"{retrain_err:.3f}", retrains],
            ["never retrain", f"{stale_err:.3f}", 0],
        ],
    )
    assert retrain_err < stale_err / 2
