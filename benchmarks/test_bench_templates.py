"""S4 — Section IV-E: the four solution templates.

Benchmarks each template's end-to-end fit on its industrial dataset and
prints the headline every template produces — the consumable artifact
the paper positions for non-expert users.
"""

import numpy as np
import pytest

from conftest import print_table
from repro.datasets import (
    make_asset_fleet,
    make_failure_dataset,
    make_process_outcomes,
)
from repro.templates import (
    AnomalyAnalysisTemplate,
    CohortAnalysisTemplate,
    FailurePredictionTemplate,
    RootCauseTemplate,
)


def test_failure_prediction_template(benchmark):
    X, y = make_failure_dataset(
        n_samples=400, failure_rate=0.1, missing_rate=0.03, random_state=0
    )
    template = benchmark.pedantic(
        lambda: FailurePredictionTemplate(fast=True, n_splits=3).fit(X, y),
        rounds=1,
        iterations=1,
    )
    assert template.report().metrics["cv_f1"] > 0.4


def test_root_cause_template(benchmark):
    X, y, names, weights = make_process_outcomes(
        n_samples=400, random_state=0
    )
    template = benchmark(
        lambda: RootCauseTemplate(names, random_state=0).fit(X, y)
    )
    assert template.root_causes(top=1) == ["temperature"]


def test_anomaly_template(benchmark):
    rng = np.random.default_rng(0)
    X = rng.normal(size=(500, 5))
    template = benchmark(
        lambda: AnomalyAnalysisTemplate(random_state=0).fit(X)
    )
    assert template.predict(X + 12.0).mean() == 1.0


def test_cohort_template(benchmark):
    _, features, truth = make_asset_fleet(
        n_assets=30, n_cohorts=3, random_state=0
    )
    template = benchmark(
        lambda: CohortAnalysisTemplate(random_state=0).fit(features)
    )
    assert len(set(template.labels_)) == 3


def test_all_templates_report(benchmark):
    rows = []
    X, y = make_failure_dataset(
        n_samples=400, failure_rate=0.1, random_state=0
    )
    fpa = FailurePredictionTemplate(fast=True, n_splits=3).fit(X, y)
    rows.append(["FPA", fpa.report().headline])
    Xp, yp, names, _ = make_process_outcomes(n_samples=400, random_state=0)
    rca = RootCauseTemplate(names, random_state=0).fit(Xp, yp)
    rows.append(["RCA", rca.report().headline])
    Xa = np.random.default_rng(1).normal(size=(400, 4))
    anomaly = AnomalyAnalysisTemplate(random_state=0).fit(Xa)
    rows.append(["Anomaly", anomaly.report().headline])
    _, features, _ = make_asset_fleet(n_assets=24, n_cohorts=3, random_state=0)
    cohort = CohortAnalysisTemplate(random_state=0).fit(features)
    rows.append(["Cohort", cohort.report().headline])
    benchmark.pedantic(
        lambda: AnomalyAnalysisTemplate(random_state=0).fit(Xa),
        rounds=1,
        iterations=1,
    )
    print_table(
        "S4 reproduction — solution-template headlines",
        ["template", "headline"],
        rows,
    )
