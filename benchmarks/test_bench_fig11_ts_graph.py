"""F11 — Fig. 11: the full time-series prediction graph.

Sweeps the Data Scaling x Data Preprocessing x Modelling graph (with the
paper's selective family wiring) over an industrial sensor series and
reports the best pipeline per model family plus the overall winner — the
output Fig. 11 describes: "The output of the model is the best
performing set of Transformers and Estimators."
"""

from collections import defaultdict

from conftest import print_table, report
from repro.core import GraphEvaluator
from repro.ml.model_selection import TimeSeriesSlidingSplit
from repro.timeseries.pipeline import MODEL_FAMILIES, build_time_series_graph


def family_of(model_name):
    for family, members in MODEL_FAMILIES.items():
        if model_name in members:
            return family
    return "unknown"


def test_graph_construction(benchmark):
    graph = benchmark(lambda: build_time_series_graph(fast=True))
    assert graph.n_pipelines == 4 * 6 + 4 * 2 * 2 + 2


def test_full_ts_graph_sweep(benchmark, sensor_frames, bench_telemetry):
    X, y = sensor_frames
    graph = build_time_series_graph(fast=True, random_state=0)
    evaluator = GraphEvaluator(
        graph,
        cv=TimeSeriesSlidingSplit(n_splits=2, buffer_size=2),
        metric="rmse",
        telemetry=bench_telemetry,
    )
    sweep = benchmark.pedantic(
        lambda: evaluator.evaluate(X, y, refit_best=False),
        rounds=1,
        iterations=1,
    )
    assert len(sweep.results) == graph.n_pipelines

    best_per_family = defaultdict(lambda: None)
    for result in sweep.results:
        family = family_of(result.path.split(" -> ")[-1])
        if (
            best_per_family[family] is None
            or result.score < best_per_family[family].score
        ):
            best_per_family[family] = result
    rows = [
        [family, f"{best_per_family[family].score:.4f}", best_per_family[family].path]
        for family in ("temporal", "iid", "statistical")
    ]
    print_table(
        "Fig. 11 reproduction — best pipeline per model family "
        f"({len(sweep.results)} pipelines swept)",
        ["family", "cv-RMSE", "pipeline"],
        rows,
    )
    zero_score = next(
        r.score for r in sweep.results if r.path.endswith("zero")
    )
    report(
        f"overall best: {sweep.best_path} "
        f"(RMSE {sweep.best_score:.4f}; Zero baseline {zero_score:.4f}; "
        f"{zero_score / sweep.best_score:.2f}x better than persistence)"
    )
    # shape check: a structured series must be beatable vs persistence
    assert sweep.best_score < zero_score
