"""F2 — Fig. 2: cooperative analytics through the DARR.

"clients can share the results with each other and not have to repeat
calculations."  Measures total computations, redundancy avoided and wall
time for M cooperating clients vs the same M clients working in
isolation, plus the DESIGN.md sharing-granularity ablation (pipeline
level vs pipeline+parameter level).
"""

import time

import pytest

from conftest import print_table, report
from repro.core import GraphEvaluator, prepare_regression_graph
from repro.darr import DARR, CooperativeEvaluator, run_cooperative_session
from repro.distributed import SimulatedNetwork
from repro.ml.model_selection import KFold


def make_coops(n_clients, k_best=4, cv_folds=2):
    net = SimulatedNetwork()
    for i in range(n_clients):
        net.register(f"client-{i}")
    darr = DARR("darr", net)
    coops = [
        CooperativeEvaluator(
            GraphEvaluator(
                prepare_regression_graph(fast=True, k_best=k_best),
                cv=KFold(cv_folds, random_state=0),
                metric="rmse",
            ),
            darr,
            f"client-{i}",
        )
        for i in range(n_clients)
    ]
    return net, darr, coops


@pytest.mark.parametrize("n_clients", [1, 2, 4])
def test_cooperative_session(benchmark, regression_xy, n_clients):
    X, y = regression_xy

    def session():
        _, darr, coops = make_coops(n_clients)
        run_cooperative_session(coops, X, y)
        return darr, coops

    darr, coops = benchmark.pedantic(session, rounds=1, iterations=1)
    total_computed = sum(c.stats.computed for c in coops)
    assert total_computed == 36  # each job computed exactly once
    assert len(darr) == 36


def test_with_vs_without_darr(benchmark, regression_xy):
    """The headline Fig. 2 comparison."""
    X, y = regression_xy
    n_clients = 3

    def cooperative():
        _, darr, coops = make_coops(n_clients)
        run_cooperative_session(coops, X, y)
        return sum(c.stats.computed for c in coops), coops

    started = time.perf_counter()
    coop_computed, coops = benchmark.pedantic(
        cooperative, rounds=1, iterations=1
    )
    coop_seconds = time.perf_counter() - started

    # isolation: every client computes everything itself
    started = time.perf_counter()
    isolated_computed = 0
    for i in range(n_clients):
        evaluator = GraphEvaluator(
            prepare_regression_graph(fast=True, k_best=4),
            cv=KFold(2, random_state=0),
            metric="rmse",
        )
        iso_report = evaluator.evaluate(X, y, refit_best=False)
        isolated_computed += len(iso_report.results)
    isolated_seconds = time.perf_counter() - started

    print_table(
        f"Fig. 2 reproduction — {n_clients} clients, 36-job graph",
        ["mode", "computations", "wall time"],
        [
            ["without DARR (isolated)", isolated_computed, f"{isolated_seconds:.2f}s"],
            ["with DARR (cooperative)", coop_computed, f"{coop_seconds:.2f}s"],
        ],
    )
    saved = 1 - coop_computed / isolated_computed
    report(f"computations avoided by cooperation: {saved:.0%}")
    for coop in coops:
        s = coop.stats
        report(
            f"  {coop.client}: computed {s.computed}, reused {s.reused} "
            f"({s.redundancy_avoided:.0%} avoided)"
        )
    assert coop_computed == isolated_computed // n_clients


def test_sharing_granularity_ablation(benchmark, regression_xy):
    """DESIGN.md ablation: sharing at (pipeline, parameter) granularity
    also deduplicates swept parameter settings, not just paths."""
    X, y = regression_xy
    grid = {"selectkbest__k": [2, 3, 4]}

    def session():
        _, darr, coops = make_coops(2)
        run_cooperative_session(coops, X, y, param_grid=grid)
        return darr, coops

    darr, coops = benchmark.pedantic(session, rounds=1, iterations=1)
    # 24 non-selectkbest jobs + 12 selectkbest paths x 3 settings = 60
    expected_jobs = 24 + 12 * 3
    total_computed = sum(c.stats.computed for c in coops)
    print_table(
        "Sharing-granularity ablation — parameter-level dedup",
        ["quantity", "value"],
        [
            ["distinct (pipeline, params) jobs", expected_jobs],
            ["computed across 2 clients", total_computed],
            ["reused by second client", coops[1].stats.reused],
        ],
    )
    assert total_computed == expected_jobs
    assert len(darr) == expected_jobs
