"""Extension bench — geographic replication and disaster recovery.

Paper Fig. 1 text: "The data may be replicated across multiple
geographic areas for high availability and disaster recovery in case one
site fails."  Measures replication traffic (sync vs lazy, delta-assisted)
and the failover/recovery protocol.
"""

import numpy as np
import pytest

from conftest import print_table, report
from repro.distributed import (
    HomeDataStore,
    ReplicatedDataStore,
    SimulatedNetwork,
)


def build(sync: bool):
    net = SimulatedNetwork()
    primary = HomeDataStore("us-east", clock=net.clock)
    replicas = [
        HomeDataStore("eu-west", clock=net.clock),
        HomeDataStore("ap-south", clock=net.clock),
    ]
    for store in [primary] + replicas:
        net.register(store.name, store)
    net.register("client")
    return net, ReplicatedDataStore(primary, replicas, net, sync_replication=sync)


@pytest.mark.parametrize("sync", [True, False], ids=["sync", "lazy"])
def test_replicated_write_throughput(benchmark, sync):
    rng = np.random.default_rng(0)
    data = rng.normal(size=(500, 8))

    def write_burst():
        net, store = build(sync)
        payload = data
        store.put("o", payload)
        for i in range(5):
            payload = payload.copy()
            payload[i, 0] += 1.0
            store.put("o", payload)
        if not sync:
            store.propagate("o")
        return net.total_bytes("replication")

    replicated_bytes = benchmark.pedantic(write_burst, rounds=2, iterations=1)
    assert replicated_bytes > 0


def test_replication_traffic_comparison(benchmark):
    """Sync replication pays per update but uses deltas; lazy batches to
    the latest version only."""
    rng = np.random.default_rng(0)
    data = rng.normal(size=(1000, 8))

    def run(sync):
        net, store = build(sync)
        payload = data
        store.put("o", payload)
        for i in range(10):
            payload = payload.copy()
            payload[i, 0] += 1.0
            store.put("o", payload)
        if not sync:
            store.propagate("o")
        return net.total_bytes("replication"), store.stats["replications"]

    sync_bytes, sync_msgs = run(True)
    lazy_bytes, lazy_msgs = benchmark.pedantic(
        lambda: run(False), rounds=1, iterations=1
    )
    print_table(
        "Replication ablation — sync vs lazy propagation (10 small updates "
        "to a ~128KB object, 2 replicas)",
        ["mode", "replication bytes", "replication messages"],
        [
            ["sync (per update)", f"{sync_bytes:,}", sync_msgs],
            ["lazy (batched)", f"{lazy_bytes:,}", lazy_msgs],
        ],
    )
    # lazy sends fewer messages; sync keeps replicas fresh with deltas,
    # so neither explodes to 10x full copies
    assert lazy_msgs < sync_msgs


def test_failover_and_recovery(benchmark):
    rng = np.random.default_rng(1)
    data = rng.normal(size=(800, 6))

    def disaster_drill():
        net, store = build(True)
        store.put("o", data)
        store.fail_site("us-east")
        version = store.put("o", np.vstack([data, data[:1]]))  # failover write
        payload = store.read("client", "o", consistency="strong")
        store.recover_site("us-east")
        return version, store.version_at("us-east", "o"), len(payload)

    version, recovered_version, n_rows = benchmark.pedantic(
        disaster_drill, rounds=2, iterations=1
    )
    assert version == 2
    assert recovered_version == 2  # recovery resynced the failed primary
    report(
        f"\nfailover drill: write survived primary failure (v{version}); "
        f"us-east recovered to v{recovered_version}"
    )
