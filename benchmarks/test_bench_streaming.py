"""E-streaming — Incremental recompute vs cold sweep on a growing stream.

The paper's change-triggered recomputation (Section III) is only cheap
if a small data delta does not force the whole sweep to rerun.  This
bench pairs the two recompute strategies on identical data and the SAME
serial executor (so the gate is core-count independent): a cold sweep
re-evaluates every (spec, fold) after a <=1% append, while the
streaming evaluator reuses every fold score whose artifact the append
did not invalidate.  The acceptance bar: incremental recompute at least
10x faster than the paired cold sweep.  The summary also records the
delta-chain compaction trade-off (retained chain bytes vs catch-up
wire bytes) in ``BENCH_streaming.json``.

Environment knobs (for CI smoke runs):

- ``REPRO_BENCH_STREAM_ROWS`` — seed rows (default 2000)
- ``REPRO_BENCH_STREAM_ROUNDS`` — timing rounds per side (default 3)
"""

import os
import statistics
import time

import numpy as np
from conftest import bench_extras, print_table, record_engine

from repro.core import ExecutionEngine
from repro.core.graph import TransformerEstimatorGraph
from repro.distributed.datastore import HomeDataStore
from repro.ml.linear import LinearRegression, RidgeRegression
from repro.ml.model_selection import AnchoredSlidingSplit
from repro.ml.preprocessing import MinMaxScaler, NoOp, StandardScaler
from repro.streaming import StreamingEvaluator

ROWS = int(os.environ.get("REPRO_BENCH_STREAM_ROWS", "2000"))
ROUNDS = int(os.environ.get("REPRO_BENCH_STREAM_ROUNDS", "3"))


def make_stream(n, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 8))
    w = rng.normal(size=8)
    y = X @ w + 0.1 * rng.normal(size=n)
    return X, y


def make_graph():
    graph = TransformerEstimatorGraph()
    graph.add_feature_scalers([StandardScaler(), MinMaxScaler(), NoOp()])
    graph.add_regression_models(
        [RidgeRegression(alpha=0.1), LinearRegression()]
    )
    return graph


def make_cv():
    return AnchoredSlidingSplit(
        val_size=max(ROWS // 20, 10),
        initial_train_size=ROWS // 2,
    )


def make_evaluator(incremental, bench_telemetry):
    return StreamingEvaluator(
        make_graph(),
        make_cv(),
        metric="rmse",
        engine=ExecutionEngine(executor="serial"),
        telemetry=bench_telemetry,
        incremental=incremental,
    )


def test_incremental_vs_cold_sweep(benchmark, bench_telemetry):
    X, y = make_stream(ROWS)
    delta_rows = max(1, ROWS // 100)  # the <=1% append
    X_new, y_new = make_stream(delta_rows, seed=1)

    incremental = make_evaluator(True, bench_telemetry)
    incremental.seed(X, y)
    incremental.evaluate()  # populate fold-score artifacts

    cold = make_evaluator(False, bench_telemetry)
    cold.seed(X, y)
    cold.evaluate()

    incremental.append(X_new, y_new)
    cold.append(X_new, y_new)

    cold_times, cold_report = [], None
    for _ in range(ROUNDS):
        started = time.perf_counter()
        cold_report = cold.evaluate()
        cold_times.append(time.perf_counter() - started)

    inc_times, inc_report = [], None
    for _ in range(ROUNDS - 1):
        started = time.perf_counter()
        inc_report = incremental.evaluate()
        inc_times.append(time.perf_counter() - started)
    started = time.perf_counter()
    inc_report = benchmark.pedantic(
        incremental.evaluate, rounds=1, iterations=1
    )
    inc_times.append(time.perf_counter() - started)

    cold_seconds = statistics.median(cold_times)
    inc_seconds = statistics.median(inc_times)
    speedup = cold_seconds / inc_seconds if inc_seconds else float("inf")

    inc_streaming = inc_report.stats["streaming"]
    cold_streaming = cold_report.stats["streaming"]
    # the <=1% append invalidated nothing: every fold is served from
    # its artifact, no job reaches the engine
    assert inc_streaming["folds_reused"] == inc_streaming["folds_total"]
    assert inc_streaming["folds_cold"] == 0
    assert cold_streaming["folds_cold"] == cold_streaming["folds_total"]
    # scores agree: reused artifacts hold exactly the cold fold scores
    cold_by_key = {r.key: r for r in cold_report.results}
    for result in inc_report.results:
        assert (
            result.cv_result.fold_scores
            == cold_by_key[result.key].cv_result.fold_scores
        )
    # the acceptance bar (both sides timed on the same serial executor,
    # so the gate does not depend on the machine's core count)
    assert speedup >= 10.0

    record_engine("streaming", "serial", incremental.engine)
    print_table(
        "Incremental vs cold recompute after a <=1% append",
        ["strategy", "seconds", "folds computed", "folds reused"],
        [
            [
                "cold sweep",
                f"{cold_seconds:.4f}",
                cold_streaming["folds_cold"],
                0,
            ],
            [
                "incremental",
                f"{inc_seconds:.4f}",
                0,
                inc_streaming["folds_reused"],
            ],
        ],
    )
    bench_extras(
        "streaming",
        cpu_count=os.cpu_count(),
        streaming={
            "rows": ROWS,
            "append_rows": delta_rows,
            "append_fraction": round(delta_rows / ROWS, 4),
            "specs": inc_streaming["specs"],
            "folds_total": inc_streaming["folds_total"],
            "folds_reused": inc_streaming["folds_reused"],
            "folds_warm_started": inc_streaming["folds_warm_started"],
            "folds_cold": inc_streaming["folds_cold"],
            "cold_seconds": round(cold_seconds, 6),
            "incremental_seconds": round(inc_seconds, 6),
            "speedup": round(speedup, 2),
            "gate": "incremental >= 10x cold on <=1% new rows "
            "(paired, same serial executor)",
        },
    )


def test_warm_start_advances_new_folds(bench_telemetry):
    X, y = make_stream(ROWS)
    evaluator = make_evaluator(True, bench_telemetry)
    evaluator.seed(X, y)
    evaluator.evaluate()
    # enough rows for one new anchored fold
    stride = make_cv().val_size
    X_new, y_new = make_stream(stride, seed=2)
    evaluator.append(X_new, y_new)

    started = time.perf_counter()
    report = evaluator.evaluate()
    seconds = time.perf_counter() - started

    streaming = report.stats["streaming"]
    assert streaming["folds_warm_started"] > 0
    assert streaming["folds_cold"] == 0
    bench_extras(
        "streaming",
        warm_advance={
            "new_rows": stride,
            "folds_warm_started": streaming["folds_warm_started"],
            "folds_reused": streaming["folds_reused"],
            "seconds": round(seconds, 6),
        },
    )


def test_compaction_storage_recovery_tradeoff(bench_telemetry):
    """Delta-chain compaction: retained bytes vs catch-up wire bytes."""
    appends = 8
    payload = np.zeros((ROWS, 8))

    def run(compact_after):
        store = HomeDataStore(
            history_depth=appends,
            compact_after_versions=compact_after,
        )
        data = payload
        store.put("stream", data)
        for i in range(appends):
            data = np.vstack([data, np.full((ROWS // 100, 8), float(i))])
            store.put("stream", data)
        chain = store.chain_bytes("stream")
        # a reader several versions behind catches up: still within the
        # kept chain, but past what the compacted store retained
        response = store.get("stream", client_version=2)
        return {
            "chain_bytes": chain,
            "catchup_wire_bytes": response.wire_size,
            "catchup_kind": type(response).__name__,
            "compactions": store.stats["compactions"],
        }

    kept = run(compact_after=None)
    compacted = run(compact_after=2)
    # compaction trades retained chain bytes for full-copy catch-up
    assert compacted["chain_bytes"] < kept["chain_bytes"]
    assert compacted["catchup_wire_bytes"] >= kept["catchup_wire_bytes"]
    assert compacted["catchup_kind"] == "FullResponse"
    assert kept["catchup_kind"] == "DeltaResponse"
    print_table(
        "Delta-chain compaction trade-off",
        ["policy", "chain bytes", "catch-up wire bytes", "served as"],
        [
            [
                "keep chain",
                kept["chain_bytes"],
                kept["catchup_wire_bytes"],
                kept["catchup_kind"],
            ],
            [
                "compact after 2",
                compacted["chain_bytes"],
                compacted["catchup_wire_bytes"],
                compacted["catchup_kind"],
            ],
        ],
    )
    bench_extras(
        "streaming",
        compaction={"kept_chain": kept, "compacted": compacted},
    )
