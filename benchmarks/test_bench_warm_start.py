"""E-warm — Artifact store: warm-starting a sweep from a populated disk store.

The cooperative premise of the paper is "not have to repeat
calculations".  The content-addressed `DiskStore` applies it across
*process lifetimes* on one machine: a sweep writes every completed
result under its artifact key; a later run of the same sweep against
the same store root finds them, serves each job `from_cache`, and
skips the fold fits entirely.  This bench runs the Fig. 3 regression
TEG cold then warm, asserts the warm run skips at least 80% of the
fold fits (it actually skips all of them), checks the scores agree
exactly, and records the skip fraction and wall-clock ratio in
``BENCH_warm_start.json``.
"""

import time

from conftest import bench_extras, print_table, report
from repro.core import ExecutionEngine, GraphEvaluator, prepare_regression_graph
from repro.ml.model_selection import KFold


def _sweep(store_spec, regression_xy, bench_telemetry):
    X, y = regression_xy
    engine = ExecutionEngine(store=store_spec)
    evaluator = GraphEvaluator(
        prepare_regression_graph(fast=True, k_best=4),
        cv=KFold(3, random_state=0),
        metric="rmse",
        engine=engine,
        telemetry=bench_telemetry,
    )
    started = time.perf_counter()
    result = evaluator.evaluate(X, y, refit_best=False)
    return result, time.perf_counter() - started, engine


def test_warm_start_skips_fold_fits(
    benchmark, regression_xy, bench_telemetry, tmp_path_factory
):
    store_spec = f"disk:{tmp_path_factory.mktemp('warm-start') / 'cas'}"

    cold, cold_seconds, cold_engine = _sweep(
        store_spec, regression_xy, bench_telemetry
    )
    assert len(cold.results) == 36
    assert cold_engine.cache_stats()["results_reused"] == 0

    (warm, warm_seconds, warm_engine) = benchmark.pedantic(
        lambda: _sweep(store_spec, regression_xy, bench_telemetry),
        rounds=1,
        iterations=1,
    )

    total_folds = sum(len(r.cv_result.fold_scores) for r in cold.results)
    skipped_folds = sum(
        len(r.cv_result.fold_scores) for r in warm.results if r.from_cache
    )
    skip_fraction = skipped_folds / total_folds
    # The acceptance bar: a populated store must spare at least 80% of
    # the fold fits on the second run.
    assert skip_fraction >= 0.8
    assert warm_engine.cache_stats()["results_reused"] == 36
    assert {r.key: r.score for r in warm.results} == {
        r.key: r.score for r in cold.results
    }
    assert warm.best_path == cold.best_path

    tiers = warm_engine.cache_stats()["tiers"]
    bench_extras(
        "warm_start",
        warm_start={
            "jobs": len(cold.results),
            "fold_fits_total": total_folds,
            "fold_fits_skipped": skipped_folds,
            "skip_fraction": round(skip_fraction, 4),
            "results_reused": warm_engine.cache_stats()["results_reused"],
            "cold_seconds": round(cold_seconds, 6),
            "warm_seconds": round(warm_seconds, 6),
            "speedup": round(cold_seconds / warm_seconds, 2)
            if warm_seconds
            else None,
            "disk_tier": {
                "hits": tiers.get("disk", {}).get("hits", 0),
                "bytes_read": tiers.get("disk", {}).get("bytes_read", 0),
            },
        },
    )
    print_table(
        "Warm start — Fig. 3 graph (36 pipelines, 3-fold CV) against a "
        "populated DiskStore",
        ["metric", "value"],
        [
            ["fold fits, cold run", total_folds],
            ["fold fits skipped warm", skipped_folds],
            ["skip fraction", f"{skip_fraction:.2f}"],
            ["cold wall seconds", f"{cold_seconds:.3f}"],
            ["warm wall seconds", f"{warm_seconds:.3f}"],
            ["speedup", f"{cold_seconds / warm_seconds:.1f}x"],
        ],
    )
    report("warm and cold sweeps score identically on all 36 paths")
