"""F1 — Fault-tolerance layer: no-fault overhead.

The failure policy sits on the engine's per-job hot path (a retry loop
around every job plus a ``fault_injector`` attribute read at each hook
point).  This bench sweeps the same graph under the default raise
policy and under a fully armed retry policy with *no faults injected*,
checks the scores are bitwise identical and nothing was retried or
failed, and reports the wall-clock ratio — the robustness machinery
must be (near) free when nothing goes wrong.
"""

from conftest import print_table, report
from repro.core import FailurePolicy, GraphEvaluator, prepare_regression_graph
from repro.ml.model_selection import KFold


def _sweep(regression_xy, failure_policy=None, telemetry=None):
    X, y = regression_xy
    evaluator = GraphEvaluator(
        prepare_regression_graph(fast=True, k_best=4),
        cv=KFold(3, random_state=0),
        metric="rmse",
        failure_policy=failure_policy,
        telemetry=telemetry,
    )
    return evaluator.evaluate(X, y, refit_best=False)


def test_baseline_raise_policy_sweep(benchmark, regression_xy, bench_telemetry):
    sweep = benchmark.pedantic(
        lambda: _sweep(regression_xy, telemetry=bench_telemetry),
        rounds=1,
        iterations=1,
    )
    assert len(sweep.results) == 36
    assert sweep.stats["failures"] == []


def test_retry_policy_without_faults_is_free(
    benchmark, regression_xy, bench_telemetry
):
    policy = FailurePolicy(on_error="retry", max_retries=3)
    guarded = benchmark.pedantic(
        lambda: _sweep(
            regression_xy, failure_policy=policy, telemetry=bench_telemetry
        ),
        rounds=1,
        iterations=1,
    )
    assert len(guarded.results) == 36
    assert guarded.stats["failures"] == []
    counters = bench_telemetry.counters()
    assert counters.get("engine.job_retries", 0) == 0
    assert counters.get("engine.jobs_failed", 0) == 0

    baseline = _sweep(regression_xy)
    assert {r.key: r.score for r in guarded.results} == {
        r.key: r.score for r in baseline.results
    }

    print_table(
        "Fault-tolerance layer — no-fault overhead on the Fig. 3 graph "
        "(36 pipelines, 3-fold CV)",
        ["metric", "value"],
        [
            ["jobs executed", len(guarded.results)],
            ["retries taken", 0],
            ["jobs failed", 0],
            ["scores vs raise policy", "identical on all 36 paths"],
        ],
    )
    report(
        "armed retry policy without faults: zero retries, scores "
        "bitwise identical to the unguarded sweep; compare this row's "
        "seconds against test_baseline_raise_policy_sweep in "
        "telemetry.jsonl for the wall-clock overhead"
    )
