"""Extension bench — budgeted search over the graph's job space.

Paper Section III: "The total number of possible calculations for a data
set is generally too large to exhaustively determine."  Compares the
exhaustive sweep against randomized sampling and successive halving on
(a) jobs executed and (b) quality of the selected pipeline.
"""

from conftest import print_table, report
from repro.core import (
    GraphEvaluator,
    RandomizedGraphSearch,
    SuccessiveHalvingSearch,
    prepare_regression_graph,
)
from repro.ml.model_selection import KFold


def make_evaluator():
    graph = prepare_regression_graph(fast=True, k_best=4)
    return GraphEvaluator(graph, cv=KFold(3, random_state=0), metric="rmse")


def test_exhaustive_baseline(benchmark, regression_xy):
    X, y = regression_xy
    evaluator = make_evaluator()
    sweep = benchmark.pedantic(
        lambda: evaluator.evaluate(X, y, refit_best=False),
        rounds=1,
        iterations=1,
    )
    assert len(sweep.results) == 36


def test_randomized_search(benchmark, regression_xy):
    X, y = regression_xy
    search = RandomizedGraphSearch(
        make_evaluator(), n_iter=12, random_state=0
    )
    sweep = benchmark.pedantic(
        lambda: search.evaluate(X, y, refit_best=False),
        rounds=1,
        iterations=1,
    )
    assert len(sweep.results) == 12


def test_successive_halving(benchmark, regression_xy):
    X, y = regression_xy
    search = SuccessiveHalvingSearch(
        make_evaluator(), folds=(2, 3, 5), eta=3.0
    )
    sweep = benchmark.pedantic(
        lambda: search.evaluate(X, y, refit_best=False),
        rounds=1,
        iterations=1,
    )
    assert sweep.best_path is not None


def test_strategy_comparison(benchmark, regression_xy):
    """Budget vs quality across the three strategies."""
    X, y = regression_xy

    evaluator = make_evaluator()
    exhaustive = evaluator.evaluate(X, y, refit_best=False)
    randomized = RandomizedGraphSearch(
        make_evaluator(), n_iter=12, random_state=0
    ).evaluate(X, y, refit_best=False)
    halving_search = SuccessiveHalvingSearch(
        make_evaluator(), folds=(2, 3, 5), eta=3.0
    )
    halving = halving_search.evaluate(X, y, refit_best=False)
    benchmark.pedantic(
        lambda: RandomizedGraphSearch(
            make_evaluator(), n_iter=6, random_state=1
        ).evaluate(X, y, refit_best=False),
        rounds=1,
        iterations=1,
    )

    halving_fold_evals = sum(
        r["candidates"] * r["folds"] for r in halving_search.rounds_
    )
    rows = [
        ["exhaustive", 36, 36 * 3, f"{exhaustive.best_score:.4f}"],
        ["randomized (12)", 12, 12 * 3, f"{randomized.best_score:.4f}"],
        [
            "successive halving",
            halving_search.total_evaluations_,
            halving_fold_evals,
            f"{halving.best_score:.4f}",
        ],
    ]
    print_table(
        "Budgeted search — jobs executed vs selected-pipeline quality",
        ["strategy", "jobs", "fold evaluations", "best cv-RMSE"],
        rows,
    )
    # shape: budgeted strategies land within 25% of the exhaustive best
    assert randomized.best_score <= exhaustive.best_score * 1.25
    assert halving.best_score <= exhaustive.best_score * 1.25
    report(
        f"exhaustive best path: {exhaustive.best_path}; "
        f"halving best path: {halving.best_path}"
    )
