"""T2 — Table II: "Different steps in time series prediction pipeline".

Exercises every Table II component on a common framed sensor series:
data scaling (MinMax / Robust / NoScaling / Standard), data
preprocessing (Cascaded / Flat / TS-as-IID / TS-as-is), the three model
families (temporal DNN / IID DNN / statistical), TimeSeriesSlidingSplit
evaluation, and RMSE / MAPE scoring.
"""

import pytest

from conftest import print_table
from repro.ml.metrics import (
    mean_absolute_percentage_error,
    root_mean_squared_error,
)
from repro.ml.model_selection import TimeSeriesSlidingSplit, cross_validate
from repro.ml.preprocessing import MinMaxScaler, RobustScaler, StandardScaler
from repro.nn import DNNRegressor, LSTMRegressor
from repro.timeseries import (
    ARModel,
    CascadedWindows,
    FlatWindowing,
    NoScaling,
    TSAsIID,
    TSAsIs,
    WindowScaler,
    ZeroModel,
)

SCALINGS = [
    ("Min-Max Scaling", WindowScaler(MinMaxScaler())),
    ("Robust Scaling", WindowScaler(RobustScaler())),
    ("No Scaling", NoScaling()),
    ("Standard Scalar", WindowScaler(StandardScaler())),
]
PREPROCESSORS = [
    ("Cascaded Windowing", CascadedWindows()),
    ("Flat Windowing", FlatWindowing()),
    ("TS-as-IID", TSAsIID()),
    ("TS-as-is", TSAsIs()),
]


@pytest.mark.parametrize("name,scaler", SCALINGS, ids=[n for n, _ in SCALINGS])
def test_data_scaling_step(benchmark, sensor_frames, name, scaler):
    X, _ = sensor_frames
    benchmark(lambda: scaler.fit(X).transform(X))


@pytest.mark.parametrize(
    "name,prep", PREPROCESSORS, ids=[n for n, _ in PREPROCESSORS]
)
def test_data_preprocessing_step(benchmark, sensor_frames, name, prep):
    X, _ = sensor_frames
    benchmark(lambda: prep.fit(X).transform(X))


def test_model_training_temporal_dnn(benchmark, sensor_frames):
    X, y = sensor_frames
    benchmark.pedantic(
        lambda: LSTMRegressor(epochs=4, hidden_size=8, random_state=0).fit(X, y),
        rounds=2,
        iterations=1,
    )


def test_model_training_iid_dnn(benchmark, sensor_frames):
    X, y = sensor_frames
    flat = FlatWindowing().fit_transform(X)
    benchmark.pedantic(
        lambda: DNNRegressor(epochs=6, random_state=0).fit(flat, y),
        rounds=2,
        iterations=1,
    )


@pytest.mark.parametrize(
    "name,model",
    [("Zero", ZeroModel()), ("AR", ARModel(order=5))],
    ids=["Zero", "AR"],
)
def test_model_training_statistical(benchmark, sensor_frames, name, model):
    X, y = sensor_frames
    from repro.ml.base import clone

    benchmark(lambda: clone(model).fit(X, y))


def test_model_evaluation_sliding_split(benchmark, sensor_frames):
    X, y = sensor_frames
    cv = TimeSeriesSlidingSplit(n_splits=3, buffer_size=2)
    result = benchmark(
        lambda: cross_validate(ZeroModel(), X, y, cv=cv, metric="rmse")
    )
    predictions = ZeroModel().fit(X, y).predict(X)
    print_table(
        "Table II reproduction — component inventory exercised",
        ["step", "options exercised"],
        [
            ["Data Scaling", "MinMax / Robust / NoScaling / Standard"],
            ["Data Preprocessing", "Cascaded / Flat / TS-as-IID / TS-as-is"],
            ["Model Training", "Temporal DNN / IID DNN / Statistical"],
            ["Model Evaluation", f"TimeSeriesSlidingSplit ({len(result.fold_scores)} folds)"],
            [
                "Model Score",
                f"RMSE={root_mean_squared_error(y, predictions):.4f} / "
                f"MAPE={mean_absolute_percentage_error(y, predictions):.1f}%",
            ],
        ],
    )
