"""S1 — Section III: delta encoding bandwidth savings.

"This delta may be considerably smaller than version 3 of o1.  If this
is the case, then sending d(o1, 2, 3) ... will save considerable
bandwidth over sending the entire copy of o1."

Measures delta-vs-full bytes across an update-size sweep and runs the
DESIGN.md delta-chain-depth ablation (how many d(o, k-i, k) the home
store retains vs the hit rate of stale clients).
"""

import numpy as np
import pytest

from conftest import print_table, report
from repro.distributed import (
    DeltaResponse,
    FullResponse,
    HomeDataStore,
    compute_delta,
)
from repro.distributed.objects import encode_payload

ROWS, COLS = 2000, 10


@pytest.fixture(scope="module")
def dataset():
    return np.random.default_rng(0).normal(size=(ROWS, COLS))


def test_delta_computation_throughput(benchmark, dataset):
    old = encode_payload(dataset)
    updated = dataset.copy()
    updated[:20] += 1.0
    new = encode_payload(updated)
    delta = benchmark(lambda: compute_delta("d", 1, 2, old, new))
    assert delta.size < len(new)


def test_bandwidth_sweep_update_size(benchmark, dataset):
    """The headline series: delta bytes vs fraction of the object
    touched."""
    old = encode_payload(dataset)

    def sweep():
        rows = []
        for touched in (1, 10, 100, 1000, ROWS):
            updated = dataset.copy()
            updated[:touched] += 1.0
            new = encode_payload(updated)
            delta = compute_delta("d", 1, 2, old, new)
            rows.append((touched, len(new), delta.size))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "S1 reproduction — delta vs full transfer by update size "
        f"(object: {ROWS}x{COLS} float64 dataset)",
        ["rows touched", "full bytes", "delta bytes", "saved"],
        [
            [
                touched,
                f"{full:,}",
                f"{delta:,}",
                f"{1 - delta / full:.1%}",
            ]
            for touched, full, delta in rows
        ],
    )
    # shape: savings decay as more of the object changes
    savings = [1 - d / f for _, f, d in rows]
    assert savings[0] > 0.99
    assert savings == sorted(savings, reverse=True)
    assert savings[-1] < 0.2


@pytest.mark.parametrize("depth", [1, 2, 4, 8])
def test_chain_depth_ablation(benchmark, dataset, depth):
    """Ablation: a deeper delta chain serves staler clients with deltas;
    beyond it they fall back to full copies."""

    def serve_stale_clients():
        store = HomeDataStore(history_depth=depth, delta_threshold=0.9)
        data = dataset.copy()
        store.put("o", data)
        n_versions = 10
        for i in range(1, n_versions):
            data = data.copy()
            data[i, 0] += 1.0
            store.put("o", data)
        current = store.current_version("o")
        hits, total_bytes = 0, 0
        for stale in range(1, current):
            response = store.get("o", client_version=stale)
            total_bytes += response.wire_size
            if isinstance(response, DeltaResponse):
                hits += 1
        return hits, total_bytes, current - 1

    hits, total_bytes, clients = benchmark.pedantic(
        serve_stale_clients, rounds=1, iterations=1
    )
    report(
        f"\nchain depth {depth}: {hits}/{clients} stale clients served by "
        f"delta; {total_bytes:,} bytes total"
    )
    assert hits == min(depth, clients)
