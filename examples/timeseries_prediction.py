"""Time Series Prediction pipeline (paper Section IV-D, Fig. 11).

Generates an industrial multivariate sensor series, frames it for
forecasting (history window -> next value), sweeps the full
Data Scaling x Data Preprocessing x Modelling graph — LSTMs, CNNs,
WaveNet, SeriesNet, standard DNNs, Zero and AR models with their
family-specific windowing — under TimeSeriesSlidingSplit cross
validation, and reports the winner per model family.

Run:  python examples/timeseries_prediction.py
"""

from collections import defaultdict

import numpy as np

from repro.core import GraphEvaluator, to_ascii
from repro.datasets import make_sensor_series
from repro.ml.metrics import root_mean_squared_error
from repro.ml.model_selection import TimeSeriesSlidingSplit
from repro.timeseries import make_supervised, train_test_split_series
from repro.timeseries.pipeline import MODEL_FAMILIES, build_time_series_graph


def family_of(model_name: str) -> str:
    for family, members in MODEL_FAMILIES.items():
        if model_name in members:
            return family
    return "unknown"


def main() -> None:
    # A 3-variable sensor stream with seasonality, trend and coupling.
    series = make_sensor_series(
        length=420, n_variables=3, seasonality=1.0, trend=0.001,
        noise=0.06, random_state=11,
    )
    history = 12
    X, y = make_supervised(series, history=history, horizon=1, target=0)
    X_train, X_test, y_train, y_test = train_test_split_series(X, y, 0.2)
    print(
        f"series: {series.shape[0]} steps x {series.shape[1]} vars; "
        f"history window p={history}; "
        f"{len(X_train)} train / {len(X_test)} test windows\n"
    )

    graph = build_time_series_graph(fast=False, random_state=0)
    print(to_ascii(graph))
    print()

    evaluator = GraphEvaluator(
        graph,
        cv=TimeSeriesSlidingSplit(n_splits=3, buffer_size=3),
        metric="rmse",
    )
    report = evaluator.evaluate(X_train, y_train)

    # Winner per family (Table II's three model categories).
    best_per_family = defaultdict(lambda: None)
    for result in report.results:
        model_name = result.path.split(" -> ")[-1]
        family = family_of(model_name)
        current = best_per_family[family]
        if current is None or result.score < current.score:
            best_per_family[family] = result
    print("best pipeline per model family (cross-validated RMSE):")
    for family in ("temporal", "iid", "statistical"):
        result = best_per_family[family]
        print(f"  {family:12s} {result.score:8.4f}  {result.path}")

    print(f"\noverall best: {report.best_path}")
    print(f"cross-validated RMSE: {report.best_score:.4f}")

    # Held-out evaluation of the refit winner vs the Zero baseline.
    test_rmse = root_mean_squared_error(
        y_test, report.best_model.predict(X_test)
    )
    zero_rmse = root_mean_squared_error(y_test, X_test[:, -1, 0])
    print(f"\nheld-out RMSE (best)       : {test_rmse:.4f}")
    print(f"held-out RMSE (Zero model) : {zero_rmse:.4f}")
    print(f"improvement over persistence: {zero_rmse / test_rmse:.2f}x")


if __name__ == "__main__":
    main()
