"""Declarative structured analytics (paper Section III).

The paper's non-expert interface: describe the calculation as data —
named options per step, a cross-validation strategy, a metric — and let
the system build the Transformer-Estimator Graph, run it, test the
winner on held-out data, and publish everything to a DARR so the next
user (or the same user tomorrow) pays nothing for the same question.

Run:  python examples/structured_task.py
"""

import numpy as np

from repro.core import run_structured_task
from repro.darr import DARR
from repro.datasets import make_failure_dataset, make_regression
from repro.distributed import SimulatedNetwork


def regression_task() -> None:
    X, y = make_regression(
        n_samples=250, n_features=8, n_informative=5, noise=0.2,
        random_state=5,
    )
    # sensors drop readings in the field
    X = X.copy()
    X[::11, 2] = np.nan

    task = {
        "name": "yield-prediction",
        "steps": {
            "imputation": ["median"],
            "outliers": ["clip", "none"],
            "scaling": ["standard", "minmax", "none"],
            "feature_selection": [
                {"name": "select_k_best", "k": 5},
                {"name": "pca", "n_components": 4},
                "none",
            ],
            "models": [
                "linear",
                {"name": "random_forest", "n_estimators": 25, "random_state": 0},
                {"name": "gradient_boosting", "n_estimators": 40, "random_state": 0},
            ],
        },
        "cv": {"strategy": "kfold", "k": 4, "random_state": 0},
        "metric": "rmse",
        "test_size": 0.25,
    }

    net = SimulatedNetwork()
    net.register("structured-task")
    darr = DARR("darr", net)

    outcome = run_structured_task(task, X, y, darr=darr)
    print("regression task:", outcome.summary())
    print("top pipelines:")
    print(outcome.report.leaderboard(5))

    # Run it again: the DARR already holds every result.
    repeat = run_structured_task(task, X, y, darr=darr)
    print(
        f"\nsecond run published {repeat.published} new results "
        f"(everything reused from the DARR)"
    )


def classification_task() -> None:
    X, y = make_failure_dataset(
        n_samples=500, failure_rate=0.1, random_state=2
    )
    task = {
        "name": "failure-screening",
        "steps": {
            "scaling": ["standard"],
            "models": [
                {"name": "logistic", "class_weight": "balanced"},
                {
                    "name": "random_forest_classifier",
                    "n_estimators": 20,
                    "random_state": 0,
                },
            ],
        },
        "cv": {"strategy": "kfold", "k": 4, "random_state": 0},
        "metric": "f1-score",
        "test_size": 0.2,
    }
    outcome = run_structured_task(task, X, y)
    print("\nclassification task:", outcome.summary())


def main() -> None:
    regression_task()
    classification_task()


if __name__ == "__main__":
    main()
