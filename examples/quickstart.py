"""Quickstart: the paper's Listing 1 + Listing 2 on a regression task.

Builds the Fig. 3 Transformer-Estimator Graph (4 feature scalers x 3
feature selectors x 3 regression models = 36 pipelines), evaluates every
pipeline with K-fold cross-validation, and reports the best path.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import (
    GraphEvaluator,
    TransformerEstimatorGraph,
    describe,
    to_ascii,
)
from repro.datasets import make_regression
from repro.ml.decomposition import PCA, Covariance
from repro.ml.ensemble import RandomForestRegressor
from repro.ml.feature_selection import SelectKBest
from repro.ml.model_selection import KFold
from repro.ml.preprocessing import (
    MinMaxScaler,
    NoOp,
    RobustScaler,
    StandardScaler,
)
from repro.ml.tree import DecisionTreeRegressor
from repro.nn import DNNRegressor


def prepare_graph() -> TransformerEstimatorGraph:
    """Paper Listing 1, verbatim structure (MLPRegressor -> DNNRegressor,
    our numpy multilayer perceptron)."""
    task = TransformerEstimatorGraph(name="regression_task")
    task.add_feature_scalers(
        [MinMaxScaler(), StandardScaler(), RobustScaler(), NoOp()]
    )
    task.add_feature_selector(
        [[Covariance(), PCA(n_components=5)], SelectKBest(k=5), NoOp()]
    )
    task.add_regression_models(
        [
            DecisionTreeRegressor(max_depth=8, random_state=0),
            DNNRegressor(architecture="simple", epochs=25, random_state=0),
            RandomForestRegressor(n_estimators=30, random_state=0),
        ]
    )
    task.create_graph()
    return task


def main() -> None:
    X, y = make_regression(
        n_samples=300, n_features=10, n_informative=5, noise=0.2,
        random_state=7,
    )
    print(f"dataset: X{X.shape}, y{y.shape}\n")

    task = prepare_graph()
    print(to_ascii(task))
    print()
    print(describe(task))
    print()

    # Paper Listing 2: configure cross-validation and the metric, then
    # execute the task.
    task.set_cross_validation(k=5)
    task.set_accuracy("rmse")
    model, best_score, best_path = task.execute(X, y)

    print(f"best path : {best_path}")
    print(f"best RMSE : {best_score:.4f} (5-fold cross-validated)")

    # The returned model is the winning pipeline refit on all data.
    holdout = X[:5]
    print(f"sample predictions: {np.round(model.predict(holdout), 3)}")
    print(f"sample truth      : {np.round(y[:5], 3)}")

    # Full leaderboard for the curious.
    evaluator = GraphEvaluator(task, cv=KFold(5, random_state=0), metric="rmse")
    report = evaluator.evaluate(X, y, refit_best=False)
    print("\ntop pipelines:")
    print(report.leaderboard(8))


if __name__ == "__main__":
    main()
