"""Model lifecycle under drift, with replicated model storage.

Paper Section II raises the model-lifecycle problem ("Availability of
more data may require the model to be retrained ... There may be concept
drifts") and Section III/Fig. 1 describe geographically replicated
storage for disaster recovery.  This example runs both: a
drift-triggered :class:`ModelLifecycleManager` keeps a graph-selected
model fresh as an industrial process drifts, archiving every generation
into a primary data store replicated across two more sites; midway
through, the primary site fails and the system keeps operating.

Run:  python examples/model_lifecycle.py
"""

import numpy as np

from repro.core import GraphEvaluator, TransformerEstimatorGraph
from repro.distributed import (
    DriftPolicy,
    HomeDataStore,
    ModelLifecycleManager,
    ReplicatedDataStore,
    SimulatedNetwork,
)
from repro.ml.ensemble import RandomForestRegressor
from repro.ml.linear import LinearRegression, RidgeRegression
from repro.ml.metrics import root_mean_squared_error
from repro.ml.model_selection import KFold
from repro.ml.preprocessing import NoOp, StandardScaler


def build_evaluator() -> GraphEvaluator:
    graph = TransformerEstimatorGraph(name="process_model")
    graph.add_feature_scalers([StandardScaler(), NoOp()])
    graph.add_regression_models(
        [
            LinearRegression(),
            RidgeRegression(alpha=1.0),
            RandomForestRegressor(n_estimators=10, random_state=0),
        ]
    )
    return GraphEvaluator(graph, cv=KFold(3, random_state=0), metric="rmse")


def drifting_process(rng, step: int, n: int = 150):
    """An industrial process whose inputs and concept drift over time."""
    coef = np.array([1.0, -0.5, 2.0]) + 0.25 * step
    X = rng.normal(size=(n, 3)) + 0.3 * step
    y = X @ coef + 0.1 * rng.normal(size=n)
    return X, y


def main() -> None:
    rng = np.random.default_rng(0)

    # --- replicated model storage -----------------------------------------
    net = SimulatedNetwork()
    primary = HomeDataStore("us-east", clock=net.clock)
    replicas = [
        HomeDataStore("eu-west", clock=net.clock),
        HomeDataStore("ap-south", clock=net.clock),
    ]
    for store in [primary] + replicas:
        net.register(store.name, store)
    net.register("operator")
    replicated = ReplicatedDataStore(primary, replicas, net)

    # --- lifecycle management -----------------------------------------------
    manager = ModelLifecycleManager(
        build_evaluator(),
        DriftPolicy(threshold=0.35),
        model_store=primary,
        model_name="process-model",
    )
    X, y = drifting_process(rng, step=0)
    record = manager.initialize(X, y)
    replicated.propagate("process-model")
    print(
        f"generation {record.generation}: {record.best_path} "
        f"(cv RMSE {record.best_score:.3f})"
    )

    frozen_first_model = manager.active_model
    for step in range(1, 7):
        X, y = drifting_process(rng, step=step)
        retrained = manager.observe_update(X, y)
        if retrained:
            replicated.propagate("process-model")
            record = manager.current_record()
            fresh = root_mean_squared_error(y, manager.predict(X))
            stale = root_mean_squared_error(
                y, frozen_first_model.predict(X)
            )
            print(
                f"step {step}: drift detected -> generation "
                f"{record.generation} ({record.best_path}); RMSE now "
                f"{fresh:.3f} vs {stale:.3f} with the frozen gen-1 model"
            )
        else:
            print(f"step {step}: within tolerance, no retrain")

        if step == 4:
            print("  !! primary site us-east fails")
            replicated.fail_site("us-east")
            manager.model_store = replicated._store("eu-west")

    print(
        f"\ngenerations trained: {manager.generations}; "
        f"versions at eu-west: "
        f"{replicated.version_at('eu-west', 'process-model')}"
    )
    replicated.recover_site("us-east")
    print(
        "us-east recovered and resynced to version "
        f"{replicated.version_at('us-east', 'process-model')}"
    )
    # The archived current generation is directly usable from a replica.
    archived = replicated._store("eu-west").current("process-model").payload()
    print(
        "archived model from eu-west predicts:",
        np.round(archived.predict(X[:3]), 2),
    )


if __name__ == "__main__":
    main()
