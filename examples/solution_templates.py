"""The four industrial solution templates (paper Section IV-E).

Runs Failure Prediction Analysis, Root Cause Analysis, Anomaly Analysis
and Cohort Analysis on synthetic heavy-industry data and prints each
template's report — the consumable, non-expert-facing interface the
paper motivates.

Run:  python examples/solution_templates.py
"""

import numpy as np

from repro.datasets import (
    make_asset_fleet,
    make_failure_dataset,
    make_process_outcomes,
)
from repro.templates import (
    AnomalyAnalysisTemplate,
    CohortAnalysisTemplate,
    FailurePredictionTemplate,
    RootCauseTemplate,
    summarize_asset_series,
)


def failure_prediction() -> None:
    sensors, failures = make_failure_dataset(
        n_samples=600, n_sensors=8, failure_rate=0.08, missing_rate=0.03,
        random_state=0,
    )
    template = FailurePredictionTemplate(n_splits=4, fast=True).fit(
        sensors, failures
    )
    print(template.report().to_text())
    at_risk = template.predict_proba(sensors[:50])[:, 1]
    print(f"\n  highest-risk asset in batch: #{int(np.argmax(at_risk))} "
          f"(p={at_risk.max():.2f})\n")


def root_cause() -> None:
    X, y, names, _ = make_process_outcomes(n_samples=500, random_state=1)
    template = RootCauseTemplate(
        names,
        actionable=["temperature", "pressure", "feed_rate"],
        random_state=0,
    ).fit(X, y)
    print(template.report().to_text())
    print(f"\n  ranked root causes: {template.root_causes()}")
    target = float(y.mean() + 2.0)
    change = template.intervention(X[0], desired_outcome=target)
    (factor, delta), = change.items()
    print(
        f"  intervention: to reach yield {target:.2f} from run #0, "
        f"change {factor} by {delta:+.2f}"
    )
    counterfactual = template.what_if(X[:1], {"temperature": 0.0})
    print(
        f"  what-if: run #0 with temperature forced to 0.0 -> predicted "
        f"yield {counterfactual[0]:.2f} (actual was {y[0]:.2f})\n"
    )


def anomaly_analysis() -> None:
    rng = np.random.default_rng(2)
    normal_ops = rng.normal(size=(500, 5))
    template = AnomalyAnalysisTemplate(
        contamination=0.02, n_modes=2, random_state=0
    ).fit(normal_ops)
    print(template.report().to_text())
    suspicious = normal_ops[:5] + 10.0
    print(
        f"\n  5 off-envelope readings flagged: "
        f"{template.predict(suspicious).tolist()}\n"
    )


def cohort_analysis() -> None:
    series, _, _ = make_asset_fleet(
        n_assets=36, n_cohorts=4, series_length=200, random_state=3
    )
    features = summarize_asset_series(series)
    template = CohortAnalysisTemplate(random_state=0).fit(features)
    print(template.report().to_text())
    sizes = template.report().details["cohort_sizes"]
    print(f"\n  cohort sizes: {sizes}\n")


def main() -> None:
    for section in (
        failure_prediction,
        root_cause,
        anomaly_analysis,
        cohort_analysis,
    ):
        section()
        print("-" * 70)


if __name__ == "__main__":
    main()
