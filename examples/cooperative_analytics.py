"""Cooperative distributed analytics (paper Section III, Figs. 1-2).

Simulates the paper's deployment: a home data store with versioned
objects and delta encoding, client nodes and a cloud analytics server on
a latency/bandwidth-accounted network, lease-based push updates, a
distributed scheduler fanning pipeline evaluations across nodes, and the
DARR letting three clients share results instead of repeating work.

Run:  python examples/cooperative_analytics.py
"""

import numpy as np

from repro.core import GraphEvaluator, prepare_regression_graph
from repro.darr import DARR, CooperativeEvaluator, run_cooperative_session
from repro.datasets import make_regression
from repro.distributed import (
    ClientNode,
    CloudAnalyticsServer,
    DistributedScheduler,
    HomeDataStore,
    LeaseManager,
    NetworkLink,
    SimulatedNetwork,
)
from repro.ml.model_selection import KFold


def main() -> None:
    # --- deployment ------------------------------------------------------
    net = SimulatedNetwork(
        default_link=NetworkLink(latency_s=0.02, bandwidth_bps=5e6)
    )
    store = HomeDataStore("home-store", history_depth=4, clock=net.clock)
    net.register("home-store", store)
    clients = [ClientNode(f"client-{i}", net) for i in range(3)]
    cloud = CloudAnalyticsServer("cloud-1", net, compute_speed=4.0)
    darr = DARR("darr", net)
    leases = LeaseManager(store, net, default_duration=600.0)

    # --- versioned data distribution with delta encoding ------------------
    X, y = make_regression(
        n_samples=400, n_features=8, n_informative=5, random_state=3
    )
    store.put("dataset", {"X": X, "y": y})
    for node in clients + [cloud]:
        node.pull(store, "dataset")
    full_bytes = net.total_bytes("pull-full")
    print(f"initial sync: {full_bytes:,} bytes (full copies to 4 nodes)")

    # subscribe for delta pushes, then apply a small update
    for client in clients:
        leases.subscribe(
            client.name, "dataset", client.accept_push, mode="delta"
        )
        leases.record_client_version(client.name, "dataset", 1)
    X[0, 0] += 0.5
    store.put("dataset", {"X": X, "y": y})
    delta_bytes = net.total_bytes("push-delta")
    object_size = store.current("dataset").size
    print(
        f"one-cell update pushed as deltas: {delta_bytes:,} bytes total to "
        f"3 clients vs {object_size:,} bytes per full copy "
        f"({3 * object_size / max(delta_bytes, 1):,.0f}x saved)\n"
    )

    # --- distributed evaluation (Fig. 1) -----------------------------------
    graph = prepare_regression_graph(fast=True, k_best=4)
    evaluator = GraphEvaluator(
        graph, cv=KFold(3, random_state=0), metric="rmse"
    )
    jobs = list(evaluator.iter_jobs(X, y))
    scheduler = DistributedScheduler(clients + [cloud], policy="weighted")
    outcome = scheduler.execute(evaluator, jobs, X, y)
    print(f"distributed sweep: {len(jobs)} pipeline evaluations")
    for name, keys in sorted(outcome.assignment.items()):
        print(
            f"  {name:10s} ran {len(keys):2d} jobs "
            f"({outcome.node_busy_seconds[name]:.2f}s simulated)"
        )
    print(
        f"  makespan {outcome.makespan_seconds:.2f}s vs "
        f"{outcome.total_compute_seconds:.2f}s serial "
        f"({outcome.speedup:.1f}x speedup)\n"
    )

    # --- cooperative clients via the DARR (Fig. 2) --------------------------
    coops = [
        CooperativeEvaluator(
            GraphEvaluator(
                prepare_regression_graph(fast=True, k_best=4),
                cv=KFold(3, random_state=0),
                metric="rmse",
            ),
            darr,
            client.name,
        )
        for client in clients
    ]
    run_cooperative_session(coops, X, y)
    print("cooperative session (3 clients, same dataset):")
    for coop in coops:
        s = coop.stats
        print(
            f"  {coop.client}: computed {s.computed:2d}, reused "
            f"{s.reused:2d} -> {s.redundancy_avoided:.0%} of work avoided"
        )
    total = sum(c.stats.computed for c in coops)
    naive = len(jobs) * len(coops)
    print(
        f"  total computations: {total} (vs {naive} without the DARR — "
        f"{naive / total:.0f}x less work)"
    )
    best = darr.best()
    print(f"\nbest shared result: {best.path}")
    print(f"  score {best.score:.4f} ({best.metric}), computed by {best.client}")
    print(f"  explanation: {best.explanation}")


if __name__ == "__main__":
    main()
