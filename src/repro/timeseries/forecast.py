"""Supervised framing of multivariate time series (paper Fig. 6).

"a prediction task is to look at a history of the time series data,
usually for a fixed window size called **history window** of length p,
and try to predict the value of the next few timestamps, called
prediction window of a particular variable which has not been observed
yet.  Since the input to the model here is multivariate time series data
(v variables) for some history window (p), the input data becomes
2-dimensional with the shape (v * p)."

:func:`make_supervised` turns a raw series of shape ``(L, v)`` into the
canonical *cascaded-window* supervised pair: ``X`` of shape
``(L - p - h + 1, p, v)`` and ``y`` of shape ``(L - p - h + 1,)`` holding
the target variable ``h`` steps ahead.  All of the Fig. 7–10 windowing
transformers consume this canonical 3-D representation.
"""

from __future__ import annotations

from typing import Any, Tuple

import numpy as np

__all__ = [
    "make_supervised",
    "as_series",
    "train_test_split_series",
    "recursive_forecast",
]


def as_series(data: Any) -> np.ndarray:
    """Coerce to a 2-D ``(length, variables)`` float array; a 1-D input
    becomes a single-variable series."""
    arr = np.asarray(data, dtype=float)
    if arr.ndim == 1:
        arr = arr.reshape(-1, 1)
    if arr.ndim != 2:
        raise ValueError(
            f"a time series must be 1-D or 2-D, got ndim={arr.ndim}"
        )
    if arr.shape[0] < 2:
        raise ValueError("a time series needs at least 2 timestamps")
    if not np.all(np.isfinite(arr)):
        raise ValueError("series contains NaN or infinity; impute first")
    return arr


def make_supervised(
    series: Any,
    history: int,
    horizon: int = 1,
    target: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Frame ``series`` for forecasting.

    Parameters
    ----------
    series:
        ``(L, v)`` multivariate series (or 1-D, treated as ``v=1``).
    history:
        History-window length ``p`` — how many past timestamps each
        sample sees.
    horizon:
        Steps ahead of the window end to predict (1 = the next
        timestamp).
    target:
        Column index of the variable being predicted.

    Returns
    -------
    X : ndarray of shape ``(L - p - horizon + 1, p, v)``
        Cascaded windows, ordered by time (sample ``i`` covers timestamps
        ``[i, i + p)``).
    y : ndarray of shape ``(L - p - horizon + 1,)``
        ``series[i + p + horizon - 1, target]`` for each window ``i``.
    """
    series = as_series(series)
    length, n_vars = series.shape
    if not 1 <= history < length:
        raise ValueError(
            f"history must be in [1, {length - 1}], got {history}"
        )
    if horizon < 1:
        raise ValueError("horizon must be >= 1")
    if not 0 <= target < n_vars:
        raise ValueError(
            f"target must be a column index in [0, {n_vars}), got {target}"
        )
    n_samples = length - history - horizon + 1
    if n_samples < 1:
        raise ValueError(
            f"series of length {length} too short for history={history} "
            f"and horizon={horizon}"
        )
    # Strided windowing without copying, then one materializing copy.
    stride_t, stride_v = series.strides
    windows = np.lib.stride_tricks.as_strided(
        series,
        shape=(n_samples, history, n_vars),
        strides=(stride_t, stride_t, stride_v),
        writeable=False,
    ).copy()
    labels = series[history + horizon - 1 :, target][:n_samples].copy()
    return windows, labels


def train_test_split_series(
    X: np.ndarray, y: np.ndarray, test_fraction: float = 0.25
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Chronological train/test split of framed data — the head trains,
    the tail tests (never shuffled: shuffling windows leaks the future
    into training)."""
    if len(X) != len(y):
        raise ValueError("X and y have inconsistent lengths")
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    n_test = max(1, int(round(test_fraction * len(X))))
    if n_test >= len(X):
        raise ValueError("test_fraction leaves no training data")
    split = len(X) - n_test
    return X[:split], X[split:], y[:split], y[split:]


def recursive_forecast(
    model: Any,
    series: Any,
    steps: int,
    history: int,
    target: int = 0,
) -> np.ndarray:
    """Multi-step forecast by feeding predictions back as inputs.

    The paper's framing predicts a "prediction window of a particular
    variable"; for horizons beyond one step the standard recursive
    strategy applies: predict t+1, append it to the (target column of
    the) series, slide the window, repeat.  Non-target variables are
    held at their last observed value — the usual open-loop assumption
    when exogenous futures are unknown.

    Parameters
    ----------
    model:
        A fitted estimator consuming cascaded windows
        ``(1, history, v)`` (a pipeline whose preprocessing stage
        reshapes for its estimator family works too).
    series:
        The observed ``(L, v)`` history.
    steps:
        Number of future values to produce.
    history:
        Window length the model was trained with.
    target:
        The predicted variable's column.
    """
    series = as_series(series)
    if steps < 1:
        raise ValueError("steps must be >= 1")
    if history > len(series):
        raise ValueError(
            f"history={history} exceeds series length {len(series)}"
        )
    if not 0 <= target < series.shape[1]:
        raise ValueError(
            f"target must be a column index in [0, {series.shape[1]})"
        )
    window = series[-history:].copy()
    out = np.empty(steps)
    for step in range(steps):
        prediction = float(
            np.asarray(model.predict(window[None, :, :])).ravel()[0]
        )
        out[step] = prediction
        next_row = window[-1].copy()
        next_row[target] = prediction
        window = np.vstack([window[1:], next_row])
    return out
