"""Time-series prediction components (paper Section IV-C/D)."""

from repro.timeseries.forecast import (
    as_series,
    make_supervised,
    recursive_forecast,
    train_test_split_series,
)
from repro.timeseries.models import ARModel, MovingAverageModel, ZeroModel
from repro.timeseries.pipeline import MODEL_FAMILIES, build_time_series_graph
from repro.timeseries.windows import (
    CascadedWindows,
    FlatWindowing,
    NoScaling,
    TSAsIID,
    TSAsIs,
    WindowScaler,
)

__all__ = [
    "make_supervised",
    "as_series",
    "train_test_split_series",
    "recursive_forecast",
    "CascadedWindows",
    "FlatWindowing",
    "TSAsIID",
    "TSAsIs",
    "WindowScaler",
    "NoScaling",
    "build_time_series_graph",
    "MODEL_FAMILIES",
    "ZeroModel",
    "ARModel",
    "MovingAverageModel",
]
