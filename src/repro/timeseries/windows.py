"""Time-series data-preprocessing transformers (paper Figs. 7–10).

These address the paper's three time-series challenges: normalization,
"addressing the data ingesting policies for different estimators" and
"preserving the temporal nature of the data".  All four consume the
canonical 3-D cascaded representation produced by
:func:`repro.timeseries.forecast.make_supervised` and reshape it for
their estimator family:

===================  =======================  =============================
Transformer          Output shape             Consumed by
===================  =======================  =============================
CascadedWindows      ``(n, p, v)`` (3-D)      Temporal DNNs (LSTM/CNN/
                                              WaveNet/SeriesNet)
FlatWindowing        ``(n, p*v)``             Standard DNNs (history kept,
                                              order lost)
TSAsIID              ``(n, v)``               Standard DNNs / IID models
                                              (no history at all)
TSAsIs               ``(n, p, v)`` untouched  Statistical models (Zero,
                                              AR) that window internally
===================  =======================  =============================

:class:`WindowScaler` adapts any 2-D feature scaler (StandardScaler etc.)
to the 3-D window representation so the Data Scaling stage of the Fig. 11
graph can precede windowed paths.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.ml.base import (
    BaseComponent,
    FusedStepKernel,
    TransformerMixin,
    check_is_fitted,
    kernel_is_trustworthy,
)

__all__ = [
    "CascadedWindows",
    "FlatWindowing",
    "TSAsIID",
    "TSAsIs",
    "WindowScaler",
    "NoScaling",
]


def _as_windows(X: Any, name: str) -> np.ndarray:
    arr = np.asarray(X, dtype=float)
    if arr.ndim == 2:
        # a (n, v) matrix is a degenerate p=1 window set
        arr = arr[:, None, :]
    if arr.ndim != 3:
        raise ValueError(
            f"{name} expects cascaded windows (n, history, variables), "
            f"got shape {np.asarray(X).shape}; frame the series with "
            "repro.timeseries.make_supervised first"
        )
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} input contains NaN or infinity")
    return arr


class CascadedWindows(TransformerMixin, BaseComponent):
    """Pass cascaded windows through for temporal models (Fig. 7).

    "the time series data is transformed into a series of cascaded
    windows ... used for the Temporal DNN models like LSTMs and CNNs.
    They contain the temporal history of the data and preserve the order
    of the time series data."
    """

    output_kind = "temporal"
    partial_fit_parity = "exact"

    def __init__(self):
        self.history_: Optional[int] = None
        self.n_variables_: Optional[int] = None

    def fit(self, X: Any, y: Any = None) -> "CascadedWindows":
        X = _as_windows(X, "CascadedWindows")
        self.history_ = X.shape[1]
        self.n_variables_ = X.shape[2]
        return self

    def partial_fit(self, X: Any, y: Any = None) -> "CascadedWindows":
        """Incrementally (re)learn the window shape; exact by nature."""
        X = _as_windows(X, "CascadedWindows")
        if self.history_ is not None and X.shape[1:] != (
            self.history_,
            self.n_variables_,
        ):
            raise ValueError(
                f"window shape {X.shape[1:]} differs from fitted "
                f"({self.history_}, {self.n_variables_})"
            )
        self.history_ = X.shape[1]
        self.n_variables_ = X.shape[2]
        return self

    def transform(self, X: Any) -> np.ndarray:
        check_is_fitted(self, "history_")
        X = _as_windows(X, "CascadedWindows")
        if X.shape[1:] != (self.history_, self.n_variables_):
            raise ValueError(
                f"window shape {X.shape[1:]} differs from fitted "
                f"({self.history_}, {self.n_variables_})"
            )
        return X

    def fused_kernel(self) -> FusedStepKernel:
        """Bit-identical fused ``(fit, transform)`` kernel of this stage."""
        def fit(X: Any, y: Any = None) -> tuple:
            X = _as_windows(X, "CascadedWindows")
            return X.shape[1], X.shape[2]

        def transform(X: Any, state: tuple) -> np.ndarray:
            X = _as_windows(X, "CascadedWindows")
            if X.shape[1:] != state:
                raise ValueError(
                    f"window shape {X.shape[1:]} differs from fitted "
                    f"{state}"
                )
            return X

        return FusedStepKernel(fit, transform)


class FlatWindowing(TransformerMixin, BaseComponent):
    """Flatten each window to one row (Fig. 8).

    "if we have built L - p cascaded windows of shape (p * v), after
    flattening it, we will have L - p windows of shape (1 * pv) ...  It
    provides temporal history to the estimator; however, the ordering is
    lost."
    """

    output_kind = "iid"
    partial_fit_parity = "exact"

    def __init__(self):
        self.history_: Optional[int] = None
        self.n_variables_: Optional[int] = None

    def fit(self, X: Any, y: Any = None) -> "FlatWindowing":
        X = _as_windows(X, "FlatWindowing")
        self.history_ = X.shape[1]
        self.n_variables_ = X.shape[2]
        return self

    def partial_fit(self, X: Any, y: Any = None) -> "FlatWindowing":
        """Incrementally (re)learn the window shape; exact by nature."""
        X = _as_windows(X, "FlatWindowing")
        self.history_ = X.shape[1]
        self.n_variables_ = X.shape[2]
        return self

    def transform(self, X: Any) -> np.ndarray:
        check_is_fitted(self, "history_")
        X = _as_windows(X, "FlatWindowing")
        return X.reshape(X.shape[0], -1)

    def fused_kernel(self) -> FusedStepKernel:
        """Bit-identical fused ``(fit, transform)`` kernel of this stage."""
        def fit(X: Any, y: Any = None) -> None:
            _as_windows(X, "FlatWindowing")
            return None

        def transform(X: Any, state: None) -> np.ndarray:
            X = _as_windows(X, "FlatWindowing")
            return X.reshape(X.shape[0], -1)

        return FusedStepKernel(fit, transform)


class TSAsIID(TransformerMixin, BaseComponent):
    """Keep only the latest timestamp of each window (Fig. 9).

    "no information about the recent history or temporal order is
    preserved.  Each time stamp is provided to the model as an
    independently and identically distributed data point."
    """

    output_kind = "iid"
    partial_fit_parity = "exact"

    def __init__(self):
        self.n_variables_: Optional[int] = None

    def fit(self, X: Any, y: Any = None) -> "TSAsIID":
        X = _as_windows(X, "TSAsIID")
        self.n_variables_ = X.shape[2]
        return self

    def partial_fit(self, X: Any, y: Any = None) -> "TSAsIID":
        """Incrementally (re)learn the variable count; exact by nature."""
        X = _as_windows(X, "TSAsIID")
        self.n_variables_ = X.shape[2]
        return self

    def transform(self, X: Any) -> np.ndarray:
        check_is_fitted(self, "n_variables_")
        X = _as_windows(X, "TSAsIID")
        return X[:, -1, :]

    def fused_kernel(self) -> FusedStepKernel:
        """Bit-identical fused ``(fit, transform)`` kernel of this stage."""
        def fit(X: Any, y: Any = None) -> None:
            _as_windows(X, "TSAsIID")
            return None

        def transform(X: Any, state: None) -> np.ndarray:
            X = _as_windows(X, "TSAsIID")
            return X[:, -1, :]

        return FusedStepKernel(fit, transform)


class TSAsIs(TransformerMixin, BaseComponent):
    """Identity for models needing untouched series (Fig. 10).

    "the time series is passed to the models which don't require data
    transformations like Zero model and ARIMA Model."
    """

    output_kind = "statistical"
    partial_fit_parity = "exact"

    def __init__(self):
        self.fitted_ = None

    def fit(self, X: Any, y: Any = None) -> "TSAsIs":
        self.fitted_ = True
        return self

    def partial_fit(self, X: Any, y: Any = None) -> "TSAsIs":
        """Stateless identity update; exact by nature."""
        self.fitted_ = True
        return self

    def transform(self, X: Any) -> np.ndarray:
        return _as_windows(X, "TSAsIs")

    def fused_kernel(self) -> FusedStepKernel:
        """Bit-identical fused ``(fit, transform)`` kernel of this stage."""
        def fit(X: Any, y: Any = None) -> None:
            return None

        def transform(X: Any, state: None) -> np.ndarray:
            return _as_windows(X, "TSAsIs")

        return FusedStepKernel(fit, transform)


class NoScaling(TransformerMixin, BaseComponent):
    """Identity option for the Data Scaling stage (Table II's
    "No Scaling"); unlike :class:`repro.ml.preprocessing.NoOp` it accepts
    the 3-D window representation."""

    partial_fit_parity = "exact"

    def __init__(self):
        self.fitted_ = None

    def fit(self, X: Any, y: Any = None) -> "NoScaling":
        self.fitted_ = True
        return self

    def partial_fit(self, X: Any, y: Any = None) -> "NoScaling":
        """Stateless identity update; exact by nature."""
        self.fitted_ = True
        return self

    def transform(self, X: Any) -> np.ndarray:
        return _as_windows(X, "NoScaling")

    def fused_kernel(self) -> FusedStepKernel:
        """Bit-identical fused ``(fit, transform)`` kernel of this stage."""
        def fit(X: Any, y: Any = None) -> None:
            return None

        def transform(X: Any, state: None) -> np.ndarray:
            return _as_windows(X, "NoScaling")

        return FusedStepKernel(fit, transform)


class WindowScaler(TransformerMixin, BaseComponent):
    """Apply a 2-D feature scaler per variable across cascaded windows.

    The Fig. 11 Data Scaling stage normalizes the series *before*
    windowed preprocessing.  Since graph stages see the already-framed
    3-D data, this adapter folds windows into rows ``(n*p, v)``, lets the
    wrapped scaler learn per-variable statistics, and restores the window
    shape.

    ``partial_fit`` delegates to the wrapped scaler's ``partial_fit``
    (available only when the inner scaler supports incremental updates —
    checked by the ``_partial_fit_ready`` hook).  Since the adapter only
    reshapes, its parity is whatever the inner scaler provides; it is
    declared ``"tolerance"`` to cover the weakest case
    (``StandardScaler``'s streaming merge).
    """

    partial_fit_parity = "tolerance"

    def __init__(self, scaler: Optional[BaseComponent] = None):
        self.scaler = scaler
        self.fitted_scaler_: Optional[BaseComponent] = None
        self.n_variables_: Optional[int] = None

    def _base_scaler(self) -> BaseComponent:
        from repro.ml.preprocessing.scalers import StandardScaler

        return self.scaler if self.scaler is not None else StandardScaler()

    def _partial_fit_ready(self) -> bool:
        from repro.ml.base import supports_partial_fit

        return supports_partial_fit(self._base_scaler())

    def fit(self, X: Any, y: Any = None) -> "WindowScaler":
        from repro.ml.base import clone

        X = _as_windows(X, "WindowScaler")
        self.n_variables_ = X.shape[2]
        self.fitted_scaler_ = clone(self._base_scaler())
        self.fitted_scaler_.fit(X.reshape(-1, X.shape[2]))
        return self

    def partial_fit(self, X: Any, y: Any = None) -> "WindowScaler":
        """Route the batch (reshaped to rows) to the inner scaler's
        ``partial_fit``."""
        from repro.ml.base import clone, supports_partial_fit

        X = _as_windows(X, "WindowScaler")
        if self.fitted_scaler_ is None:
            base = self._base_scaler()
            if not supports_partial_fit(base):
                raise TypeError(
                    f"wrapped scaler {type(base).__name__} does not support "
                    "partial_fit"
                )
            self.n_variables_ = X.shape[2]
            self.fitted_scaler_ = clone(base)
        elif X.shape[2] != self.n_variables_:
            raise ValueError(
                f"X has {X.shape[2]} variables, scaler was fitted with "
                f"{self.n_variables_}"
            )
        self.fitted_scaler_.partial_fit(X.reshape(-1, X.shape[2]))
        return self

    def transform(self, X: Any) -> np.ndarray:
        check_is_fitted(self, "fitted_scaler_")
        X = _as_windows(X, "WindowScaler")
        if X.shape[2] != self.n_variables_:
            raise ValueError(
                f"X has {X.shape[2]} variables, scaler was fitted with "
                f"{self.n_variables_}"
            )
        flat = self.fitted_scaler_.transform(X.reshape(-1, X.shape[2]))
        return flat.reshape(X.shape)

    def fused_kernel(self) -> "FusedStepKernel | None":
        """Bit-identical fused ``(fit, transform)`` kernel of this stage."""
        from repro.ml.preprocessing.scalers import StandardScaler

        base = self.scaler if self.scaler is not None else StandardScaler()
        inner = getattr(base, "fused_kernel", None)
        inner = (
            inner()
            if callable(inner) and kernel_is_trustworthy(base)
            else None
        )
        if inner is None:
            # wrapped scaler has no kernel: the whole stage runs
            # interpreted so its fit/transform semantics are preserved
            return None

        def fit(X: Any, y: Any = None) -> tuple:
            X = _as_windows(X, "WindowScaler")
            return X.shape[2], inner.fit(X.reshape(-1, X.shape[2]), None)

        def transform(X: Any, state: tuple) -> np.ndarray:
            n_variables, inner_state = state
            X = _as_windows(X, "WindowScaler")
            if X.shape[2] != n_variables:
                raise ValueError(
                    f"X has {X.shape[2]} variables, scaler was fitted with "
                    f"{n_variables}"
                )
            flat = inner.transform(X.reshape(-1, X.shape[2]), inner_state)
            return flat.reshape(X.shape)

        return FusedStepKernel(fit, transform)
