"""The Time Series Prediction pipeline graph (paper Section IV-D, Fig. 11,
Table II).

Three stages:

1. **Data Scaling** — Min-Max / Robust / Standard scaling or No Scaling,
   applied per variable across windows.
2. **Data Preprocessing** — CascadedWindows / FlatWindowing / TS-as-IID /
   TS-as-is, reshaping for each estimator family.
3. **Modelling** — Temporal DNNs (LSTM simple+deep, CNN simple+deep,
   WaveNet, SeriesNet), IID DNNs (simple+deep) and Statistical models
   (Zero, AR).

The selective wiring follows the paper exactly: "The CascadedWindows is
connected to the TemporalDNNs, the FlatWindowing and TS-as-IID are
connected to StandardDNNs and finally the TS-as-is is connected to
Statistical models."

One deliberate choice: by default the statistical path enters from the
No-Scaling option only (``scale_statistical=False``), because the Zero
model's definition — "outputs the previous timestamp's ground truth" —
is only meaningful on unscaled data, and the paper notes statistical
models "don't require data transformations".  Pass
``scale_statistical=True`` to route every scaler into TS-as-is as well.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.graph import TransformerEstimatorGraph
from repro.ml.preprocessing.scalers import (
    MinMaxScaler,
    RobustScaler,
    StandardScaler,
)
from repro.nn.estimators import (
    CNNRegressor,
    DNNRegressor,
    LSTMRegressor,
    SeriesNetRegressor,
    WaveNetRegressor,
)
from repro.timeseries.models import ARModel, ZeroModel
from repro.timeseries.windows import (
    CascadedWindows,
    FlatWindowing,
    NoScaling,
    TSAsIID,
    TSAsIs,
    WindowScaler,
)

__all__ = ["build_time_series_graph", "MODEL_FAMILIES"]

#: Model-family membership, mirroring Table II's Modelling rows.  Keys are
#: the option names the graph generates.
MODEL_FAMILIES = {
    "temporal": [
        "lstm_simple",
        "lstm_deep",
        "cnn_simple",
        "cnn_deep",
        "wavenet",
        "seriesnet",
    ],
    "iid": ["dnn_simple", "dnn_deep"],
    "statistical": ["zero", "ar"],
}


def build_time_series_graph(
    target: int = 0,
    scale_statistical: bool = False,
    fast: bool = False,
    random_state: Optional[int] = 0,
    include_deep_variants: bool = True,
) -> TransformerEstimatorGraph:
    """Construct the Fig. 11 graph.

    Parameters
    ----------
    target:
        Column of the target variable in the framed windows (must match
        the ``target`` passed to
        :func:`repro.timeseries.forecast.make_supervised`).
    scale_statistical:
        Route scaled paths into TS-as-is too (see module docstring).
    fast:
        Cut epochs/sizes for tests and benchmarks; the graph shape is
        unchanged.
    include_deep_variants:
        Include the "deep" LSTM/CNN/DNN architectures alongside the
        simple ones.
    """
    epochs = 6 if fast else 30
    hidden = 12 if fast else 24
    channels = 8 if fast else 16

    graph = TransformerEstimatorGraph(name="time_series_prediction")

    graph.add_stage(
        "data_scaling",
        [
            WindowScaler(MinMaxScaler()),
            WindowScaler(RobustScaler()),
            WindowScaler(StandardScaler()),
            NoScaling(),
        ],
        option_names=["minmax", "robust", "standard", "noscaling"],
    )
    graph.add_stage(
        "data_preprocessing",
        [CascadedWindows(), FlatWindowing(), TSAsIID(), TSAsIs()],
        option_names=["cascaded", "flat", "iid", "asis"],
    )

    models: List[Tuple[str, object]] = [
        (
            "lstm_simple",
            LSTMRegressor(
                architecture="simple",
                hidden_size=hidden,
                epochs=epochs,
                random_state=random_state,
            ),
        ),
        (
            "cnn_simple",
            CNNRegressor(
                architecture="simple",
                n_filters=channels,
                epochs=epochs,
                random_state=random_state,
            ),
        ),
        (
            "wavenet",
            WaveNetRegressor(
                channels=channels,
                n_blocks=2 if fast else 3,
                epochs=epochs,
                random_state=random_state,
            ),
        ),
        (
            "seriesnet",
            SeriesNetRegressor(
                channels=channels,
                n_blocks=2 if fast else 4,
                epochs=epochs,
                random_state=random_state,
            ),
        ),
        (
            "dnn_simple",
            DNNRegressor(
                architecture="simple",
                hidden_size=hidden,
                epochs=epochs,
                random_state=random_state,
            ),
        ),
        ("zero", ZeroModel(target=target)),
        ("ar", ARModel(order=5, target=target)),
    ]
    if include_deep_variants:
        models.insert(
            1,
            (
                "lstm_deep",
                LSTMRegressor(
                    architecture="deep",
                    hidden_size=hidden,
                    epochs=epochs,
                    random_state=random_state,
                ),
            ),
        )
        models.insert(
            3,
            (
                "cnn_deep",
                CNNRegressor(
                    architecture="deep",
                    n_filters=channels,
                    epochs=epochs,
                    random_state=random_state,
                ),
            ),
        )
        models.append(
            (
                "dnn_deep",
                DNNRegressor(
                    architecture="deep",
                    hidden_size=hidden,
                    epochs=epochs,
                    random_state=random_state,
                ),
            )
        )
    option_names = [name for name, _ in models]
    graph.add_stage(
        "modelling",
        [component for _, component in models],
        option_names=option_names,
    )

    # Stage 1 -> stage 2 wiring: scalers feed every preprocessor, except
    # that TS-as-is is (by default) reachable only without scaling.
    scaling_pairs = []
    for scaler in ("minmax", "robust", "standard", "noscaling"):
        for preprocessor in ("cascaded", "flat", "iid"):
            scaling_pairs.append((scaler, preprocessor))
        if scale_statistical or scaler == "noscaling":
            scaling_pairs.append((scaler, "asis"))
    graph.restrict_edges("data_scaling", "data_preprocessing", scaling_pairs)

    # Stage 2 -> stage 3 wiring: the paper's family edges.
    family_pairs = []
    present = set(option_names)
    for model in MODEL_FAMILIES["temporal"]:
        if model in present:
            family_pairs.append(("cascaded", model))
    for model in MODEL_FAMILIES["iid"]:
        if model in present:
            family_pairs.append(("flat", model))
            family_pairs.append(("iid", model))
    for model in MODEL_FAMILIES["statistical"]:
        if model in present:
            family_pairs.append(("asis", model))
    graph.restrict_edges("data_preprocessing", "modelling", family_pairs)

    graph.create_graph()
    return graph
