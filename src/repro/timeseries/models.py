"""Statistical time-series models (paper Section IV-C1).

* :class:`ZeroModel` — "acts as the baseline model for our prediction
  problem.  This model basically outputs the previous timestamp's ground
  truth a[s] the next timestamp's prediction."
* :class:`ARModel` — an ARIMA-style autoregressive model (differencing +
  OLS over target lags).  The paper *mentions* ARIMA but excluded it
  ("We did not use this model due to complexity in adding [it to] the
  time series prediction pipeline"); we include a lag-regression
  equivalent as an extension, wired through the same TS-as-is path.

Both consume cascaded windows ``(n, history, variables)`` via the
:class:`repro.timeseries.windows.TSAsIs` path and window internally, so
they fit the common estimator contract.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.ml.base import (
    BaseComponent,
    RegressorMixin,
    as_1d_array,
    check_is_fitted,
)

__all__ = ["ZeroModel", "ARModel", "MovingAverageModel"]


def _as_windows(X: Any, name: str) -> np.ndarray:
    arr = np.asarray(X, dtype=float)
    if arr.ndim == 2:
        arr = arr[:, None, :]
    if arr.ndim != 3:
        raise ValueError(
            f"{name} expects cascaded windows (n, history, variables), got "
            f"shape {np.asarray(X).shape}"
        )
    return arr


class ZeroModel(RegressorMixin, BaseComponent):
    """Persistence baseline: predict the last observed target value.

    ``target`` is the variable column holding the series being predicted
    (the same index passed to
    :func:`repro.timeseries.forecast.make_supervised`).
    """

    def __init__(self, target: int = 0):
        if target < 0:
            raise ValueError("target must be >= 0")
        self.target = target
        self.n_variables_: Optional[int] = None

    def fit(self, X: Any, y: Any = None) -> "ZeroModel":
        X = _as_windows(X, "ZeroModel")
        if self.target >= X.shape[2]:
            raise ValueError(
                f"target={self.target} out of range for {X.shape[2]} "
                "variables"
            )
        self.n_variables_ = X.shape[2]
        return self

    def predict(self, X: Any) -> np.ndarray:
        check_is_fitted(self, "n_variables_")
        X = _as_windows(X, "ZeroModel")
        return X[:, -1, self.target].copy()


class ARModel(RegressorMixin, BaseComponent):
    """Autoregressive forecaster: OLS over the last ``order`` lags of the
    target variable, after ``d`` rounds of within-window differencing —
    the AR and I parts of ARIMA.

    Parameters
    ----------
    order:
        Number of lags (clipped to the window history at fit time).
    d:
        Differencing order applied to the target's history inside each
        window; with ``d>=1`` the model predicts the *change* and adds it
        back to the last observed level, which handles trends.
    target:
        Target variable column.
    """

    def __init__(self, order: int = 5, d: int = 0, target: int = 0):
        if order < 1:
            raise ValueError("order must be >= 1")
        if d < 0:
            raise ValueError("d must be >= 0")
        if target < 0:
            raise ValueError("target must be >= 0")
        self.order = order
        self.d = d
        self.target = target
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: Optional[float] = None
        self.order_: Optional[int] = None

    def _design(self, X: np.ndarray) -> tuple:
        """Return (lag matrix, last level) for each window."""
        history = X[:, :, self.target]
        last_level = history[:, -1].copy()
        for _ in range(self.d):
            if history.shape[1] < 2:
                raise ValueError(
                    f"history window too short for d={self.d} differencing"
                )
            history = np.diff(history, axis=1)
        order = min(self.order, history.shape[1])
        return history[:, -order:], last_level, order

    def fit(self, X: Any, y: Any = None) -> "ARModel":
        if y is None:
            raise ValueError("ARModel requires targets y")
        X = _as_windows(X, "ARModel")
        if self.target >= X.shape[2]:
            raise ValueError(
                f"target={self.target} out of range for {X.shape[2]} "
                "variables"
            )
        y = as_1d_array(y).astype(float)
        lags, last_level, order = self._design(X)
        # With differencing, regress the change from the last level.
        response = y - last_level if self.d > 0 else y
        design = np.hstack([np.ones((len(lags), 1)), lags])
        solution, *_ = np.linalg.lstsq(design, response, rcond=None)
        self.intercept_ = float(solution[0])
        self.coef_ = solution[1:]
        self.order_ = order
        return self

    def predict(self, X: Any) -> np.ndarray:
        check_is_fitted(self, "coef_")
        X = _as_windows(X, "ARModel")
        lags, last_level, order = self._design(X)
        if order != self.order_:
            raise ValueError(
                f"window supports {order} lags, model was fitted with "
                f"{self.order_}"
            )
        prediction = lags @ self.coef_ + self.intercept_
        if self.d > 0:
            prediction = prediction + last_level
        return prediction


class MovingAverageModel(RegressorMixin, BaseComponent):
    """Predict the mean of the last ``window`` target observations — a
    second trivial statistical baseline useful for sanity-checking the
    graph's model-selection behaviour."""

    def __init__(self, window: int = 3, target: int = 0):
        if window < 1:
            raise ValueError("window must be >= 1")
        if target < 0:
            raise ValueError("target must be >= 0")
        self.window = window
        self.target = target
        self.window_: Optional[int] = None

    def fit(self, X: Any, y: Any = None) -> "MovingAverageModel":
        X = _as_windows(X, "MovingAverageModel")
        if self.target >= X.shape[2]:
            raise ValueError(
                f"target={self.target} out of range for {X.shape[2]} "
                "variables"
            )
        self.window_ = min(self.window, X.shape[1])
        return self

    def predict(self, X: Any) -> np.ndarray:
        check_is_fitted(self, "window_")
        X = _as_windows(X, "MovingAverageModel")
        return X[:, -self.window_ :, self.target].mean(axis=1)
