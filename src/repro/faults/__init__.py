"""Deterministic fault injection for the cooperative analytics stack.

The paper's premise — clients, nodes and the DARR keep making progress
while sharing work — only holds if individual failures do not take the
whole system down ("How to optimize computational resources in such a
distributed system is a major challenge", Section III).  This package is
the test substrate for that claim: a seedable
:class:`~repro.faults.injector.FaultPlan` scripts *exactly* which calls
fail (keyed by job key, node name, object name and per-site call count)
and a :class:`~repro.faults.injector.FaultInjector` fires those faults
at the hook points exposed by the production code:

* ``engine.run_job`` — inside :meth:`repro.core.engine.ExecutionEngine`
  job execution (below the retry loop, so transient faults exercise the
  engine's :class:`~repro.core.engine.FailurePolicy`).
* ``node.execute_job`` — :meth:`repro.distributed.node.ComputeNode.execute_job`
  (crashes and slowdowns the scheduler must survive).
* ``datastore.get`` / ``datastore.put`` —
  :class:`repro.distributed.datastore.HomeDataStore` unavailability.
* ``darr.fetch`` / ``darr.claim`` / ``darr.publish`` —
  :class:`repro.darr.repository.DataAnalyticsResultsRepository`
  unavailability.

No real sleeps, no wall-clock randomness: every recovery path is
replayable byte-for-byte from a plan and a seed.
"""

from repro.faults.injector import (
    FaultInjector,
    FaultPlan,
    FaultRule,
    InjectedEvent,
    InjectedFault,
    NodeCrashed,
    ServiceUnavailable,
    TransientJobError,
)

__all__ = [
    "FaultPlan",
    "FaultRule",
    "FaultInjector",
    "InjectedEvent",
    "InjectedFault",
    "TransientJobError",
    "NodeCrashed",
    "ServiceUnavailable",
]
