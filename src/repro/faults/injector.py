"""The fault plan and injector (see the package docstring).

A :class:`FaultPlan` is a list of :class:`FaultRule` entries plus a
seed; a :class:`FaultInjector` executes the plan.  Production hook
points call :meth:`FaultInjector.check` with their site name and
identifying attributes; the injector counts matching calls per rule and
raises (or returns a slowdown factor) exactly at the scripted call
indices.  Everything is thread-safe and free of wall-clock or global
RNG state, so a run with the same plan and seed replays identically.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "InjectedFault",
    "TransientJobError",
    "NodeCrashed",
    "ServiceUnavailable",
    "FaultRule",
    "FaultPlan",
    "InjectedEvent",
    "FaultInjector",
]


class InjectedFault(Exception):
    """Base class of every exception the injector raises."""


class TransientJobError(InjectedFault):
    """A job failure expected to succeed on retry (flaky compute)."""


class NodeCrashed(InjectedFault):
    """A compute node died mid-run; its in-flight job is lost and the
    scheduler must re-place it on a surviving node."""


class ServiceUnavailable(InjectedFault):
    """A datastore or DARR request could not be served (outage)."""


#: fault name -> exception class raised when the rule fires.
_FAULT_EXCEPTIONS = {
    "transient": TransientJobError,
    "crash": NodeCrashed,
    "unavailable": ServiceUnavailable,
}

#: Valid fault kinds ("slow" returns a factor instead of raising).
FAULT_KINDS = ("transient", "crash", "slow", "unavailable")


@dataclass(frozen=True)
class FaultRule:
    """One scripted fault.

    Parameters
    ----------
    site:
        Hook-point name (``"engine.run_job"``, ``"node.execute_job"``,
        ``"datastore.get"``, ``"datastore.put"``, ``"darr.fetch"``,
        ``"darr.claim"``, ``"darr.publish"``, ``"sharded.route"``,
        ``"sharded.replicate"``, ``"sharded.rebalance"``).
    fault:
        ``"transient"`` | ``"crash"`` | ``"slow"`` | ``"unavailable"``.
    match:
        Identity filter: the rule only applies to calls whose attributes
        (job key, node name, object name...) contain this exact value.
        ``None`` matches every call at the site.
    after:
        1-based index of the first *matching* call that fires (``1`` =
        fire immediately).
    times:
        How many consecutive matching calls fire from ``after`` on;
        ``None`` = every matching call forever (a permanent fault).
    slow_factor:
        Slowdown multiplier returned for ``fault="slow"`` (ignored for
        the raising kinds).
    """

    site: str
    fault: str
    match: Optional[str] = None
    after: int = 1
    times: Optional[int] = 1
    slow_factor: float = 4.0

    def __post_init__(self) -> None:
        if self.fault not in FAULT_KINDS:
            raise ValueError(
                f"fault must be one of {FAULT_KINDS}, got {self.fault!r}"
            )
        if self.after < 1:
            raise ValueError("after must be >= 1 (1-based call index)")
        if self.times is not None and self.times < 1:
            raise ValueError("times must be >= 1 or None (forever)")
        if self.fault == "slow" and self.slow_factor < 1.0:
            raise ValueError("slow_factor must be >= 1.0")

    def fires_at(self, call_index: int) -> bool:
        """Whether the rule fires at the given matching-call index."""
        if call_index < self.after:
            return False
        if self.times is None:
            return True
        return call_index < self.after + self.times


class FaultPlan:
    """A seedable collection of :class:`FaultRule` entries.

    The seed drives :meth:`choice` / :meth:`sample`, the deterministic
    way chaos tests pick *which* job key or node a fault targets — two
    plans with the same seed pick identical targets, and a CI matrix
    over seeds explores different ones.

    Parameters
    ----------
    rules:
        Initial rules (more can be added with :meth:`add`).
    seed:
        Seed for target selection (also consumed by the engine's
        backoff jitter when a policy is built from the plan's seed).
    """

    def __init__(
        self, rules: Iterable[FaultRule] = (), seed: int = 0
    ):
        self.rules: List[FaultRule] = list(rules)
        self.seed = int(seed)
        self._rng = random.Random(self.seed)

    def add(
        self,
        site: str,
        fault: str,
        match: Optional[str] = None,
        after: int = 1,
        times: Optional[int] = 1,
        slow_factor: float = 4.0,
    ) -> FaultRule:
        """Append a rule (see :class:`FaultRule` for the semantics).

        Returns
        -------
        The appended :class:`FaultRule`.
        """
        rule = FaultRule(
            site=site,
            fault=fault,
            match=match,
            after=after,
            times=times,
            slow_factor=slow_factor,
        )
        self.rules.append(rule)
        return rule

    def choice(self, options: Sequence[Any]) -> Any:
        """Deterministically pick one element of ``options``.

        Successive calls advance the plan's private RNG, so a sequence
        of choices is itself reproducible from the seed.
        """
        if not options:
            raise ValueError("cannot choose from an empty sequence")
        return self._rng.choice(list(options))

    def sample(self, options: Sequence[Any], k: int) -> List[Any]:
        """Deterministically pick ``k`` distinct elements of ``options``."""
        return self._rng.sample(list(options), k)

    def injector(self) -> "FaultInjector":
        """A fresh :class:`FaultInjector` executing this plan."""
        return FaultInjector(self)


@dataclass(frozen=True)
class InjectedEvent:
    """Ledger entry for one fired fault (for assertions and debugging)."""

    site: str
    fault: str
    match: Optional[str]
    call_index: int
    attrs: Tuple[Tuple[str, str], ...]


class FaultInjector:
    """Executes a :class:`FaultPlan` at the production hook points.

    Components expose a ``fault_injector`` attribute (``None`` by
    default — the hooks cost one attribute read when no injector is
    attached).  Attach an injector with :meth:`attach` or by assigning
    the attribute, then run the workload; the injector raises
    :class:`TransientJobError` / :class:`NodeCrashed` /
    :class:`ServiceUnavailable` (or returns a slowdown factor) exactly
    where the plan says, and records every fired fault in
    :attr:`events`.

    Parameters
    ----------
    plan:
        The :class:`FaultPlan` to execute.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._lock = threading.Lock()
        # per-rule count of *matching* calls (1-based at fire time)
        self._counts: Dict[int, int] = {}
        self.events: List[InjectedEvent] = []

    def attach(self, *components: Any) -> "FaultInjector":
        """Set ``component.fault_injector = self`` on every argument.

        Works for :class:`~repro.core.engine.ExecutionEngine`,
        :class:`~repro.distributed.node.ComputeNode`,
        :class:`~repro.distributed.datastore.HomeDataStore` and
        :class:`~repro.darr.repository.DataAnalyticsResultsRepository`
        instances (anything honouring the attribute).

        Returns
        -------
        ``self``, for chaining.
        """
        for component in components:
            component.fault_injector = self
        return self

    def check(self, site: str, **attrs: Any) -> float:
        """Consult the plan at a hook point.

        Parameters
        ----------
        site:
            The hook-point name.
        **attrs:
            Identifying attributes of the call (``key=``, ``node=``,
            ``name=``...); rules with a ``match`` fire only when the
            match value equals one of these.

        Returns
        -------
        A slowdown factor ``>= 1.0`` (product of every firing ``slow``
        rule; ``1.0`` when none fire).

        Raises
        ------
        TransientJobError, NodeCrashed, ServiceUnavailable
            When a raising rule fires at this call.
        """
        values = {str(v) for v in attrs.values()}
        slow = 1.0
        raising: Optional[Tuple[FaultRule, int]] = None
        with self._lock:
            for index, rule in enumerate(self.plan.rules):
                if rule.site != site:
                    continue
                if rule.match is not None and rule.match not in values:
                    continue
                count = self._counts.get(index, 0) + 1
                self._counts[index] = count
                if not rule.fires_at(count):
                    continue
                self.events.append(
                    InjectedEvent(
                        site=site,
                        fault=rule.fault,
                        match=rule.match,
                        call_index=count,
                        attrs=tuple(
                            sorted((k, str(v)) for k, v in attrs.items())
                        ),
                    )
                )
                if rule.fault == "slow":
                    slow *= rule.slow_factor
                elif raising is None:
                    raising = (rule, count)
        if raising is not None:
            rule, count = raising
            raise _FAULT_EXCEPTIONS[rule.fault](
                f"injected {rule.fault} fault at {site} "
                f"(match={rule.match!r}, call #{count})"
            )
        return slow

    def fired(self, site: Optional[str] = None, fault: Optional[str] = None) -> List[InjectedEvent]:
        """Fired events, optionally filtered by site and/or fault kind."""
        with self._lock:
            return [
                event
                for event in self.events
                if (site is None or event.site == site)
                and (fault is None or event.fault == fault)
            ]

    def summary(self) -> Dict[str, int]:
        """Count of fired faults per ``site:fault`` pair."""
        out: Dict[str, int] = {}
        with self._lock:
            for event in self.events:
                label = f"{event.site}:{event.fault}"
                out[label] = out.get(label, 0) + 1
        return out
