"""repro: cooperative data analytics with Transformer-Estimator Graphs.

A from-scratch reproduction of "Providing Cooperative Data Analytics for
Real Applications Using Machine Learning" (Iyengar et al., ICDCS 2019):

* :mod:`repro.core` — Transformer-Estimator Graphs: staged option DAGs,
  pipeline enumeration, cross-validated model selection.
* :mod:`repro.ml` — the from-scratch ML substrate (scalers, selectors,
  PCA/LDA, linear models, trees, forests, boosting, kNN, k-means,
  splitters, metrics).
* :mod:`repro.nn` — numpy neural nets (DNN, LSTM, CNN, WaveNet,
  SeriesNet).
* :mod:`repro.timeseries` — windowing transformers, statistical models
  and the Fig. 11 time-series prediction graph.
* :mod:`repro.distributed` — simulated network, versioned home data
  stores, delta encoding, leases, change monitoring, scheduling and AI
  web services.
* :mod:`repro.darr` — the shared Data Analytics Results Repository and
  cooperative evaluation.
* :mod:`repro.obs` — zero-dependency telemetry: counters, spans and
  sinks threaded through the engine, searches, scheduler and DARR.
* :mod:`repro.templates` — FPA / RCA / Anomaly / Cohort solution
  templates.
* :mod:`repro.datasets` — synthetic tabular and heavy-industry data.
"""

from repro.core import (
    GraphEvaluator,
    Pipeline,
    TransformerEstimatorGraph,
    make_pipeline,
    prepare_classification_graph,
    prepare_regression_graph,
)
from repro.darr import DARR, CooperativeEvaluator
from repro.obs import Telemetry
from repro.timeseries import make_supervised
from repro.timeseries.pipeline import build_time_series_graph

__version__ = "1.1.0"

__all__ = [
    "TransformerEstimatorGraph",
    "Pipeline",
    "make_pipeline",
    "GraphEvaluator",
    "prepare_regression_graph",
    "prepare_classification_graph",
    "build_time_series_graph",
    "make_supervised",
    "DARR",
    "CooperativeEvaluator",
    "Telemetry",
    "__version__",
]
