"""The :class:`Telemetry` handle: counters, timers and structured spans.

The paper's cooperative premise — clients skipping redundant work by
consulting the DARR — is only credible when every layer can report what
an evaluation cost and what the caches and the repository saved.  One
``Telemetry`` handle threads through the whole stack:

* the :class:`~repro.core.engine.ExecutionEngine` (per-job wall time,
  per-fold transform/fit time, prefix-cache effectiveness),
* the search strategies (jobs enumerated vs. filtered vs. executed,
  fold-budget consumed per halving round),
* the :class:`~repro.distributed.scheduler.DistributedScheduler`
  (per-node job counts, simulated queue wait),
* the DARR (publish / claim / lookup traffic, redundant computations
  avoided — the paper's Fig. 2 story).

Everything is stdlib-only.  Counters and timers aggregate in memory on
the handle; finished spans and explicit :meth:`Telemetry.record` events
additionally stream to pluggable :class:`~repro.obs.sinks.Sink` objects.
When no telemetry is attached, instrumented code paths receive the
module-level :data:`NULL_TELEMETRY` singleton whose every operation is a
no-op — branches guard on ``telemetry.enabled`` so the disabled cost is
one attribute read.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Iterable, List, Optional

from repro.obs.sinks import Sink

__all__ = ["Span", "Telemetry", "NullTelemetry", "NULL_TELEMETRY", "resolve_telemetry"]


class Span:
    """One timed, attributed section of work.

    Use as a context manager; on exit the duration is aggregated into
    the owning handle's timers and a span event is emitted to its sinks:

    ``with telemetry.span("engine.job", key=job.key): ...``

    Parameters
    ----------
    telemetry:
        Owning handle (spans are created via :meth:`Telemetry.span`,
        not directly).
    name:
        Span name.
    attrs:
        Initial structured attributes.

    Attributes
    ----------
    name:
        Span name; aggregation key in :meth:`Telemetry.summary`.
    attrs:
        Structured attributes carried on the span event.
    seconds:
        Duration, populated on exit (``None`` while open).
    """

    __slots__ = ("_telemetry", "name", "attrs", "_started", "seconds")

    def __init__(self, telemetry: "Telemetry", name: str, attrs: Dict[str, Any]):
        self._telemetry = telemetry
        self.name = name
        self.attrs = attrs
        self._started: Optional[float] = None
        self.seconds: Optional[float] = None

    def annotate(self, **attrs: Any) -> "Span":
        """Attach additional attributes discovered mid-span."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.seconds = time.perf_counter() - (self._started or 0.0)
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._telemetry._finish_span(self)


class _NullSpan:
    """Shared do-nothing span for disabled telemetry."""

    __slots__ = ()
    seconds = None
    name = ""
    attrs: Dict[str, Any] = {}

    def annotate(self, **attrs: Any) -> "_NullSpan":
        """No-op; returns self."""
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Telemetry:
    """Aggregating telemetry handle with pluggable sinks.

    Counters (:meth:`count`) and per-span timers aggregate in memory and
    are read back with :meth:`counters` / :meth:`summary`; finished
    spans (:meth:`span`) and structured events (:meth:`record`)
    additionally stream to every attached sink.  All operations are
    thread-safe, so one handle can be shared by the parallel executor's
    worker threads.

    Parameters
    ----------
    sinks:
        Iterable of :class:`~repro.obs.sinks.Sink` instances (optional —
        a sink-less handle still aggregates counters and timers).

    Attributes
    ----------
    enabled:
        Always ``True`` on a real handle; ``False`` on
        :data:`NULL_TELEMETRY`.  Hot paths branch on this to skip
        measurement work entirely when telemetry is off.
    """

    enabled = True

    def __init__(self, sinks: Optional[Iterable[Sink]] = None):
        self.sinks: List[Sink] = list(sinks or [])
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._labeled: Dict[str, Dict[str, float]] = {}
        self._timers: Dict[str, Dict[str, float]] = {}

    # -- emitting ----------------------------------------------------------
    def count(self, name: str, value: float = 1, key: Optional[str] = None) -> None:
        """Add ``value`` to the counter ``name``.

        Parameters
        ----------
        name:
            Counter name, dotted by convention (``"darr.fetch_hit"``).
        value:
            Increment (default 1); may be fractional (seconds totals).
        key:
            When given, increments the per-key breakdown of a labeled
            counter instead (e.g. per-node job counts keyed by node
            name).
        """
        with self._lock:
            if key is None:
                self._counters[name] = self._counters.get(name, 0) + value
            else:
                bucket = self._labeled.setdefault(name, {})
                bucket[key] = bucket.get(key, 0) + value

    def span(self, name: str, **attrs: Any) -> Span:
        """Open a timed span; use as a context manager.

        Parameters
        ----------
        name:
            Span name (timer aggregation key).
        **attrs:
            Structured attributes emitted with the span event.

        Returns
        -------
        A :class:`Span` context manager.
        """
        return Span(self, name, attrs)

    def record(self, name: str, **fields: Any) -> None:
        """Emit a structured point-in-time event to every sink.

        Parameters
        ----------
        name:
            Event name (becomes the ``"name"`` field).
        **fields:
            Arbitrary JSON-able payload fields.
        """
        self._emit({"event": "record", "name": name, **fields})

    # -- reading -----------------------------------------------------------
    def counters(self) -> Dict[str, float]:
        """Snapshot of all unlabeled counters."""
        with self._lock:
            return dict(self._counters)

    def labeled(self, name: str) -> Dict[str, float]:
        """Per-key breakdown of the labeled counter ``name``."""
        with self._lock:
            return dict(self._labeled.get(name, {}))

    def timer(self, name: str) -> Dict[str, float]:
        """Aggregate stats of the span ``name``.

        Returns
        -------
        Dict with ``count``, ``total_seconds``, ``mean_seconds`` and
        ``max_seconds`` (zeros when the span never ran).
        """
        with self._lock:
            stats = self._timers.get(name)
            if not stats:
                return {
                    "count": 0,
                    "total_seconds": 0.0,
                    "mean_seconds": 0.0,
                    "max_seconds": 0.0,
                }
            return {
                "count": int(stats["count"]),
                "total_seconds": stats["total"],
                "mean_seconds": stats["total"] / stats["count"],
                "max_seconds": stats["max"],
            }

    def summary(self) -> Dict[str, Any]:
        """Everything aggregated so far, as one nested plain dict.

        Returns
        -------
        ``{"counters": {...}, "labeled": {...}, "spans": {...}}`` where
        each span entry carries count/total/mean/max seconds.
        """
        with self._lock:
            spans = {
                name: {
                    "count": int(stats["count"]),
                    "total_seconds": stats["total"],
                    "mean_seconds": stats["total"] / stats["count"],
                    "max_seconds": stats["max"],
                }
                for name, stats in self._timers.items()
            }
            return {
                "counters": dict(self._counters),
                "labeled": {k: dict(v) for k, v in self._labeled.items()},
                "spans": spans,
            }

    def report(self) -> str:
        """Human-readable rendering of :meth:`summary`.

        Returns
        -------
        A multi-line string: counters, labeled breakdowns, then span
        timings — the numbers benchmarks previously computed by hand.
        """
        summary = self.summary()
        lines: List[str] = ["telemetry report"]
        if summary["counters"]:
            lines.append("  counters:")
            for name in sorted(summary["counters"]):
                value = summary["counters"][name]
                shown = f"{value:.6f}".rstrip("0").rstrip(".") if isinstance(value, float) else value
                lines.append(f"    {name:<40} {shown}")
        for name in sorted(summary["labeled"]):
            lines.append(f"  {name}:")
            for key in sorted(summary["labeled"][name]):
                lines.append(f"    {key:<40} {summary['labeled'][name][key]:g}")
        if summary["spans"]:
            lines.append("  spans:")
            for name in sorted(summary["spans"]):
                stats = summary["spans"][name]
                lines.append(
                    f"    {name:<32} n={stats['count']:<6} "
                    f"total={stats['total_seconds']:.4f}s "
                    f"mean={stats['mean_seconds'] * 1e3:.3f}ms "
                    f"max={stats['max_seconds'] * 1e3:.3f}ms"
                )
        return "\n".join(lines)

    def reset(self) -> None:
        """Zero every counter, labeled counter and timer (sinks keep
        whatever they already received)."""
        with self._lock:
            self._counters.clear()
            self._labeled.clear()
            self._timers.clear()

    def close(self) -> None:
        """Close every attached sink."""
        for sink in self.sinks:
            sink.close()

    # -- internals ---------------------------------------------------------
    def _finish_span(self, span: Span) -> None:
        seconds = span.seconds or 0.0
        with self._lock:
            stats = self._timers.get(span.name)
            if stats is None:
                self._timers[span.name] = {
                    "count": 1.0,
                    "total": seconds,
                    "max": seconds,
                }
            else:
                stats["count"] += 1
                stats["total"] += seconds
                if seconds > stats["max"]:
                    stats["max"] = seconds
        if self.sinks:
            self._emit(
                {
                    "event": "span",
                    "name": span.name,
                    "seconds": seconds,
                    **span.attrs,
                }
            )

    def _emit(self, event: Dict[str, Any]) -> None:
        for sink in self.sinks:
            sink.emit(event)


class NullTelemetry(Telemetry):
    """The disabled handle: every operation is a no-op.

    Instrumented code never needs ``if telemetry is not None`` checks —
    it holds :data:`NULL_TELEMETRY` and may additionally guard expensive
    measurement (extra ``perf_counter`` calls) on
    :attr:`~Telemetry.enabled`.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def count(self, name: str, value: float = 1, key: Optional[str] = None) -> None:
        """No-op."""

    def span(self, name: str, **attrs: Any) -> Any:
        """Return the shared do-nothing span."""
        return _NULL_SPAN

    def record(self, name: str, **fields: Any) -> None:
        """No-op."""


#: Shared disabled handle; what ``telemetry=None`` resolves to.
NULL_TELEMETRY = NullTelemetry()


def resolve_telemetry(spec: Any) -> Telemetry:
    """Coerce a user-facing ``telemetry=`` argument into a handle.

    Parameters
    ----------
    spec:
        ``None`` (telemetry off), a :class:`Telemetry` instance, or a
        single :class:`~repro.obs.sinks.Sink` / iterable of sinks (a
        fresh enabled handle is built around them).

    Returns
    -------
    A :class:`Telemetry`; :data:`NULL_TELEMETRY` when ``spec`` is None.
    """
    if spec is None:
        return NULL_TELEMETRY
    if isinstance(spec, Telemetry):
        return spec
    if isinstance(spec, Sink):
        return Telemetry(sinks=[spec])
    if isinstance(spec, (list, tuple)) and all(
        isinstance(s, Sink) for s in spec
    ):
        return Telemetry(sinks=spec)
    raise TypeError(
        f"cannot interpret {spec!r} as telemetry; expected None, a "
        "Telemetry, a Sink, or a list of Sinks"
    )
