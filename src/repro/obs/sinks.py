"""Telemetry sinks: where finished spans and structured events go.

A sink receives plain-dict events from a
:class:`~repro.obs.telemetry.Telemetry` handle — one dict per finished
span (``{"event": "span", "name": ..., "seconds": ...}``) or per
explicit :meth:`~repro.obs.telemetry.Telemetry.record` call.  Three
zero-dependency implementations cover the common cases:

* :class:`InMemorySink` — events kept in a list; what tests assert on.
* :class:`JsonlSink` — one JSON object per line appended to a file; what
  the benchmark harness writes so runs are diffable across machines.
* :class:`LoggingSink` — events forwarded to a stdlib
  :mod:`logging` logger, for deployments that already aggregate logs.

Aggregated counters/timers never pass through sinks — they live on the
telemetry handle and are read via
:meth:`~repro.obs.telemetry.Telemetry.summary`.
"""

from __future__ import annotations

import json
import logging
import threading
from typing import Any, Dict, List, Optional

__all__ = ["Sink", "InMemorySink", "JsonlSink", "LoggingSink", "jsonable"]


def jsonable(value: Any) -> Any:
    """Coerce ``value`` into something :func:`json.dumps` accepts.

    Parameters
    ----------
    value:
        Any python object; numpy scalars/arrays become python
        numbers/lists, mappings and sequences recurse, everything else
        falls back to ``str``.

    Returns
    -------
    A JSON-serializable equivalent of ``value``.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if hasattr(value, "item") and not hasattr(value, "__len__"):
        try:
            return value.item()  # numpy scalar
        except Exception:
            return str(value)
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [jsonable(v) for v in value]
    if hasattr(value, "tolist"):
        try:
            return value.tolist()  # numpy array
        except Exception:
            return str(value)
    return str(value)


class Sink:
    """Abstract event consumer attached to a telemetry handle."""

    def emit(self, event: Dict[str, Any]) -> None:
        """Consume one event dict (must not mutate it)."""
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release any resources (idempotent; default no-op)."""


class InMemorySink(Sink):
    """Keep every emitted event in a list — the test double.

    Attributes
    ----------
    events:
        All emitted event dicts, in emission order.
    """

    def __init__(self) -> None:
        self.events: List[Dict[str, Any]] = []
        self._lock = threading.Lock()

    def emit(self, event: Dict[str, Any]) -> None:
        """Append ``event`` to :attr:`events` (thread-safe)."""
        with self._lock:
            self.events.append(dict(event))

    def spans(self, name: Optional[str] = None) -> List[Dict[str, Any]]:
        """Span-end events, optionally filtered by span name.

        Parameters
        ----------
        name:
            When given, only spans with this exact name are returned.

        Returns
        -------
        A list of span event dicts.
        """
        with self._lock:
            return [
                e
                for e in self.events
                if e.get("event") == "span"
                and (name is None or e.get("name") == name)
            ]

    def clear(self) -> None:
        """Drop all recorded events."""
        with self._lock:
            self.events.clear()


class JsonlSink(Sink):
    """Append one JSON object per event to a file.

    The file is opened lazily on the first emit (so constructing a sink
    never touches the filesystem) and each line is flushed immediately,
    making records durable even when the process dies mid-run.

    Parameters
    ----------
    path:
        Destination file; parent directory must exist.
    mode:
        File mode, ``"a"`` (default, append across runs) or ``"w"``.
    """

    def __init__(self, path: Any, mode: str = "a") -> None:
        if mode not in ("a", "w"):
            raise ValueError("mode must be 'a' or 'w'")
        self.path = path
        self.mode = mode
        self._handle = None
        self._lock = threading.Lock()

    def emit(self, event: Dict[str, Any]) -> None:
        """Serialize ``event`` as one JSON line and flush it."""
        line = json.dumps(jsonable(event), sort_keys=True)
        with self._lock:
            if self._handle is None:
                self._handle = open(self.path, self.mode)
            self._handle.write(line + "\n")
            self._handle.flush()

    def close(self) -> None:
        """Close the underlying file (a later emit reopens in append)."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None
                self.mode = "a"  # never truncate records on reopen

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class LoggingSink(Sink):
    """Forward events to a stdlib :mod:`logging` logger.

    Parameters
    ----------
    logger:
        Target logger (default: the ``"repro.obs"`` logger).
    level:
        Level every event is logged at (default ``logging.INFO``).
    """

    def __init__(
        self,
        logger: Optional[logging.Logger] = None,
        level: int = logging.INFO,
    ) -> None:
        self.logger = logger or logging.getLogger("repro.obs")
        self.level = level

    def emit(self, event: Dict[str, Any]) -> None:
        """Log ``event`` as a single JSON-formatted message."""
        if self.logger.isEnabledFor(self.level):
            self.logger.log(
                self.level, "%s", json.dumps(jsonable(event), sort_keys=True)
            )
