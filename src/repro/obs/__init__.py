"""Zero-dependency observability for the cooperative analytics stack.

One :class:`Telemetry` handle, attached to a
:class:`~repro.core.evaluation.GraphEvaluator` (or any layer directly),
collects counters, aggregated span timings, and structured events from
the execution engine, the budgeted searches, the distributed scheduler
and the DARR — see ``docs/observability.md`` for the full guide.
"""

from repro.obs.sinks import (
    InMemorySink,
    JsonlSink,
    LoggingSink,
    Sink,
    jsonable,
)
from repro.obs.telemetry import (
    NULL_TELEMETRY,
    NullTelemetry,
    Span,
    Telemetry,
    resolve_telemetry,
)

__all__ = [
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "Span",
    "resolve_telemetry",
    "Sink",
    "InMemorySink",
    "JsonlSink",
    "LoggingSink",
    "jsonable",
]
