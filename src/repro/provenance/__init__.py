"""Provenance: producer identity, artifact lineage and contribution credit.

The paper promises "results with provenance/explanations"; this package
is that promise made structural.  One
:class:`ClientId` identity is shared by DARR clients, serve tenants and
fault-injection labels; every
:class:`~repro.store.base.ArtifactStore` write attaches a
:class:`ProvenanceRecord`; the :class:`ProvenanceRegistry` answers
``lineage(digest)`` (back to raw data versions) and
``descendants(data_object, version)`` (invalidation audits); and the
:class:`ContributionLedger` attributes every reuse/skip event's saved
fits and bytes to the clients whose published artifacts enabled it
(Shapley-style equal split over the enabling chain).

Dependency-wise this package sits *below* ``repro.store``: it imports
nothing from the rest of repro, so store tiers, the engine, the DARR,
serve and streaming can all build on it.  See ``docs/provenance.md``.
"""

from repro.provenance.identity import ANONYMOUS, ClientId, as_client
from repro.provenance.ledger import ContributionLedger
from repro.provenance.record import ProvenanceRecord
from repro.provenance.registry import ProvenanceRegistry

__all__ = [
    "ANONYMOUS",
    "ClientId",
    "as_client",
    "ProvenanceRecord",
    "ProvenanceRegistry",
    "ContributionLedger",
]
