"""One producer identity for the whole stack: :class:`ClientId`.

Before this module, "who did this" was a different ad-hoc string in
every subsystem: DARR records carried a free-form ``client`` field,
serve keyed :class:`~repro.serve.queue.TenantQuota` maps by tenant
name, fault-injection sites labelled checks with whatever the caller
passed.  :class:`ClientId` unifies them — it *is* a ``str`` (so every
existing call site, dict key and pickle keeps working unchanged — the
compat shim for the deprecated ad-hoc strings) but validates its shape
once at construction, so a producer identity can never be empty,
padded, or contain control characters that would corrupt provenance
records, telemetry labels or persisted repository dumps.
"""

from __future__ import annotations

from typing import Any

__all__ = ["ClientId", "ANONYMOUS", "as_client"]


class ClientId(str):
    """A validated producer identity (client, tenant or service name).

    A ``str`` subclass: equal to, hashable as, and substitutable for
    the plain strings it replaces.  Construction normalizes
    surrounding whitespace and rejects identities that are empty or
    contain newlines/control characters.

    >>> ClientId(" alice ") == "alice"
    True
    >>> {ClientId("home-1"): 1}["home-1"]
    1
    """

    __slots__ = ()

    def __new__(cls, value: Any) -> "ClientId":
        if isinstance(value, ClientId):
            return value
        text = str(value).strip()
        if not text:
            raise ValueError("client identity must be non-empty")
        if any(ord(ch) < 32 or ch == "\x7f" for ch in text):
            raise ValueError(
                f"client identity {text!r} contains control characters"
            )
        return super().__new__(cls, text)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ClientId({str.__repr__(self)})"


#: Identity stamped when a write path has no better answer (legacy
#: callers that never named their client).
ANONYMOUS = ClientId("anonymous")


def as_client(value: Any, default: ClientId = ANONYMOUS) -> ClientId:
    """Coerce ``value`` into a :class:`ClientId` (the compat shim).

    Accepts an existing :class:`ClientId`, any non-empty string (the
    deprecated ad-hoc form — normalized in place), or ``None`` /
    empty, which falls back to ``default``.

    Parameters
    ----------
    value:
        The identity-ish value to coerce.
    default:
        Identity used when ``value`` is ``None`` or blank.

    Returns
    -------
    A validated :class:`ClientId`.
    """
    if value is None:
        return default
    if isinstance(value, ClientId):
        return value
    text = str(value).strip()
    if not text:
        return default
    return ClientId(text)
