"""The provenance sidecar attached to every stored artifact.

An :class:`~repro.store.keys.ArtifactKey` names *what* was computed;
a :class:`ProvenanceRecord` names *who* computed it, *from which* data
version, *via which* execution path, and *from what* parent artifacts.
It is deliberately a sidecar, not part of the key: adding producer
identity to the content address would make the same computation by two
clients two different artifacts and destroy the cooperative
deduplication the whole system is built on (and invalidate every warm
store).  Records are plain data — JSON-stable dicts round-trip through
disk entries, DARR repository dumps and shard replication.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, Optional, Tuple

from repro.provenance.identity import ANONYMOUS, ClientId, as_client

__all__ = ["ProvenanceRecord"]


@dataclass(frozen=True)
class ProvenanceRecord:
    """Who/when/from-what of one stored artifact.

    Parameters
    ----------
    producer:
        The :class:`~repro.provenance.identity.ClientId` that computed
        the artifact — a cooperative client, a serve *tenant*, or a
        subsystem default (``"engine"``, ``"stream"``).
    kind:
        The artifact kind (mirrors the key, so a record is
        self-describing without the key at hand).
    spec_key:
        Canonical computation identity the artifact was produced for.
    data_object:
        Named versioned data object the artifact derives from (``""``
        for anonymous in-memory data).
    data_version:
        Version of that object when the artifact was computed — the
        "raw data version" every lineage walk bottoms out at.
    parents:
        Digests of the artifacts this one was derived *from* (a result
        lists the fold-transform artifacts it consumed; a warm-advanced
        fold score lists the fitted model it advanced).  Empty for
        artifacts computed directly from the raw data.
    executor:
        Execution-path label (``"interpreted"``, ``"compiled"``,
        ``"warm-advance"``, ...), for auditing *how* a value was made.
    tick:
        Logical timestamp from the recording
        :class:`~repro.provenance.registry.ProvenanceRegistry` — a
        total order over one registry's writes even when the wall
        clock is frozen or simulated.
    timestamp:
        Wall/simulated-clock time of production when a clock was
        available (0.0 otherwise); orders records *across* registries.
    """

    producer: ClientId = ANONYMOUS
    kind: str = ""
    spec_key: str = ""
    data_object: str = ""
    data_version: int = 0
    parents: Tuple[str, ...] = ()
    executor: str = ""
    tick: int = 0
    timestamp: float = 0.0

    def __post_init__(self):
        object.__setattr__(self, "producer", as_client(self.producer))
        object.__setattr__(self, "parents", tuple(self.parents))

    @classmethod
    def for_key(
        cls,
        key: Any,
        producer: Any,
        parents: Tuple[str, ...] = (),
        executor: str = "",
        tick: int = 0,
        timestamp: float = 0.0,
    ) -> "ProvenanceRecord":
        """Build a record for an :class:`~repro.store.keys.ArtifactKey`
        (duck-typed: any object with ``kind`` / ``spec_key`` /
        ``data_object`` / ``data_version`` attributes works)."""
        return cls(
            producer=as_client(producer),
            kind=key.kind,
            spec_key=key.spec_key,
            data_object=key.data_object,
            data_version=key.data_version,
            parents=tuple(parents),
            executor=executor,
            tick=tick,
            timestamp=timestamp,
        )

    def as_dict(self) -> Dict[str, Any]:
        """JSON-stable plain-dict form (disk headers, DARR records)."""
        return {
            "producer": str(self.producer),
            "kind": self.kind,
            "spec_key": self.spec_key,
            "data_object": self.data_object,
            "data_version": self.data_version,
            "parents": list(self.parents),
            "executor": self.executor,
            "tick": self.tick,
            "timestamp": self.timestamp,
        }

    @classmethod
    def from_dict(cls, doc: Optional[Dict[str, Any]]) -> Optional["ProvenanceRecord"]:
        """Rebuild from :meth:`as_dict` output; tolerant of missing
        fields (older dumps) and of ``None`` (no provenance recorded).
        """
        if doc is None:
            return None
        known = {f.name for f in fields(cls)}
        kwargs = {name: doc[name] for name in doc if name in known}
        if "parents" in kwargs:
            kwargs["parents"] = tuple(kwargs["parents"])
        return cls(**kwargs)

    @property
    def data_ref(self) -> Tuple[str, int]:
        """The raw data version this artifact (transitively) rests on."""
        return (self.data_object, self.data_version)
