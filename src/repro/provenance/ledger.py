"""Shapley-style cooperative contribution accounting.

Every reuse or skip event in the cooperative protocol has a measurable
value — the fold fits the consumer did not run and the bytes it did not
recompute — and a set of clients whose published artifacts *enabled*
it.  The :class:`ContributionLedger` attributes that value to those
clients.

The game-theoretic framing (see "A Comprehensive Study of Shapley
Value in Data Analytics"): for one event, the players are the
producers of the artifacts in the reused result's lineage, and the
characteristic function is all-or-nothing — the savings exist only
when the *whole* chain is present (a result without its parents is
not reusable, a fold score without the fitted model it advanced from
would not exist).  For such a symmetric unanimity game the Shapley
value is the equal split among the distinct enabling producers, which
is exactly what :meth:`ContributionLedger.credit` applies.

Credits are kept as exact :class:`fractions.Fraction` values, so the
ledger's defining invariant — per-client attributions sum *exactly* to
the run's recorded totals, no float drift — holds by construction and
is property-tested in ``tests/provenance/test_ledger.py``.
"""

from __future__ import annotations

import threading
from fractions import Fraction
from typing import Any, Dict, Iterable, List, Optional

from repro.provenance.identity import ANONYMOUS, as_client

__all__ = ["ContributionLedger"]


class _Account:
    """Per-client running credit totals (exact arithmetic)."""

    __slots__ = ("events", "fits_saved", "bytes_saved")

    def __init__(self):
        self.events = Fraction(0)
        self.fits_saved = Fraction(0)
        self.bytes_saved = Fraction(0)


class ContributionLedger:
    """Attributes cooperative savings to the clients that enabled them.

    Thread-safe; shared by the execution engine (store reuse), the
    cooperative coordinator (DARR fetch reuse and claim skips) and the
    serving layer (one ledger per service).
    """

    def __init__(self):
        self._accounts: Dict[str, _Account] = {}
        self._lock = threading.Lock()
        self.total_events = 0

    def credit(
        self,
        producers: Iterable[Any],
        fits_saved: int = 0,
        bytes_saved: int = 0,
    ) -> None:
        """Record one reuse/skip event worth ``fits_saved`` fold fits
        and ``bytes_saved`` bytes, split equally (the Shapley value of
        the all-or-nothing enabling game) among the *distinct*
        ``producers``.

        Parameters
        ----------
        producers:
            The clients whose artifacts enabled the event (duplicates
            and blanks collapse; empty falls back to ``anonymous`` so
            no recorded savings ever leak out of the accounting).
        fits_saved:
            Fold fits the consumer did not run.
        bytes_saved:
            Bytes the consumer did not recompute (typically the
            record's wire size).
        """
        names = sorted({str(as_client(p)) for p in producers if p is not None})
        if not names:
            names = [str(ANONYMOUS)]
        share = Fraction(1, len(names))
        with self._lock:
            self.total_events += 1
            for name in names:
                account = self._accounts.setdefault(name, _Account())
                account.events += share
                account.fits_saved += share * fits_saved
                account.bytes_saved += share * bytes_saved

    # -- totals (exact) ---------------------------------------------------
    def _totals(self) -> Dict[str, Fraction]:
        return {
            "events": sum(
                (a.events for a in self._accounts.values()), Fraction(0)
            ),
            "fits_saved": sum(
                (a.fits_saved for a in self._accounts.values()), Fraction(0)
            ),
            "bytes_saved": sum(
                (a.bytes_saved for a in self._accounts.values()), Fraction(0)
            ),
        }

    @property
    def total_fits_saved(self) -> Fraction:
        """Exact sum of every client's attributed fold fits."""
        with self._lock:
            return self._totals()["fits_saved"]

    @property
    def total_bytes_saved(self) -> Fraction:
        """Exact sum of every client's attributed bytes."""
        with self._lock:
            return self._totals()["bytes_saved"]

    def attributions(self) -> Dict[str, Dict[str, Fraction]]:
        """Exact per-client credit (client → counter → Fraction)."""
        with self._lock:
            return {
                name: {
                    "events": account.events,
                    "fits_saved": account.fits_saved,
                    "bytes_saved": account.bytes_saved,
                }
                for name, account in self._accounts.items()
            }

    # -- reporting --------------------------------------------------------
    def leaderboard(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """Per-client contributions, most valuable first.

        Sorted by attributed fold fits, then bytes, then name (a
        stable, deterministic order for reports and docs).  Fractions
        are rendered as floats; the ``share`` column is each client's
        fraction of the total attributed fits (0.0 when no fits were
        saved anywhere).

        Parameters
        ----------
        limit:
            Keep only the top ``limit`` rows (``None``: all).

        Returns
        -------
        List of ``{"client", "events", "fits_saved", "bytes_saved",
        "share"}`` rows.
        """
        with self._lock:
            totals = self._totals()
            rows = sorted(
                self._accounts.items(),
                key=lambda item: (
                    -item[1].fits_saved,
                    -item[1].bytes_saved,
                    item[0],
                ),
            )
        total_fits = totals["fits_saved"]
        board = [
            {
                "client": name,
                "events": float(account.events),
                "fits_saved": float(account.fits_saved),
                "bytes_saved": float(account.bytes_saved),
                "share": float(account.fits_saved / total_fits)
                if total_fits
                else 0.0,
            }
            for name, account in rows
        ]
        return board[:limit] if limit is not None else board

    def as_dict(self) -> Dict[str, Any]:
        """Report-ready summary: float totals plus the leaderboard."""
        with self._lock:
            totals = self._totals()
        return {
            "events": self.total_events,
            "fits_saved": float(totals["fits_saved"]),
            "bytes_saved": float(totals["bytes_saved"]),
            "leaderboard": self.leaderboard(),
        }

    def __len__(self) -> int:
        with self._lock:
            return len(self._accounts)
