"""Digest-indexed provenance registry with lineage queries.

The registry is the paper's missing "results with provenance /
explanations" piece made queryable: every
:class:`~repro.store.base.ArtifactStore` write records a
:class:`~repro.provenance.record.ProvenanceRecord` here under the
artifact's content digest, and two walks answer the audit questions:

* :meth:`ProvenanceRegistry.lineage` — from an artifact digest back
  through its parents to the raw data versions it rests on ("where did
  this number come from?").
* :meth:`ProvenanceRegistry.descendants` — from a data object (and
  optionally one version) forward through children ("what would a
  version bump invalidate?") — the audit counterpart of
  :class:`~repro.store.invalidation.StoreInvalidator`.

Records are first-write-wins, mirroring artifact immutability: the
first producer of a digest keeps the credit even when a replica or a
read-through promotion re-puts the same payload later.  Thread-safe.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.provenance.record import ProvenanceRecord

__all__ = ["ProvenanceRegistry"]


class ProvenanceRegistry:
    """Maps artifact digests to provenance, with lineage walks.

    Parameters
    ----------
    telemetry:
        Optional :class:`~repro.obs.Telemetry` handle (or anything with
        a ``count`` method); when given, ``provenance.records`` /
        ``provenance.lineage_queries`` / ``provenance.descendant_queries``
        counters are emitted.
    """

    def __init__(self, telemetry: Any = None):
        self._records: Dict[str, ProvenanceRecord] = {}
        #: parent digest -> digests derived from it (forward edges).
        self._children: Dict[str, Set[str]] = {}
        #: data object name -> digests of artifacts computed on it.
        self._by_object: Dict[str, Set[str]] = {}
        self._lock = threading.Lock()
        self._tick = 0
        self.telemetry = telemetry

    def _count(self, name: str) -> None:
        if self.telemetry is not None and getattr(
            self.telemetry, "enabled", True
        ):
            self.telemetry.count(name)

    # -- writes -----------------------------------------------------------
    def tick(self) -> int:
        """Next logical timestamp (monotonic per registry)."""
        with self._lock:
            self._tick += 1
            return self._tick

    def record(self, key: Any, record: ProvenanceRecord) -> bool:
        """Attach ``record`` to the artifact of ``key`` (its digest).

        First write wins — artifacts are immutable, so re-puts of an
        existing digest (write-back promotion, replication, duplicate
        publishes) never overwrite the original producer's credit.

        Parameters
        ----------
        key:
            The :class:`~repro.store.keys.ArtifactKey` (or any object
            with a ``digest`` attribute, or a bare digest string).
        record:
            The provenance to attach.

        Returns
        -------
        True when the record was new, False when the digest already
        had provenance.
        """
        digest = getattr(key, "digest", key)
        with self._lock:
            if digest in self._records:
                return False
            self._records[digest] = record
            for parent in record.parents:
                self._children.setdefault(parent, set()).add(digest)
            if record.data_object:
                self._by_object.setdefault(record.data_object, set()).add(
                    digest
                )
        self._count("provenance.records")
        return True

    def record_dict(self, key: Any, doc: Optional[Dict[str, Any]]) -> bool:
        """:meth:`record` from a plain provenance dict (disk headers,
        DARR records); a ``None`` doc is a no-op."""
        rec = ProvenanceRecord.from_dict(doc)
        if rec is None:
            return False
        return self.record(key, rec)

    def merge(self, other: "ProvenanceRegistry") -> int:
        """Fold another registry's records in (first-write-wins).

        Returns the number of newly learned digests.
        """
        learned = 0
        for digest, rec in other.snapshot().items():
            if self.record(digest, rec):
                learned += 1
        return learned

    # -- reads ------------------------------------------------------------
    def get(self, digest: str) -> Optional[ProvenanceRecord]:
        """The record for ``digest`` (or an object with one), if known."""
        digest = getattr(digest, "digest", digest)
        with self._lock:
            return self._records.get(digest)

    def snapshot(self) -> Dict[str, ProvenanceRecord]:
        """Copy of the digest → record map (persistence/replication)."""
        with self._lock:
            return dict(self._records)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def lineage(self, digest: str) -> List[Tuple[str, ProvenanceRecord]]:
        """Walk from an artifact back to the raw data versions.

        Breadth-first over ``parents`` edges, starting at ``digest``:
        the artifact's own record first, then its parents, their
        parents, and so on.  Each reached record names its
        ``(data_object, data_version)``, so the walk reconstructs the
        full chain down to the raw data version(s) the artifact rests
        on.  Digests with no recorded provenance are skipped (a parent
        produced before provenance tracking, or on another node).

        Parameters
        ----------
        digest:
            Artifact digest (or an :class:`~repro.store.keys.ArtifactKey`).

        Returns
        -------
        ``(digest, record)`` pairs in BFS order, deduplicated; empty
        when the digest is unknown.
        """
        digest = getattr(digest, "digest", digest)
        self._count("provenance.lineage_queries")
        with self._lock:
            chain: List[Tuple[str, ProvenanceRecord]] = []
            seen: Set[str] = set()
            frontier = [digest]
            while frontier:
                nxt: List[str] = []
                for d in frontier:
                    if d in seen:
                        continue
                    seen.add(d)
                    rec = self._records.get(d)
                    if rec is None:
                        continue
                    chain.append((d, rec))
                    nxt.extend(rec.parents)
                frontier = nxt
            return chain

    def roots(self, digest: str) -> List[Tuple[str, int]]:
        """The distinct raw ``(data_object, data_version)`` pairs an
        artifact's lineage bottoms out at (sorted)."""
        refs = {rec.data_ref for _, rec in self.lineage(digest)}
        return sorted(ref for ref in refs if ref[0])

    def descendants(
        self, data_object: str, version: Optional[int] = None
    ) -> List[Tuple[str, ProvenanceRecord]]:
        """Everything derived from a data object — the invalidation audit.

        Seeds with every artifact recorded directly against
        ``data_object`` (restricted to one ``version`` when given),
        then follows child edges transitively, so artifacts built *on
        top of* those artifacts are reached even when their own
        ``data_object`` field differs.

        Parameters
        ----------
        data_object:
            Name of the versioned data object.
        version:
            Only seed from artifacts computed at this exact version
            (``None``: all versions).

        Returns
        -------
        ``(digest, record)`` pairs in BFS order, deduplicated.
        """
        self._count("provenance.descendant_queries")
        with self._lock:
            seeds = [
                d
                for d in sorted(self._by_object.get(data_object, ()))
                if version is None
                or self._records[d].data_version == version
            ]
            out: List[Tuple[str, ProvenanceRecord]] = []
            seen: Set[str] = set()
            frontier = seeds
            while frontier:
                nxt: List[str] = []
                for d in frontier:
                    if d in seen:
                        continue
                    seen.add(d)
                    rec = self._records.get(d)
                    if rec is not None:
                        out.append((d, rec))
                    nxt.extend(sorted(self._children.get(d, ())))
                frontier = nxt
            return out

    def clear(self) -> None:
        """Drop every record (counters on the telemetry side are kept)."""
        with self._lock:
            self._records.clear()
            self._children.clear()
            self._by_object.clear()

    # -- rebuilds ---------------------------------------------------------
    @classmethod
    def from_darr(cls, repository: Any, telemetry: Any = None) -> "ProvenanceRegistry":
        """Rebuild a registry from a repository's stored records.

        Works for a single
        :class:`~repro.darr.repository.DataAnalyticsResultsRepository`
        and a :class:`~repro.darr.sharded.ShardedDarr` alike (both
        expose ``query()``); records without provenance (legacy dumps)
        are skipped.  Because provenance rides *inside* each
        :class:`~repro.darr.records.AnalyticsResult`, the rebuilt
        registry is identical before and after shard crashes,
        rebalances and schema-v4 save/load round-trips.
        """
        registry = cls(telemetry=telemetry)
        for result in repository.query():
            doc = getattr(result, "provenance", None)
            if not doc:
                continue
            digest = doc.get("digest")
            if digest:
                registry.record_dict(digest, doc)
        return registry
