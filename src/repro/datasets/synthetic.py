"""Synthetic tabular datasets for examples, tests and benchmarks.

The paper evaluates on proprietary customer data from heavy industry;
these generators provide open equivalents with controlled structure so
every experiment is reproducible from a seed.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = ["make_regression", "make_classification", "make_clusters"]


def make_regression(
    n_samples: int = 200,
    n_features: int = 10,
    n_informative: int = 5,
    noise: float = 0.1,
    random_state: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Linear-with-interactions regression data.

    The first ``n_informative`` features carry signal (linear terms plus
    one pairwise interaction); the rest are distractors, which gives
    feature-selection stages something real to do.
    """
    if not 1 <= n_informative <= n_features:
        raise ValueError("need 1 <= n_informative <= n_features")
    rng = np.random.default_rng(random_state)
    X = rng.normal(size=(n_samples, n_features))
    coef = rng.uniform(1.0, 3.0, size=n_informative) * rng.choice(
        [-1.0, 1.0], size=n_informative
    )
    y = X[:, :n_informative] @ coef
    if n_informative >= 2:
        y = y + 0.5 * X[:, 0] * X[:, 1]
    y = y + noise * rng.normal(size=n_samples)
    return X, y


def make_classification(
    n_samples: int = 200,
    n_features: int = 10,
    n_informative: int = 5,
    class_balance: float = 0.5,
    separation: float = 2.0,
    random_state: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Binary classification with controllable class imbalance.

    ``class_balance`` is the positive-class fraction; small values model
    the paper's "rare failure cases, but many successful cases".
    """
    if not 1 <= n_informative <= n_features:
        raise ValueError("need 1 <= n_informative <= n_features")
    if not 0.0 < class_balance < 1.0:
        raise ValueError("class_balance must be in (0, 1)")
    rng = np.random.default_rng(random_state)
    n_pos = max(1, int(round(class_balance * n_samples)))
    n_neg = n_samples - n_pos
    if n_neg < 1:
        raise ValueError("class_balance leaves no negative samples")
    direction = rng.normal(size=n_informative)
    direction /= np.linalg.norm(direction)
    X_neg = rng.normal(size=(n_neg, n_features))
    X_pos = rng.normal(size=(n_pos, n_features))
    X_pos[:, :n_informative] += separation * direction
    X = np.vstack([X_neg, X_pos])
    y = np.concatenate([np.zeros(n_neg, dtype=int), np.ones(n_pos, dtype=int)])
    order = rng.permutation(n_samples)
    return X[order], y[order]


def make_clusters(
    n_samples: int = 300,
    n_features: int = 4,
    n_clusters: int = 3,
    spread: float = 0.6,
    random_state: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Isotropic Gaussian blobs with well-separated centers; returns
    ``(X, true_labels)``."""
    if n_clusters < 1:
        raise ValueError("n_clusters must be >= 1")
    rng = np.random.default_rng(random_state)
    centers = rng.uniform(-5.0, 5.0, size=(n_clusters, n_features))
    sizes = np.full(n_clusters, n_samples // n_clusters)
    sizes[: n_samples % n_clusters] += 1
    rows, labels = [], []
    for c in range(n_clusters):
        rows.append(centers[c] + spread * rng.normal(size=(sizes[c], n_features)))
        labels.append(np.full(sizes[c], c))
    X = np.vstack(rows)
    y = np.concatenate(labels)
    order = rng.permutation(len(X))
    return X[order], y[order]
