"""Synthetic heavy-industry data (substitute for the paper's customer
data).

The paper's motivating problems come from "real data analytics problems
from heavy industry": multivariate sensor streams, rare equipment
failures, process outcomes driven by actionable factors, and fleets of
assets with distinct behaviour cohorts.  The generators here synthesize
each with the statistical features the pipeline stages are designed to
handle — trend, seasonality, cross-variable coupling, regime shifts,
degradation before failures, heavy class imbalance, and sensor noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "make_sensor_series",
    "make_failure_dataset",
    "make_asset_fleet",
    "make_process_outcomes",
]


def make_sensor_series(
    length: int = 400,
    n_variables: int = 3,
    seasonality: float = 1.0,
    trend: float = 0.002,
    noise: float = 0.08,
    regime_shift_at: Optional[int] = None,
    random_state: Optional[int] = None,
) -> np.ndarray:
    """Multivariate sensor stream ``(length, n_variables)``.

    Variable 0 is the "primary" process variable (seasonal + trend);
    later variables are lagged/coupled derivatives of it plus their own
    periodic components — giving multivariate models genuine
    cross-variable signal to exploit.  ``regime_shift_at`` injects a
    mean shift (an equipment/environment change, Section II's
    model-lifecycle concern).
    """
    if length < 10:
        raise ValueError("length must be >= 10")
    if n_variables < 1:
        raise ValueError("n_variables must be >= 1")
    rng = np.random.default_rng(random_state)
    t = np.arange(length, dtype=float)
    series = np.empty((length, n_variables))
    primary = (
        seasonality * np.sin(2 * np.pi * t / 48.0)
        + 0.4 * seasonality * np.sin(2 * np.pi * t / 11.0)
        + trend * t
        + noise * rng.normal(size=length)
    )
    series[:, 0] = primary
    for v in range(1, n_variables):
        lag = 2 * v
        coupled = np.roll(primary, lag)
        coupled[:lag] = primary[0]
        series[:, v] = (
            0.6 * coupled
            + 0.5 * np.cos(2 * np.pi * t / (20.0 + 7 * v))
            + noise * rng.normal(size=length)
        )
    if regime_shift_at is not None:
        if not 0 < regime_shift_at < length:
            raise ValueError("regime_shift_at must fall inside the series")
        series[regime_shift_at:] += 1.5
    return series


def make_failure_dataset(
    n_samples: int = 600,
    n_sensors: int = 8,
    failure_rate: float = 0.08,
    degradation_strength: float = 2.0,
    missing_rate: float = 0.0,
    random_state: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sensor snapshots + imminent-failure labels (for FPA).

    Failures are rare (``failure_rate``) and preceded by degradation: the
    first three sensors drift by ``degradation_strength`` before a
    failure.  ``missing_rate`` knocks out random readings (NaN) to
    exercise imputation.
    """
    if not 0.0 < failure_rate < 0.5:
        raise ValueError("failure_rate must be in (0, 0.5)")
    if n_sensors < 3:
        raise ValueError("n_sensors must be >= 3")
    rng = np.random.default_rng(random_state)
    X = rng.normal(size=(n_samples, n_sensors))
    y = (rng.random(n_samples) < failure_rate).astype(int)
    drift = degradation_strength * np.array([1.0, -0.8, 0.6])
    X[y == 1, :3] += drift + 0.3 * rng.normal(size=(int(y.sum()), 3))
    if missing_rate > 0.0:
        if missing_rate >= 1.0:
            raise ValueError("missing_rate must be < 1")
        mask = rng.random(X.shape) < missing_rate
        X[mask] = np.nan
    return X, y


def make_asset_fleet(
    n_assets: int = 30,
    n_cohorts: int = 3,
    series_length: int = 200,
    random_state: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """A fleet of assets with cohort-specific operating behaviour.

    Each cohort has its own (amplitude, period, level); each asset emits
    one univariate sensor series.  Returns
    ``(series, features, true_cohorts)`` where ``series`` is
    ``(n_assets, series_length)`` and ``features`` is the per-asset
    summary matrix (mean, std, dominant amplitude, autocorrelation) that
    Cohort Analysis clusters.
    """
    if n_cohorts < 1 or n_assets < n_cohorts:
        raise ValueError("need n_assets >= n_cohorts >= 1")
    rng = np.random.default_rng(random_state)
    amplitudes = rng.uniform(0.5, 3.0, size=n_cohorts)
    periods = rng.uniform(10.0, 60.0, size=n_cohorts)
    levels = rng.uniform(-2.0, 2.0, size=n_cohorts)
    cohorts = np.arange(n_assets) % n_cohorts
    rng.shuffle(cohorts)
    t = np.arange(series_length, dtype=float)
    series = np.empty((n_assets, series_length))
    for a in range(n_assets):
        c = cohorts[a]
        phase = rng.uniform(0, 2 * np.pi)
        series[a] = (
            levels[c]
            + amplitudes[c] * np.sin(2 * np.pi * t / periods[c] + phase)
            + 0.15 * rng.normal(size=series_length)
        )
    features = np.column_stack(
        [
            series.mean(axis=1),
            series.std(axis=1),
            np.abs(series - series.mean(axis=1, keepdims=True)).max(axis=1),
            [np.corrcoef(s[:-1], s[1:])[0, 1] for s in series],
        ]
    )
    return series, features, cohorts


def make_process_outcomes(
    n_samples: int = 400,
    random_state: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray, List[str], Dict[str, float]]:
    """Industrial process runs with known factor contributions (for RCA).

    Factors: temperature, pressure, feed_rate, catalyst_age,
    humidity, shift (operator shift id — irrelevant by construction).
    The outcome (yield) depends on the first four with known weights, so
    a root-cause analysis can be validated against ground truth.

    Returns ``(X, y, factor_names, true_contributions)`` where
    ``true_contributions`` maps factor name to its generative weight.
    """
    rng = np.random.default_rng(random_state)
    names = [
        "temperature",
        "pressure",
        "feed_rate",
        "catalyst_age",
        "humidity",
        "shift",
    ]
    weights = {
        "temperature": 2.0,
        "pressure": -1.5,
        "feed_rate": 1.0,
        "catalyst_age": -0.8,
        "humidity": 0.0,
        "shift": 0.0,
    }
    X = np.column_stack(
        [
            rng.normal(0.0, 1.0, n_samples),  # temperature
            rng.normal(0.0, 1.0, n_samples),  # pressure
            rng.normal(0.0, 1.0, n_samples),  # feed_rate
            rng.uniform(0.0, 2.0, n_samples),  # catalyst_age
            rng.normal(0.0, 1.0, n_samples),  # humidity (irrelevant)
            rng.integers(0, 3, n_samples).astype(float),  # shift id
        ]
    )
    y = sum(weights[name] * X[:, i] for i, name in enumerate(names))
    y = y + 0.2 * rng.normal(size=n_samples)
    return X, y, names, weights
