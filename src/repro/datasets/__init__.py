"""Synthetic datasets: tabular generators and heavy-industry simulations."""

from repro.datasets.industrial import (
    make_asset_fleet,
    make_failure_dataset,
    make_process_outcomes,
    make_sensor_series,
)
from repro.datasets.synthetic import (
    make_classification,
    make_clusters,
    make_regression,
)

__all__ = [
    "make_regression",
    "make_classification",
    "make_clusters",
    "make_sensor_series",
    "make_failure_dataset",
    "make_asset_fleet",
    "make_process_outcomes",
]
