"""Cohort Analysis (CA) solution template.

"This solution pattern leverages historical sensor data from multiple
assets to model their behaviour.  Based on the similar patterns, assets
are grouped in different buckets or cohorts allowing for a better
understanding of industrial asset behavior" (paper Section IV-E).

Assets are summarized into behaviour features, standardized, and
clustered with k-means; the cohort count is chosen by silhouette score
over a candidate range when not given.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.ml.base import as_2d_array
from repro.ml.cluster.kmeans import KMeans
from repro.ml.preprocessing.scalers import StandardScaler
from repro.templates.base import SolutionTemplate, TemplateReport

__all__ = ["CohortAnalysisTemplate", "silhouette_score", "summarize_asset_series"]


def silhouette_score(X: np.ndarray, labels: np.ndarray) -> float:
    """Mean silhouette coefficient over all samples.

    For each sample: ``(b - a) / max(a, b)`` with ``a`` the mean
    intra-cluster distance and ``b`` the smallest mean distance to
    another cluster.  Singleton clusters contribute 0.
    """
    X = np.asarray(X, dtype=float)
    labels = np.asarray(labels)
    unique = np.unique(labels)
    if len(unique) < 2:
        raise ValueError("silhouette needs at least two clusters")
    sq = (
        (X**2).sum(axis=1)[:, None]
        + (X**2).sum(axis=1)[None, :]
        - 2.0 * X @ X.T
    )
    distances = np.sqrt(np.maximum(sq, 0.0))
    scores = np.zeros(len(X))
    for i in range(len(X)):
        own = labels[i]
        own_mask = labels == own
        if own_mask.sum() <= 1:
            scores[i] = 0.0
            continue
        a = distances[i, own_mask & (np.arange(len(X)) != i)].mean()
        b = min(
            distances[i, labels == other].mean()
            for other in unique
            if other != own
        )
        denominator = max(a, b)
        scores[i] = 0.0 if denominator == 0 else (b - a) / denominator
    return float(scores.mean())


def summarize_asset_series(series: Any) -> np.ndarray:
    """Per-asset behaviour features from raw series ``(n_assets, length)``:
    mean, std, peak deviation, lag-1 autocorrelation."""
    series = np.asarray(series, dtype=float)
    if series.ndim != 2:
        raise ValueError("series must be (n_assets, length)")
    means = series.mean(axis=1)
    stds = series.std(axis=1)
    peaks = np.abs(series - means[:, None]).max(axis=1)
    autocorr = np.empty(len(series))
    for i, s in enumerate(series):
        if s.std() == 0:
            autocorr[i] = 0.0
        else:
            autocorr[i] = float(np.corrcoef(s[:-1], s[1:])[0, 1])
    return np.column_stack([means, stds, peaks, autocorr])


class CohortAnalysisTemplate(SolutionTemplate):
    """Group assets into behaviour cohorts.

    Parameters
    ----------
    n_cohorts:
        Fixed cohort count, or ``None`` to select by silhouette over
        ``candidate_range``.
    """

    name = "Cohort Analysis (CA)"

    def __init__(
        self,
        n_cohorts: Optional[int] = None,
        candidate_range: Sequence[int] = (2, 3, 4, 5, 6),
        random_state: Optional[int] = 0,
    ):
        super().__init__()
        if n_cohorts is not None and n_cohorts < 1:
            raise ValueError("n_cohorts must be >= 1")
        self.n_cohorts = n_cohorts
        self.candidate_range = list(candidate_range)
        self.random_state = random_state
        self.scaler_: Optional[StandardScaler] = None
        self.model_: Optional[KMeans] = None
        self.labels_: Optional[np.ndarray] = None
        self.silhouette_: Optional[float] = None

    def fit(self, features: Any) -> "CohortAnalysisTemplate":
        """Cluster per-asset feature rows (see
        :func:`summarize_asset_series` for building them from raw
        series)."""
        X = as_2d_array(features)
        self.scaler_ = StandardScaler().fit(X)
        Xs = self.scaler_.transform(X)
        if self.n_cohorts is not None:
            k = self.n_cohorts
            self.model_ = KMeans(
                n_clusters=k, random_state=self.random_state
            ).fit(Xs)
            self.labels_ = self.model_.labels_
            self.silhouette_ = (
                silhouette_score(Xs, self.labels_) if k > 1 else 0.0
            )
        else:
            best = None
            for k in self.candidate_range:
                if not 2 <= k < len(X):
                    continue
                model = KMeans(
                    n_clusters=k, random_state=self.random_state
                ).fit(Xs)
                score = silhouette_score(Xs, model.labels_)
                if best is None or score > best[0]:
                    best = (score, k, model)
            if best is None:
                raise ValueError(
                    "no valid cohort count in candidate_range for "
                    f"{len(X)} assets"
                )
            self.silhouette_, k, self.model_ = best
            self.labels_ = self.model_.labels_
        sizes = {
            int(c): int((self.labels_ == c).sum())
            for c in np.unique(self.labels_)
        }
        self._report = TemplateReport(
            template=self.name,
            headline=(
                f"Grouped {len(X)} assets into "
                f"{len(sizes)} cohorts (silhouette "
                f"{self.silhouette_:.3f})."
            ),
            metrics={"silhouette": self.silhouette_},
            details={
                "cohort_sizes": sizes,
                "centers": self.scaler_.inverse_transform(
                    self.model_.cluster_centers_
                ).tolist(),
            },
            recommendations=[
                "Compare maintenance schedules across cohorts.",
                "Investigate small cohorts: they often contain misbehaving "
                "assets.",
            ],
        )
        return self

    def predict(self, features: Any) -> np.ndarray:
        """Cohort assignment for new assets."""
        if self.model_ is None:
            raise RuntimeError("template is not fitted yet")
        return self.model_.predict(self.scaler_.transform(features))
