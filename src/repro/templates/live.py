"""Live sensor-feed solution template.

The paper's industrial applications are *ongoing*: "The data are
monitored for changes.  When the amount of change in the data exceeds a
threshold, then analytics calculations are recalculated on the data"
(Section III), with the model-lifecycle caveat that "there may be
concept drifts".  This template packages that loop for a live sensor
feed (:func:`repro.datasets.industrial.make_sensor_series`): it frames
the stream as a lagged one-step-ahead forecasting problem, keeps a small
Transformer-Estimator Graph evaluated through a
:class:`~repro.streaming.StreamingEvaluator` (so each batch of new
readings recomputes only the invalidated frontier), and escalates to a
full cold sweep when the configured drift policy detects a regime
shift.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.core.graph import TransformerEstimatorGraph
from repro.distributed.change_monitor import DriftPolicy, UpdateCountPolicy
from repro.ml.linear import LinearRegression, RidgeRegression
from repro.ml.model_selection import AnchoredSlidingSplit
from repro.ml.preprocessing import NoOp, StandardScaler
from repro.streaming import StreamingEvaluator
from repro.templates.base import SolutionTemplate, TemplateReport

__all__ = ["LiveSensorTemplate"]


class LiveSensorTemplate(SolutionTemplate):
    """Keep a forecasting sweep fresh over a live sensor feed.

    Frames a multivariate sensor series as one-step-ahead forecasting of
    the primary variable from the last ``lag`` readings of every
    variable, sweeps scaling x {ridge, least squares} over anchored
    sliding folds, and reuses/warm-starts everything the newest readings
    did not invalidate.

    Parameters
    ----------
    lag:
        How many trailing readings (of every variable) form one feature
        row.
    initial_train_size:
        Training rows of the first anchored fold; later folds extend it.
    val_size:
        Validation rows per anchored fold (also the fold stride).
    drift_threshold:
        Column-mean shift (in baseline standard deviations) beyond which
        the drift policy fires and the next recompute goes cold.
        ``None`` disables drift escalation.
    ridge_alpha:
        Regularization strength of the ridge candidate.
    engine:
        Engine spec forwarded to the streaming evaluator.
    """

    name = "Live Sensor Feed"

    def __init__(
        self,
        lag: int = 8,
        initial_train_size: int = 120,
        val_size: int = 40,
        drift_threshold: Optional[float] = 1.0,
        ridge_alpha: float = 0.5,
        engine: Any = None,
    ):
        super().__init__()
        if lag < 1:
            raise ValueError("lag must be >= 1")
        self.lag = lag
        self.initial_train_size = initial_train_size
        self.val_size = val_size
        self.drift_threshold = drift_threshold
        self.ridge_alpha = ridge_alpha
        self.engine = engine
        self._series: Optional[np.ndarray] = None
        self.evaluator: Optional[StreamingEvaluator] = None

    # -- framing ---------------------------------------------------------
    def _frame(self, series: np.ndarray, start: int):
        """Lagged supervised pairs for targets ``start, ..., len - 1``:
        row t predicts ``series[t, 0]`` from ``series[t - lag:t]``."""
        X, y = [], []
        for t in range(max(start, self.lag), len(series)):
            X.append(series[t - self.lag : t].ravel())
            y.append(series[t, 0])
        if not X:
            n_features = self.lag * series.shape[1]
            return np.empty((0, n_features)), np.empty(0)
        return np.asarray(X), np.asarray(y)

    def _build_evaluator(self) -> StreamingEvaluator:
        graph = TransformerEstimatorGraph()
        graph.add_feature_scalers([StandardScaler(), NoOp()])
        graph.add_regression_models(
            [RidgeRegression(alpha=self.ridge_alpha), LinearRegression()]
        )
        cv = AnchoredSlidingSplit(
            val_size=self.val_size,
            initial_train_size=self.initial_train_size,
        )
        drift = (
            DriftPolicy(threshold=self.drift_threshold)
            if self.drift_threshold is not None
            else None
        )
        return StreamingEvaluator(
            graph,
            cv,
            metric="rmse",
            engine=self.engine,
            change_policy=UpdateCountPolicy(threshold=1),
            drift_policy=drift,
            object_name="sensor-feed",
        )

    # -- live loop -------------------------------------------------------
    def fit(self, series: Any) -> "LiveSensorTemplate":
        """Seed the template with the sensor history so far.

        ``series`` is a ``(length, n_variables)`` array as produced by
        :func:`repro.datasets.industrial.make_sensor_series`; it must be
        long enough for at least one anchored fold after lag framing.
        """
        series = np.asarray(series, dtype=float)
        if series.ndim != 2:
            raise ValueError("series must be 2-D (length, n_variables)")
        self._series = series.copy()
        self.evaluator = self._build_evaluator()
        X, y = self._frame(series, start=0)
        self.evaluator.seed(X, y)
        report = self.evaluator.evaluate()
        self._summarize(report)
        return self

    def ingest(self, new_rows: Any) -> TemplateReport:
        """Feed newly arrived sensor readings and refresh the sweep.

        Appends the lagged pairs the new readings complete, lets the
        streaming evaluator recompute only the invalidated frontier
        (cold-sweeping if drift fired), and returns the updated
        :class:`~repro.templates.base.TemplateReport`.
        """
        if self._series is None or self.evaluator is None:
            raise RuntimeError("template is not fitted yet; call fit() first")
        new_rows = np.asarray(new_rows, dtype=float)
        if new_rows.ndim != 2 or new_rows.shape[1] != self._series.shape[1]:
            raise ValueError(
                "new_rows must be 2-D with the same variable count as "
                "the fitted series"
            )
        previous_length = len(self._series)
        self._series = np.vstack([self._series, new_rows])
        X_new, y_new = self._frame(self._series, start=previous_length)
        if len(X_new):
            self.evaluator.append(X_new, y_new)
        report = self.evaluator.evaluate()
        self._summarize(report)
        return self._report

    def _summarize(self, report) -> None:
        streaming = report.stats["streaming"]
        drifted = streaming["drift_escalated"]
        recommendations = [
            "Keep feeding new readings through ingest(); only changed "
            "folds are recomputed.",
        ]
        if drifted:
            recommendations.insert(
                0,
                "Drift detected: the sweep was recomputed from scratch — "
                "inspect the process for a regime change.",
            )
        self._report = TemplateReport(
            template=self.name,
            headline=(
                f"Best forecaster: {report.best_path} "
                f"(rmse {report.best_score:.4f}); "
                f"{streaming['folds_reused']} fold(s) reused, "
                f"{streaming['folds_warm_started']} warm-started, "
                f"{streaming['folds_cold']} cold"
                + (" after drift escalation" if drifted else "")
                + "."
            ),
            metrics={
                "rmse": float(report.best_score),
                "folds_reused": float(streaming["folds_reused"]),
                "folds_warm_started": float(streaming["folds_warm_started"]),
                "folds_cold": float(streaming["folds_cold"]),
            },
            details={
                "best_path": report.best_path,
                "best_params": report.best_params,
                "n_rows": streaming["n_rows"],
                "data_version": streaming["data_version"],
                "drift_escalated": drifted,
            },
            recommendations=recommendations,
        )
