"""Anomaly Analysis solution template.

"This solution pattern builds a model to flag data as corresponding to a
normal operation mode or an anomalous mode" (paper Section IV-E).

Unsupervised: fit on (predominantly) normal operating data; score new
points by an ensemble of robust per-feature z-scores and distance to the
nearest k-means operating mode; the flagging threshold is the
``contamination`` quantile of training scores.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.ml.base import as_2d_array
from repro.ml.cluster.kmeans import KMeans
from repro.templates.base import SolutionTemplate, TemplateReport

__all__ = ["AnomalyAnalysisTemplate"]


class AnomalyAnalysisTemplate(SolutionTemplate):
    """Flag anomalous operating points.

    Parameters
    ----------
    contamination:
        Expected anomaly fraction; sets the score threshold at the
        ``1 - contamination`` training quantile.
    n_modes:
        Number of normal operating modes (k-means clusters) to model.
    """

    name = "Anomaly Analysis"

    def __init__(
        self,
        contamination: float = 0.02,
        n_modes: int = 3,
        random_state: Optional[int] = 0,
    ):
        super().__init__()
        if not 0.0 < contamination < 0.5:
            raise ValueError("contamination must be in (0, 0.5)")
        if n_modes < 1:
            raise ValueError("n_modes must be >= 1")
        self.contamination = contamination
        self.n_modes = n_modes
        self.random_state = random_state
        self.median_: Optional[np.ndarray] = None
        self.mad_: Optional[np.ndarray] = None
        self.modes_: Optional[KMeans] = None
        self.mode_scale_: Optional[float] = None
        self.threshold_: Optional[float] = None

    def fit(self, X: Any) -> "AnomalyAnalysisTemplate":
        """Learn the normal operating envelope from ``X``."""
        X = as_2d_array(X)
        self.median_ = np.median(X, axis=0)
        mad = np.median(np.abs(X - self.median_), axis=0)
        mad[mad == 0.0] = 1.0
        self.mad_ = mad
        n_modes = min(self.n_modes, len(X))
        self.modes_ = KMeans(
            n_clusters=n_modes, random_state=self.random_state
        ).fit(X)
        distances = self.modes_.transform(X).min(axis=1)
        scale = np.median(distances)
        self.mode_scale_ = float(scale) if scale > 0 else 1.0
        scores = self.score(X)
        self.threshold_ = float(
            np.quantile(scores, 1.0 - self.contamination)
        )
        flagged = float((scores > self.threshold_).mean())
        self._report = TemplateReport(
            template=self.name,
            headline=(
                f"Learned {n_modes} operating mode(s); threshold "
                f"{self.threshold_:.3f} flags {flagged:.1%} of training "
                "data as anomalous."
            ),
            metrics={
                "threshold": self.threshold_,
                "train_anomaly_rate": flagged,
            },
            details={"n_modes": n_modes},
            recommendations=[
                "Review flagged periods against maintenance logs.",
                "Refit after confirmed process changes to avoid stale "
                "envelopes.",
            ],
        )
        return self

    def _require_fitted(self) -> None:
        if self.threshold_ is None:
            raise RuntimeError("template is not fitted yet")

    def score(self, X: Any) -> np.ndarray:
        """Anomaly scores (higher = more anomalous): max of the robust
        z-score magnitude and the scaled distance to the nearest
        operating mode."""
        if self.median_ is None:
            raise RuntimeError("template is not fitted yet")
        X = as_2d_array(X)
        z = np.abs((X - self.median_) / (1.4826 * self.mad_)).max(axis=1)
        mode_distance = self.modes_.transform(X).min(axis=1) / self.mode_scale_
        return np.maximum(z, mode_distance)

    def predict(self, X: Any) -> np.ndarray:
        """1 for anomalous, 0 for normal."""
        self._require_fitted()
        return (self.score(X) > self.threshold_).astype(int)
