"""Root Cause Analysis (RCA) solution template.

"This solution pattern enables operators to get a better understanding
into the statistical reasons for favourable and unfavourable outcomes in
industrial processes" (paper Section IV-E).

The template realizes the paper's interpretability requirements
(Section II): *sensitivity analysis* ("how much contribution a factor is
making to the predicted value"), *root-cause analysis* ("what factors
contributed to the outcome"), *intervention* ("what factors, and by how
much, should I change to get a desired outcome") and *what-if analysis*
("what would have happened if this factor were not effective").

Two models back it: a standardized linear model for signed, unit-free
contributions, and a random forest for non-linear importance
corroboration.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.ml.base import as_1d_array, as_2d_array
from repro.ml.ensemble.random_forest import RandomForestRegressor
from repro.ml.linear.linear_regression import RidgeRegression
from repro.ml.metrics.regression import r2_score
from repro.ml.preprocessing.scalers import StandardScaler
from repro.templates.base import SolutionTemplate, TemplateReport

__all__ = ["RootCauseTemplate"]


class RootCauseTemplate(SolutionTemplate):
    """Explainable factor-to-outcome modeling.

    Parameters
    ----------
    factor_names:
        Names of the input factors (columns of X).
    actionable:
        Subset of factor names an operator can actually change;
        interventions are proposed only over these.
    """

    name = "Root Cause Analysis (RCA)"

    def __init__(
        self,
        factor_names: Sequence[str],
        actionable: Optional[Sequence[str]] = None,
        n_trees: int = 30,
        random_state: Optional[int] = 0,
    ):
        super().__init__()
        if not factor_names:
            raise ValueError("factor_names must be non-empty")
        self.factor_names = list(factor_names)
        self.actionable = (
            list(actionable) if actionable is not None else list(factor_names)
        )
        unknown = set(self.actionable) - set(self.factor_names)
        if unknown:
            raise ValueError(f"actionable factors not in factor_names: {unknown}")
        self.n_trees = n_trees
        self.random_state = random_state
        self.scaler_: Optional[StandardScaler] = None
        self.linear_: Optional[RidgeRegression] = None
        self.forest_: Optional[RandomForestRegressor] = None

    # -- fitting --------------------------------------------------------
    def fit(self, factors: Any, outcome: Any) -> "RootCauseTemplate":
        X = as_2d_array(factors)
        y = as_1d_array(outcome).astype(float)
        if X.shape[1] != len(self.factor_names):
            raise ValueError(
                f"X has {X.shape[1]} columns, expected "
                f"{len(self.factor_names)} factors"
            )
        self.scaler_ = StandardScaler().fit(X)
        Xs = self.scaler_.transform(X)
        self.linear_ = RidgeRegression(alpha=1e-3).fit(Xs, y)
        self.forest_ = RandomForestRegressor(
            n_estimators=self.n_trees, random_state=self.random_state
        ).fit(X, y)
        contributions = self.contributions()
        ranked = sorted(
            contributions.items(), key=lambda kv: abs(kv[1]), reverse=True
        )
        top_name, top_value = ranked[0]
        fit_quality = r2_score(y, self.linear_.predict(Xs))
        self._report = TemplateReport(
            template=self.name,
            headline=(
                f"Dominant factor: {top_name} (standardized contribution "
                f"{top_value:+.3f}); linear model R^2 = {fit_quality:.3f}."
            ),
            metrics={"linear_r2": fit_quality},
            details={
                "contributions": contributions,
                "forest_importances": dict(
                    zip(self.factor_names, self.forest_.feature_importances_)
                ),
            },
            recommendations=[
                f"Investigate {name} (contribution {value:+.3f})"
                for name, value in ranked[:3]
                if abs(value) > 1e-6
            ],
        )
        return self

    def _require_fitted(self) -> None:
        if self.linear_ is None:
            raise RuntimeError("template is not fitted yet")

    def _index(self, factor: str) -> int:
        try:
            return self.factor_names.index(factor)
        except ValueError:
            raise KeyError(
                f"unknown factor {factor!r}; factors: {self.factor_names}"
            ) from None

    # -- sensitivity / root cause ------------------------------------------
    def contributions(self) -> Dict[str, float]:
        """Standardized linear contributions: the outcome change (in
        outcome units) per +1 standard deviation of each factor.  Signed,
        comparable across factors — the paper's sensitivity analysis."""
        self._require_fitted()
        return dict(zip(self.factor_names, self.linear_.coef_))

    def root_causes(self, top: int = 3) -> List[str]:
        """Factor names ranked by combined evidence: the product rank of
        |linear contribution| and forest importance."""
        self._require_fitted()
        linear = np.abs(self.linear_.coef_)
        forest = self.forest_.feature_importances_
        linear_rank = np.argsort(np.argsort(-linear))
        forest_rank = np.argsort(np.argsort(-forest))
        combined = linear_rank + forest_rank
        order = np.argsort(combined)
        return [self.factor_names[i] for i in order[:top]]

    # -- intervention ----------------------------------------------------------
    def intervention(
        self, current: Any, desired_outcome: float
    ) -> Dict[str, float]:
        """Propose per-factor changes (raw units) to move from the
        predicted outcome at ``current`` to ``desired_outcome``.

        The gap is attributed to the single most effective *actionable*
        factor (largest |standardized contribution|); the return maps
        that factor to the raw-unit change required under the linear
        model.
        """
        self._require_fitted()
        current = np.asarray(current, dtype=float).reshape(1, -1)
        if current.shape[1] != len(self.factor_names):
            raise ValueError("current setting has wrong number of factors")
        predicted = float(
            self.linear_.predict(self.scaler_.transform(current))[0]
        )
        gap = desired_outcome - predicted
        candidates = [
            (abs(self.linear_.coef_[self._index(name)]), name)
            for name in self.actionable
        ]
        strength, factor = max(candidates)
        if strength < 1e-9:
            raise ValueError(
                "no actionable factor influences the outcome under the "
                "fitted model"
            )
        i = self._index(factor)
        std_change = gap / self.linear_.coef_[i]
        raw_change = std_change * self.scaler_.scale_[i]
        return {factor: float(raw_change)}

    # -- what-if -------------------------------------------------------------
    def what_if(self, factors: Any, overrides: Dict[str, float]) -> np.ndarray:
        """Counterfactual outcomes with some factors fixed.

        ``overrides`` maps factor names to the raw values to impose; the
        forest (non-linear) model predicts the counterfactual outcomes.
        """
        self._require_fitted()
        X = as_2d_array(factors).copy()
        if X.shape[1] != len(self.factor_names):
            raise ValueError("factors have wrong number of columns")
        for name, value in overrides.items():
            X[:, self._index(name)] = float(value)
        return self.forest_.predict(X)

    def predict(self, factors: Any) -> np.ndarray:
        """Forest predictions of the outcome."""
        self._require_fitted()
        return self.forest_.predict(as_2d_array(factors))
