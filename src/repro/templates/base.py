"""Solution-template base (paper Section IV-E).

"we have addressed this gap by providing industry specific solution
templates which solve commonly observed problems in that industry.  We
leverage the Transformer-Estimator graphs to build such industry specific
solution templates quickly."

A template is a thin, opinionated wrapper: sensible defaults, a one-call
``fit``, and a structured :class:`TemplateReport` a non-expert can read —
deliberately narrower than the general graph API ("in order to make a
framework or tool easier to use, it may be necessary to restrict it to
solving a narrower range of problems", Section II).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

__all__ = ["TemplateReport", "SolutionTemplate"]


@dataclass
class TemplateReport:
    """Human-oriented summary of a fitted template."""

    template: str
    headline: str
    metrics: Dict[str, float] = field(default_factory=dict)
    details: Dict[str, Any] = field(default_factory=dict)
    recommendations: List[str] = field(default_factory=list)

    def to_text(self) -> str:
        """Render as a plain-text report."""
        lines = [f"=== {self.template} ===", self.headline, ""]
        if self.metrics:
            lines.append("Metrics:")
            for name, value in sorted(self.metrics.items()):
                lines.append(f"  {name}: {value:.4f}")
        if self.recommendations:
            lines.append("Recommendations:")
            for item in self.recommendations:
                lines.append(f"  - {item}")
        return "\n".join(lines)


class SolutionTemplate:
    """Base class: subclasses implement ``fit`` and ``report``."""

    name = "solution-template"

    def __init__(self):
        self._report: TemplateReport = None  # set by fit

    def fit(self, *args, **kwargs) -> "SolutionTemplate":
        raise NotImplementedError

    def report(self) -> TemplateReport:
        """The report produced by the last ``fit``."""
        if self._report is None:
            raise RuntimeError(
                f"{type(self).__name__} is not fitted yet; call fit() first"
            )
        return self._report
