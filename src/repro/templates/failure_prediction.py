"""Failure Prediction Analysis (FPA) solution template.

"This solution pattern allows users to leverage historical sensor data
and failure logs to build machine learning models to predict imminent
failures" (paper Section IV-E).

Pipeline: imputation (sensor gaps are normal in the field) → a
classification Transformer-Estimator Graph (scalers x selectors x
classifiers) selected by F1 under stratified cross-validation (failures
are rare, so accuracy would be misleading and plain K-fold could produce
failure-free folds).
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.core.builders import prepare_classification_graph
from repro.core.evaluation import GraphEvaluator
from repro.ml.base import as_1d_array
from repro.ml.metrics.classification import (
    f1_score,
    precision_score,
    recall_score,
)
from repro.ml.model_selection.splits import StratifiedKFold
from repro.ml.preprocessing.imputers import SimpleImputer
from repro.templates.base import SolutionTemplate, TemplateReport

__all__ = ["FailurePredictionTemplate"]


class _StratifiedForLabels:
    """Adapter: a splitter bound to known labels, so the generic
    ``split(n)`` call used by cross_validate stratifies on them."""

    def __init__(self, y: np.ndarray, n_splits: int, random_state: Optional[int]):
        self._y = y
        self._splitter = StratifiedKFold(
            n_splits=n_splits, random_state=random_state
        )

    def get_n_splits(self, n_samples: Optional[int] = None) -> int:
        return self._splitter.n_splits

    def split(self, n_samples: int):
        if n_samples != len(self._y):
            raise ValueError(
                "stratified splitter bound to different-sized labels"
            )
        yield from self._splitter.split_labels(self._y)


class FailurePredictionTemplate(SolutionTemplate):
    """Predict imminent failures from sensor snapshots.

    Parameters
    ----------
    n_splits:
        Stratified CV folds used for model selection.
    fast:
        Smaller model budgets for tests/benchmarks.
    """

    name = "Failure Prediction Analysis (FPA)"

    def __init__(
        self,
        n_splits: int = 4,
        fast: bool = False,
        random_state: Optional[int] = 0,
    ):
        super().__init__()
        self.n_splits = n_splits
        self.fast = fast
        self.random_state = random_state
        self.imputer_: Optional[SimpleImputer] = None
        self.model_ = None
        self.best_path_: Optional[str] = None
        self.best_f1_: Optional[float] = None

    def fit(self, sensors: Any, failures: Any) -> "FailurePredictionTemplate":
        """Train on historical ``sensors`` (may contain NaN) and binary
        ``failures`` labels."""
        X = np.asarray(sensors, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        y = as_1d_array(failures)
        if set(np.unique(y)) - {0, 1}:
            raise ValueError("failure labels must be binary 0/1")
        if y.sum() == 0:
            raise ValueError("no failures in the training data")
        self.imputer_ = SimpleImputer(strategy="median").fit(X)
        X_clean = self.imputer_.transform(X)

        graph = prepare_classification_graph(
            k_best=min(10, X.shape[1]),
            random_state=self.random_state,
            fast=self.fast,
        )
        cv = _StratifiedForLabels(y, self.n_splits, self.random_state)
        evaluator = GraphEvaluator(graph, cv=cv, metric="f1-score")
        report = evaluator.evaluate(X_clean, y)
        self.model_ = report.best_model
        self.best_path_ = report.best_path
        self.best_f1_ = report.best_score

        predictions = self.model_.predict(X_clean)
        failure_rate = float(y.mean())
        self._report = TemplateReport(
            template=self.name,
            headline=(
                f"Selected {report.best_path} "
                f"(cross-validated F1 = {report.best_score:.3f}) for a "
                f"{failure_rate:.1%} failure rate."
            ),
            metrics={
                "cv_f1": report.best_score,
                "train_f1": f1_score(y, predictions),
                "train_precision": precision_score(y, predictions),
                "train_recall": recall_score(y, predictions),
                "failure_rate": failure_rate,
            },
            details={
                "best_path": report.best_path,
                "best_params": report.best_params,
                "n_pipelines_evaluated": len(report.results),
            },
            recommendations=[
                "Schedule inspection for assets the model flags as "
                "failure-imminent.",
                "Retrain when the sensor distribution drifts (see "
                "repro.distributed.change_monitor.DriftPolicy).",
            ],
        )
        return self

    def predict(self, sensors: Any) -> np.ndarray:
        """Binary imminent-failure predictions for new snapshots."""
        if self.model_ is None:
            raise RuntimeError("template is not fitted yet")
        X = np.asarray(sensors, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        return self.model_.predict(self.imputer_.transform(X))

    def predict_proba(self, sensors: Any) -> np.ndarray:
        """Failure probabilities for new snapshots."""
        if self.model_ is None:
            raise RuntimeError("template is not fitted yet")
        X = np.asarray(sensors, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        return self.model_.predict_proba(self.imputer_.transform(X))
