"""Domain-specific solution templates (paper Section IV-E)."""

from repro.templates.anomaly import AnomalyAnalysisTemplate
from repro.templates.base import SolutionTemplate, TemplateReport
from repro.templates.cohort import (
    CohortAnalysisTemplate,
    silhouette_score,
    summarize_asset_series,
)
from repro.templates.failure_prediction import FailurePredictionTemplate
from repro.templates.live import LiveSensorTemplate
from repro.templates.root_cause import RootCauseTemplate

__all__ = [
    "SolutionTemplate",
    "TemplateReport",
    "FailurePredictionTemplate",
    "RootCauseTemplate",
    "AnomalyAnalysisTemplate",
    "CohortAnalysisTemplate",
    "LiveSensorTemplate",
    "silhouette_score",
    "summarize_asset_series",
]
