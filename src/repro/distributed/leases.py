"""Lease-based push subscriptions (paper Section III).

"In a push paradigm, clients can subscribe to updates for data objects
from home data stores for a specified period of times.  Such
subscriptions have also been referred to as leases in the literature.
After a lease expires, the client must contact the home data store to
renew the lease to continue receiving update messages."

Three push modes, matching the paper's discussion:

* ``full`` — push the complete new value on every update.
* ``delta`` — push a delta from the subscriber's last-known version.
* ``notify`` — push only "information about the update ... such as the
  new version number and how much the new version differs from the
  previous one.  The client can then decide if and when it needs to
  obtain the latest version."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.distributed.cluster import SimulatedNetwork
from repro.distributed.datastore import (
    DeltaResponse,
    FullResponse,
    HomeDataStore,
)
from repro.distributed.delta import apply_delta, compute_delta
from repro.distributed.objects import VersionedObject

__all__ = ["PushMode", "Lease", "UpdateNotice", "LeaseManager"]

#: Valid push modes.
PushMode = ("full", "delta", "notify")

# Modeled wire size of a notify message: object name hash + version +
# change size (bytes).
_NOTIFY_SIZE = 24


@dataclass
class Lease:
    """A client subscription to one object's updates."""

    client: str
    object_name: str
    mode: str
    expires_at: float
    granted_at: float = 0.0
    renewals: int = 0
    cancelled: bool = False

    def active(self, now: float) -> bool:
        """True while the lease is neither cancelled nor expired."""
        return not self.cancelled and now < self.expires_at


@dataclass(frozen=True)
class UpdateNotice:
    """The notify-mode message body."""

    object_name: str
    new_version: int
    change_bytes: int


#: Client-side delivery callback:
#: ``(kind, object_name, version, payload_or_notice)`` where kind is one
#: of "full", "delta", "notify".
DeliveryCallback = Callable[[str, str, int, object], None]


class LeaseManager:
    """Manages leases for one home data store and pushes updates.

    Wire accounting goes through the :class:`SimulatedNetwork`; the
    subscriber's callback receives the decoded content.  Expired leases
    are skipped at push time (lazy expiry, as with classical leases).
    """

    def __init__(
        self,
        store: HomeDataStore,
        network: SimulatedNetwork,
        default_duration: float = 60.0,
    ):
        if default_duration <= 0:
            raise ValueError("default_duration must be positive")
        self.store = store
        self.network = network
        self.default_duration = default_duration
        self._leases: Dict[Tuple[str, str], Lease] = {}
        self._callbacks: Dict[str, DeliveryCallback] = {}
        # client -> {object_name: last version pushed}
        self._client_versions: Dict[str, Dict[str, int]] = {}
        self.stats = {
            "pushes_full": 0,
            "pushes_delta": 0,
            "pushes_notify": 0,
            "skipped_expired": 0,
        }
        store.add_listener(self._on_update)

    # -- subscription management -----------------------------------------
    def subscribe(
        self,
        client: str,
        object_name: str,
        callback: DeliveryCallback,
        mode: str = "delta",
        duration: Optional[float] = None,
    ) -> Lease:
        """Grant (or replace) a lease for ``client`` on ``object_name``."""
        if mode not in PushMode:
            raise ValueError(f"mode must be one of {PushMode}, got {mode!r}")
        now = self.network.clock.now
        lease = Lease(
            client=client,
            object_name=object_name,
            mode=mode,
            granted_at=now,
            expires_at=now + (duration or self.default_duration),
        )
        self._leases[(client, object_name)] = lease
        self._callbacks[client] = callback
        self._client_versions.setdefault(client, {})
        return lease

    def renew(
        self, client: str, object_name: str, duration: Optional[float] = None
    ) -> Lease:
        """Extend a lease from now ("the client must contact the home
        data store to renew the lease")."""
        lease = self._lease(client, object_name)
        now = self.network.clock.now
        lease.expires_at = now + (duration or self.default_duration)
        lease.cancelled = False
        lease.renewals += 1
        return lease

    def cancel(self, client: str, object_name: str) -> None:
        """Cancel early ("a client is also expected to cancel its leases
        early for data for which it no longer needs ... updates")."""
        self._lease(client, object_name).cancelled = True

    def _lease(self, client: str, object_name: str) -> Lease:
        try:
            return self._leases[(client, object_name)]
        except KeyError:
            raise KeyError(
                f"no lease for client {client!r} on object {object_name!r}"
            ) from None

    def active_leases(self, object_name: Optional[str] = None) -> List[Lease]:
        """Currently active leases, optionally for one object."""
        now = self.network.clock.now
        return [
            lease
            for lease in self._leases.values()
            if lease.active(now)
            and (object_name is None or lease.object_name == object_name)
        ]

    # -- push path ----------------------------------------------------------
    def _on_update(
        self,
        store: HomeDataStore,
        previous: Optional[VersionedObject],
        current: VersionedObject,
    ) -> None:
        now = self.network.clock.now
        for lease in list(self._leases.values()):
            if lease.object_name != current.name:
                continue
            if not lease.active(now):
                self.stats["skipped_expired"] += 1
                continue
            self._push(lease, previous, current)

    def _push(
        self,
        lease: Lease,
        previous: Optional[VersionedObject],
        current: VersionedObject,
    ) -> None:
        callback = self._callbacks[lease.client]
        versions = self._client_versions.setdefault(lease.client, {})
        if lease.mode == "notify":
            change = (
                compute_delta(
                    current.name,
                    previous.version,
                    current.version,
                    previous.data,
                    current.data,
                ).size
                if previous is not None
                else current.size
            )
            self.network.transfer(
                self.store.name, lease.client, _NOTIFY_SIZE, tag="push-notify"
            )
            self.stats["pushes_notify"] += 1
            callback(
                "notify",
                current.name,
                current.version,
                UpdateNotice(current.name, current.version, change),
            )
            return
        known = versions.get(lease.object_name)
        if lease.mode == "delta" and known is not None:
            response = self.store.get(current.name, client_version=known)
        else:
            response = self.store.get(current.name)
        if isinstance(response, DeltaResponse):
            self.network.transfer(
                self.store.name,
                lease.client,
                response.wire_size,
                tag="push-delta",
            )
            self.stats["pushes_delta"] += 1
            callback("delta", current.name, current.version, response.delta)
        else:
            self.network.transfer(
                self.store.name,
                lease.client,
                response.wire_size,
                tag="push-full",
            )
            self.stats["pushes_full"] += 1
            callback("full", current.name, current.version, response.obj)
        versions[lease.object_name] = current.version

    def record_client_version(
        self, client: str, object_name: str, version: int
    ) -> None:
        """Tell the manager what version a client already holds (e.g.
        after an initial pull), so delta pushes start from it."""
        self._client_versions.setdefault(client, {})[object_name] = version
