"""Replicated data stores with failover (paper Section III).

"The data may be replicated across multiple geographic areas for high
availability and disaster recovery in case one site fails."

A :class:`ReplicatedDataStore` fronts one primary :class:`HomeDataStore`
and N replicas.  Writes go to the primary and propagate to replicas
(synchronously or lazily); reads are served by the nearest *live* store
that satisfies the requested consistency level:

* ``"strong"`` — read the primary (fails when the primary is down and no
  replica has caught up to the primary's last acknowledged version).
* ``"monotonic"`` — read any replica whose version is >= the client's
  last seen version (session guarantee: a client never observes time
  going backwards).
* ``"eventual"`` — read any live replica.

Site failure and recovery are first-class (:meth:`fail_site`,
:meth:`recover_site`): a failed site serves nothing and misses
propagations until recovery, after which it synchronizes from the
primary — the disaster-recovery path.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.distributed.cluster import SimulatedNetwork
from repro.distributed.datastore import (
    DeltaResponse,
    FullResponse,
    HomeDataStore,
)

__all__ = ["SiteDownError", "ConsistencyError", "ReplicatedDataStore"]

CONSISTENCY_LEVELS = ("strong", "monotonic", "eventual")


class SiteDownError(RuntimeError):
    """Raised when no site can serve the request."""


class ConsistencyError(RuntimeError):
    """Raised when no live site satisfies the consistency level."""


class ReplicatedDataStore:
    """Primary/replica replication over home data stores.

    Parameters
    ----------
    primary:
        The authoritative store.
    replicas:
        Follower stores (already registered on the network).
    network:
        Shared simulated network; replication traffic is accounted on it.
    sync_replication:
        When True every ``put`` propagates to all live replicas before
        returning; when False replicas lag until :meth:`propagate` (or a
        read through this object triggers a lazy catch-up for strong
        reads).
    """

    def __init__(
        self,
        primary: HomeDataStore,
        replicas: List[HomeDataStore],
        network: SimulatedNetwork,
        sync_replication: bool = True,
    ):
        if not replicas:
            raise ValueError("need at least one replica for replication")
        names = [primary.name] + [r.name for r in replicas]
        if len(set(names)) != len(names):
            raise ValueError("store names must be unique")
        self.primary = primary
        self.replicas = list(replicas)
        self.network = network
        self.sync_replication = sync_replication
        self._alive: Dict[str, bool] = {name: True for name in names}
        # client session state for monotonic reads: client -> obj -> ver
        self._sessions: Dict[str, Dict[str, int]] = {}
        self.stats = {
            "writes": 0,
            "replications": 0,
            "failovers": 0,
            "recoveries": 0,
            "bytes_replicated": 0,
        }

    # -- site lifecycle -----------------------------------------------------
    def fail_site(self, name: str) -> None:
        """Take a site down (disaster)."""
        if name not in self._alive:
            raise KeyError(f"unknown site {name!r}")
        self._alive[name] = False

    def recover_site(self, name: str) -> None:
        """Bring a site back and synchronize it from the primary (or,
        if the primary is down, from the freshest live replica)."""
        if name not in self._alive:
            raise KeyError(f"unknown site {name!r}")
        self._alive[name] = True
        self.stats["recoveries"] += 1
        source = self._freshest_live_store(exclude=name)
        target = self._store(name)
        if source is None:
            return
        for object_name in source.object_names():
            self._copy_object(source, target, object_name)

    def alive(self, name: str) -> bool:
        """True while site ``name`` is up."""
        return self._alive.get(name, False)

    def live_stores(self) -> List[HomeDataStore]:
        """All currently live stores (primary first when alive)."""
        return [
            store
            for store in [self.primary] + self.replicas
            if self._alive[store.name]
        ]

    def _store(self, name: str) -> HomeDataStore:
        for store in [self.primary] + self.replicas:
            if store.name == name:
                return store
        raise KeyError(f"unknown site {name!r}")

    def _freshest_live_store(
        self, exclude: Optional[str] = None
    ) -> Optional[HomeDataStore]:
        candidates = [
            s for s in self.live_stores() if s.name != exclude
        ]
        if not candidates:
            return None

        def freshness(store: HomeDataStore) -> Tuple[int, int]:
            versions = [
                store.current_version(n) for n in store.object_names()
            ]
            return (len(versions), sum(versions))

        return max(candidates, key=freshness)

    # -- write path -----------------------------------------------------------
    def put(self, name: str, payload: Any) -> int:
        """Write through the primary; returns the new version.

        If the primary is down, the write fails over to the freshest
        live replica, which becomes the write target for this operation
        (a simple promote-on-write failover).
        """
        target = (
            self.primary
            if self._alive[self.primary.name]
            else self._freshest_live_store()
        )
        if target is None:
            raise SiteDownError("all sites are down")
        if target is not self.primary:
            self.stats["failovers"] += 1
        obj = target.put(name, payload)
        self.stats["writes"] += 1
        if self.sync_replication:
            self.propagate(name, source=target)
        return obj.version

    def _copy_object(
        self, source: HomeDataStore, target: HomeDataStore, object_name: str
    ) -> None:
        """Ship one object from source to target, delta-encoded when the
        target already holds a base version the source retains."""
        target_version: Optional[int] = None
        try:
            target_version = target.current_version(object_name)
        except KeyError:
            pass
        source_obj = source.current(object_name)
        if target_version is not None and target_version >= source_obj.version:
            return
        response = source.get(object_name, client_version=target_version)
        self.network.transfer(
            source.name, target.name, response.wire_size, tag="replication"
        )
        self.stats["bytes_replicated"] += response.wire_size
        self.stats["replications"] += 1
        # Re-materialize on the target with the authoritative bytes; the
        # target store assigns matching version numbers because it applies
        # the same sequence of puts.
        if isinstance(response, FullResponse):
            data = response.obj.data
        else:
            base = target.current(object_name)
            from repro.distributed.delta import apply_delta

            data = apply_delta(base.data, response.delta)
        from repro.distributed.objects import decode_payload

        # Fast-forward the target version counter to match the source.
        while True:
            try:
                current = target.current_version(object_name)
            except KeyError:
                current = 0
            if current >= source_obj.version:
                break
            target.put(object_name, decode_payload(data))

    def propagate(
        self, name: str, source: Optional[HomeDataStore] = None
    ) -> int:
        """Push the current version of ``name`` to every live replica;
        returns the number of replicas updated."""
        source = source or self.primary
        updated = 0
        for replica in [self.primary] + self.replicas:
            if replica is source or not self._alive[replica.name]:
                continue
            before = replica.current_version(name) if name in replica.object_names() else 0
            self._copy_object(source, replica, name)
            after = replica.current_version(name)
            if after > before:
                updated += 1
        return updated

    # -- read path --------------------------------------------------------------
    def read(
        self,
        client: str,
        object_name: str,
        consistency: str = "strong",
    ) -> Any:
        """Read ``object_name`` at the requested consistency level;
        returns the decoded payload and updates the client's session."""
        if consistency not in CONSISTENCY_LEVELS:
            raise ValueError(
                f"consistency must be one of {CONSISTENCY_LEVELS}, got "
                f"{consistency!r}"
            )
        session = self._sessions.setdefault(client, {})
        floor = session.get(object_name, 0)
        candidates = self._read_candidates(object_name, consistency, floor)
        if not candidates:
            if not self.live_stores():
                raise SiteDownError("all sites are down")
            raise ConsistencyError(
                f"no live site satisfies {consistency!r} for "
                f"{object_name!r} (client floor v{floor})"
            )
        store = candidates[0]
        obj = store.current(object_name)
        self.network.transfer(
            store.name, client, obj.size, tag="replicated-read"
        )
        session[object_name] = obj.version
        return obj.payload()

    def _read_candidates(
        self, object_name: str, consistency: str, floor: int
    ) -> List[HomeDataStore]:
        live = self.live_stores()
        if consistency == "strong":
            if self._alive[self.primary.name]:
                return [self.primary]
            # primary down: only a replica at the global max version works
            versions = {}
            for store in live:
                try:
                    versions[store.name] = store.current_version(object_name)
                except KeyError:
                    versions[store.name] = 0
            if not versions:
                return []
            top = max(versions.values())
            return [s for s in live if versions[s.name] == top and top >= floor]
        if consistency == "monotonic":
            out = []
            for store in live:
                try:
                    if store.current_version(object_name) >= floor:
                        out.append(store)
                except KeyError:
                    continue
            return out
        # eventual
        return [
            store
            for store in live
            if object_name in store.object_names()
        ]

    def version_at(self, site: str, object_name: str) -> int:
        """Version of ``object_name`` at ``site`` (0 if absent)."""
        store = self._store(site)
        try:
            return store.current_version(object_name)
        except KeyError:
            return 0
