"""Distributed substrate: simulated network, versioned stores, deltas,
leases, change monitoring, scheduling and AI web services (paper
Section III, Fig. 1)."""

from repro.distributed.change_monitor import (
    ApplicationPolicy,
    ChangeMonitor,
    ChangePolicy,
    CostAwarePolicy,
    DriftPolicy,
    UpdateCountPolicy,
    UpdateSizePolicy,
)
from repro.distributed.cluster import (
    NetworkLink,
    SimClock,
    SimulatedNetwork,
    TransferRecord,
)
from repro.distributed.datastore import (
    DeltaResponse,
    FullResponse,
    HomeDataStore,
)
from repro.distributed.delta import Delta, apply_delta, compute_delta
from repro.distributed.leases import Lease, LeaseManager, UpdateNotice
from repro.distributed.lifecycle import ModelLifecycleManager, ModelRecord
from repro.distributed.node import ClientNode, CloudAnalyticsServer, ComputeNode
from repro.distributed.objects import (
    VersionedObject,
    decode_payload,
    encode_payload,
)
from repro.distributed.replication import (
    ConsistencyError,
    ReplicatedDataStore,
    SiteDownError,
)
from repro.distributed.scheduler import (
    DistributedScheduler,
    NoHealthyNodes,
    ScheduleOutcome,
)
from repro.distributed.webservice import (
    AIWebService,
    AnomalyScoringService,
    ForecastService,
    ImputationService,
    ServiceResponse,
    WebServiceRegistry,
)

__all__ = [
    "SimClock",
    "NetworkLink",
    "SimulatedNetwork",
    "TransferRecord",
    "VersionedObject",
    "encode_payload",
    "decode_payload",
    "Delta",
    "compute_delta",
    "apply_delta",
    "HomeDataStore",
    "FullResponse",
    "DeltaResponse",
    "Lease",
    "LeaseManager",
    "UpdateNotice",
    "ChangePolicy",
    "UpdateCountPolicy",
    "UpdateSizePolicy",
    "ApplicationPolicy",
    "DriftPolicy",
    "CostAwarePolicy",
    "ChangeMonitor",
    "ComputeNode",
    "ClientNode",
    "CloudAnalyticsServer",
    "DistributedScheduler",
    "NoHealthyNodes",
    "ReplicatedDataStore",
    "SiteDownError",
    "ConsistencyError",
    "ModelLifecycleManager",
    "ModelRecord",
    "ScheduleOutcome",
    "AIWebService",
    "AnomalyScoringService",
    "ImputationService",
    "ForecastService",
    "ServiceResponse",
    "WebServiceRegistry",
]
