"""Client and cloud analytics nodes (paper Fig. 1).

"the client nodes ... can perform data analytics calculations remotely
from the cloud analytics servers.  That can reduce the latency since the
client will not have to communicate with remote cloud nodes ...  It also
allows the client to perform analytics calculations when it does not
have connectivity with the cloud."

Nodes execute evaluation jobs *for real* (the numerics run locally) while
the simulation attributes compute time scaled by each node's
``compute_speed`` and charges all data movement to the
:class:`~repro.distributed.cluster.SimulatedNetwork`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.distributed.cluster import SimulatedNetwork
from repro.distributed.datastore import (
    DeltaResponse,
    FullResponse,
    HomeDataStore,
)
from repro.distributed.delta import apply_delta
from repro.distributed.objects import VersionedObject, decode_payload

__all__ = ["ComputeNode", "ClientNode", "CloudAnalyticsServer"]

# Modeled wire size of a pull request (object name + version number).
_REQUEST_SIZE = 32


@dataclass
class JobExecution:
    """Record of one evaluation job run on a node."""

    key: str
    path: str
    real_seconds: float
    simulated_seconds: float


class ComputeNode:
    """Base node: cached versioned objects + job execution accounting.

    Parameters
    ----------
    name:
        Network identity; registered with ``network`` on construction.
    network:
        The shared simulated network.
    compute_speed:
        Relative speed; a job that takes ``t`` real seconds is modeled as
        ``t / compute_speed`` on this node.  "Crucial data may reside on
        nodes which do not have much computational power" — model those
        with speed < 1.
    connected:
        When False, remote pulls raise — exercising the paper's
        disconnected-operation scenario (the node can still compute on
        its cache).
    """

    def __init__(
        self,
        name: str,
        network: SimulatedNetwork,
        compute_speed: float = 1.0,
        connected: bool = True,
    ):
        if compute_speed <= 0:
            raise ValueError(
                f"compute_speed must be positive, got {compute_speed!r}"
            )
        self.name = name
        self.network = network
        self.compute_speed = compute_speed
        self.connected = connected
        network.register(name, self)
        self.cache: Dict[str, VersionedObject] = {}
        self.executions: list = []
        self.busy_seconds = 0.0
        #: Hook point for :class:`repro.faults.FaultInjector` (site
        #: ``node.execute_job``); ``None`` in production.
        self.fault_injector: Optional[Any] = None

    # -- data synchronization ---------------------------------------------
    def cached_version(self, object_name: str) -> Optional[int]:
        """Version of the cached copy (None when not cached)."""
        obj = self.cache.get(object_name)
        return None if obj is None else obj.version

    def pull(self, store: HomeDataStore, object_name: str) -> Any:
        """Pull the latest version from ``store`` (pull paradigm).

        Sends the held version number; receives and applies either a
        full copy or a delta.  Returns the decoded payload.
        """
        if not self.connected:
            raise ConnectionError(
                f"node {self.name!r} is disconnected from the cloud"
            )
        self.network.transfer(
            self.name, store.name, _REQUEST_SIZE, tag="pull-request"
        )
        response = store.get(object_name, self.cached_version(object_name))
        if isinstance(response, FullResponse):
            self.network.transfer(
                store.name, self.name, response.wire_size, tag="pull-full"
            )
            self.cache[object_name] = response.obj
        else:
            self.network.transfer(
                store.name, self.name, response.wire_size, tag="pull-delta"
            )
            self.apply_delta_update(object_name, response.delta)
        return self.payload(object_name)

    def apply_delta_update(self, object_name: str, delta) -> None:
        """Apply a delta push/pull against the cached base version."""
        if delta.base_version == delta.target_version:
            return  # up-to-date confirmation, nothing to apply
        base = self.cache.get(object_name)
        if base is None:
            raise KeyError(
                f"node {self.name!r} has no base version of "
                f"{object_name!r} to apply a delta to"
            )
        if base.version != delta.base_version:
            raise ValueError(
                f"delta base {delta.base_version} != cached version "
                f"{base.version}"
            )
        data = apply_delta(base.data, delta)
        self.cache[object_name] = VersionedObject(
            name=object_name,
            version=delta.target_version,
            data=data,
            timestamp=self.network.clock.now,
        )

    def accept_push(self, kind: str, object_name: str, version: int, body) -> None:
        """Lease-push delivery callback (see
        :class:`repro.distributed.leases.LeaseManager`)."""
        if kind == "full":
            self.cache[object_name] = body
        elif kind == "delta":
            self.apply_delta_update(object_name, body)
        # "notify" only informs; the node pulls later if it cares.

    def payload(self, object_name: str) -> Any:
        """Decode the cached payload of ``object_name``."""
        obj = self.cache.get(object_name)
        if obj is None:
            raise KeyError(
                f"node {self.name!r} holds no copy of {object_name!r}"
            )
        return decode_payload(obj.data)

    # -- computation ---------------------------------------------------------
    def execute_job(self, evaluator, job, X: Any, y: Any):
        """Run one evaluation job; returns its
        :class:`repro.core.evaluation.PipelineResult`.

        The numeric work is real; the modeled duration is
        ``real / compute_speed`` and is accumulated in
        ``busy_seconds`` for makespan computation.  An attached
        :class:`repro.faults.FaultInjector` may crash this node
        (:class:`repro.faults.NodeCrashed`), fail the attempt
        (:class:`repro.faults.TransientJobError`) or inflate the
        simulated duration (a slow-node fault); returns ``None`` when
        the evaluator's failure policy skipped the job.
        """
        slow = 1.0
        if self.fault_injector is not None:
            slow = self.fault_injector.check(
                "node.execute_job", node=self.name, key=job.key
            )
        result = evaluator.run_job(job, X, y)
        if result is None:
            return None
        real = result.cv_result.fit_seconds
        simulated = real * slow / self.compute_speed
        self.busy_seconds += simulated
        self.executions.append(
            JobExecution(
                key=job.key,
                path=job.path,
                real_seconds=real,
                simulated_seconds=simulated,
            )
        )
        return result


class ClientNode(ComputeNode):
    """A client at the edge (paper Fig. 1 left side).  Defaults to modest
    compute (speed 1.0)."""


class CloudAnalyticsServer(ComputeNode):
    """A cloud analytics VM: faster compute, typically co-located with
    the home data store and the DARR.  "the cloud virtual machines can be
    scaled as needed to handle the computations"."""

    def __init__(
        self,
        name: str,
        network: SimulatedNetwork,
        compute_speed: float = 4.0,
        connected: bool = True,
    ):
        super().__init__(name, network, compute_speed, connected)
