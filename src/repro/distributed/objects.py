"""Versioned data objects (paper Section III).

"Data are comprised of objects.  An object has a version number
associated with it.  Each time an object is updated, its version number
increases."

Payloads are arbitrary Python values (datasets, arrays, result records);
:func:`encode_payload` turns them into the canonical byte representation
that version history, delta encoding and bandwidth accounting all operate
on.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Any

__all__ = ["VersionedObject", "encode_payload", "decode_payload"]


def encode_payload(payload: Any) -> bytes:
    """Serialize a payload to bytes (pickle protocol 4).

    The byte form is the unit of storage and transfer in the simulation:
    object sizes, delta sizes and bandwidth savings are all measured on
    it.
    """
    return pickle.dumps(payload, protocol=4)


def decode_payload(data: bytes) -> Any:
    """Inverse of :func:`encode_payload`."""
    return pickle.loads(data)


@dataclass(frozen=True)
class VersionedObject:
    """One immutable version of a named data object.

    Attributes
    ----------
    name:
        Object identity; all versions of an object share it.
    version:
        Monotonically increasing, starting at 1.
    data:
        Canonical byte representation of the payload.
    timestamp:
        Simulated time at which this version was written.
    """

    name: str
    version: int
    data: bytes
    timestamp: float = 0.0

    def __post_init__(self):
        if not self.name:
            raise ValueError("object name must be non-empty")
        if self.version < 1:
            raise ValueError("versions start at 1")

    @property
    def size(self) -> int:
        """Payload size in bytes."""
        return len(self.data)

    def payload(self) -> Any:
        """Decode and return the stored value."""
        return decode_payload(self.data)

    def __repr__(self) -> str:
        return (
            f"VersionedObject(name={self.name!r}, version={self.version}, "
            f"size={self.size})"
        )
