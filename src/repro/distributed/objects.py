"""Versioned data objects (paper Section III).

"Data are comprised of objects.  An object has a version number
associated with it.  Each time an object is updated, its version number
increases."

Payloads are arbitrary Python values (datasets, arrays, result records);
:func:`encode_payload` turns them into the canonical byte representation
that version history, delta encoding and bandwidth accounting all operate
on.
"""

from __future__ import annotations

import pickle
import struct
from dataclasses import dataclass
from typing import Any, List

__all__ = ["VersionedObject", "encode_payload", "decode_payload"]

#: Frame magic for the protocol-5 out-of-band encoding.  Protocol-4
#: pickles can never start with these bytes (pickle streams begin with
#: the PROTO opcode ``\x80``), so :func:`decode_payload` distinguishes
#: the two formats unambiguously.
_P5_MAGIC = b"RP5\x00"
_LEN = struct.Struct(">Q")


def encode_payload(payload: Any) -> bytes:
    """Serialize a payload to bytes (pickle protocol 5, out-of-band).

    The byte form is the unit of storage and transfer in the simulation:
    object sizes, delta sizes and bandwidth savings are all measured on
    it.

    Large buffer-providing objects (ndarrays) are carried *out of band*
    via :class:`pickle.PickleBuffer` callbacks rather than copied into
    the pickle stream, then framed after it: magic, pickle length,
    pickle body, buffer count, then each buffer length-prefixed.  A
    payload producing no out-of-band buffers is emitted as a plain
    protocol-4-compatible pickle, and :func:`decode_payload` still
    accepts protocol-4 bytes already on disk, so old dumps load
    unchanged.
    """
    buffers: List[pickle.PickleBuffer] = []
    body = pickle.dumps(payload, protocol=5, buffer_callback=buffers.append)
    if not buffers:
        return body
    chunks = [_P5_MAGIC, _LEN.pack(len(body)), body, _LEN.pack(len(buffers))]
    for buffer in buffers:
        raw = buffer.raw()
        chunks.append(_LEN.pack(raw.nbytes))
        chunks.append(bytes(raw))
        buffer.release()
    return b"".join(chunks)


def decode_payload(data: bytes) -> Any:
    """Inverse of :func:`encode_payload`.

    Accepts both the framed protocol-5 format and bare pickle bytes
    (protocol 4 and earlier) for backward compatibility.  Out-of-band
    buffers are rehydrated as writable copies, so decoded arrays behave
    exactly like their protocol-4 counterparts.
    """
    if not data.startswith(_P5_MAGIC):
        return pickle.loads(data)
    offset = len(_P5_MAGIC)
    (body_len,) = _LEN.unpack_from(data, offset)
    offset += _LEN.size
    body = data[offset : offset + body_len]
    offset += body_len
    (n_buffers,) = _LEN.unpack_from(data, offset)
    offset += _LEN.size
    buffers: List[bytearray] = []
    for _ in range(n_buffers):
        (buf_len,) = _LEN.unpack_from(data, offset)
        offset += _LEN.size
        buffers.append(bytearray(data[offset : offset + buf_len]))
        offset += buf_len
    return pickle.loads(body, buffers=buffers)


@dataclass(frozen=True)
class VersionedObject:
    """One immutable version of a named data object.

    Attributes
    ----------
    name:
        Object identity; all versions of an object share it.
    version:
        Monotonically increasing, starting at 1.
    data:
        Canonical byte representation of the payload.
    timestamp:
        Simulated time at which this version was written.
    """

    name: str
    version: int
    data: bytes
    timestamp: float = 0.0

    def __post_init__(self):
        if not self.name:
            raise ValueError("object name must be non-empty")
        if self.version < 1:
            raise ValueError("versions start at 1")

    @property
    def size(self) -> int:
        """Payload size in bytes."""
        return len(self.data)

    def payload(self) -> Any:
        """Decode and return the stored value."""
        return decode_payload(self.data)

    def __repr__(self) -> str:
        return (
            f"VersionedObject(name={self.name!r}, version={self.version}, "
            f"size={self.size})"
        )
