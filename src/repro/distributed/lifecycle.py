"""Model lifecycle management (paper Section II).

"managing model life-cycles in which data analytics and machine learning
are performed over a long period of time.  Availability of more data may
require the model to be retrained or even changed.  The frequency of
retraining (or changing) models needs to be properly selected."

:class:`ModelLifecycleManager` couples a change policy to a
Transformer-Estimator Graph: every data update feeds the policy; when it
fires, the graph is re-evaluated on the current data and the winning
model becomes the *active* model.  Every trained model is archived as a
versioned object in a :class:`~repro.distributed.datastore.HomeDataStore`
so other nodes can pull current or historical models, and the manager
records accuracy before/after each retrain — the staleness-vs-overhead
evidence Section II calls for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

import numpy as np

from repro.core.evaluation import GraphEvaluator
from repro.distributed.change_monitor import ChangeMonitor, ChangePolicy
from repro.distributed.datastore import HomeDataStore

__all__ = ["ModelRecord", "ModelLifecycleManager"]


@dataclass
class ModelRecord:
    """One generation of the managed model."""

    generation: int
    best_path: str
    best_score: float
    metric: str
    trained_at_update: int
    store_version: Optional[int] = None


class ModelLifecycleManager:
    """Keep a graph-selected model fresh under a change policy.

    Parameters
    ----------
    evaluator:
        The graph evaluator used for every (re)training.
    policy:
        When to retrain (count / size / application / drift policy).
    model_store:
        Optional home data store archiving each generation under
        ``model_name`` (versions = generations).
    model_name:
        Object name used in the store.
    """

    def __init__(
        self,
        evaluator: GraphEvaluator,
        policy: ChangePolicy,
        model_store: Optional[HomeDataStore] = None,
        model_name: str = "model",
    ):
        self.evaluator = evaluator
        self.model_store = model_store
        self.model_name = model_name
        self.monitor = ChangeMonitor(policy)
        self.active_model: Optional[Any] = None
        self.history: List[ModelRecord] = []
        self._X: Optional[np.ndarray] = None
        self._y: Optional[np.ndarray] = None

    # -- lifecycle ---------------------------------------------------------
    def initialize(self, X: Any, y: Any) -> ModelRecord:
        """Train the first generation on the initial data."""
        self._X = np.asarray(X)
        self._y = np.asarray(y)
        # Seed the policy with the baseline (not counted as an update);
        # drift-style policies need the initial distribution to compare
        # against.
        self.monitor.policy.seed(self._X)
        return self._retrain()

    def observe_update(self, X: Any, y: Any, size: int = 0) -> bool:
        """Feed the current (already-updated) dataset; retrains when the
        policy fires.  Returns True if a retrain happened."""
        if self.active_model is None:
            raise RuntimeError("call initialize() before observe_update()")
        old = self._X
        self._X = np.asarray(X)
        self._y = np.asarray(y)
        fired = self.monitor.record_update(old=old, new=self._X, size=size)
        if fired:
            self._retrain()
        return fired

    def _retrain(self) -> ModelRecord:
        report = self.evaluator.evaluate(self._X, self._y)
        if report.best_model is None:
            raise RuntimeError("graph evaluation produced no model")
        self.active_model = report.best_model
        record = ModelRecord(
            generation=len(self.history) + 1,
            best_path=report.best_path,
            best_score=report.best_score,
            metric=report.metric,
            trained_at_update=self.monitor.updates_seen,
        )
        if self.model_store is not None:
            obj = self.model_store.put(self.model_name, self.active_model)
            record.store_version = obj.version
        self.history.append(record)
        return record

    # -- serving --------------------------------------------------------------
    def predict(self, X: Any) -> np.ndarray:
        """Predict with the active generation."""
        if self.active_model is None:
            raise RuntimeError("no active model; call initialize() first")
        return self.active_model.predict(X)

    def current_record(self) -> ModelRecord:
        """Record of the active (latest) generation."""
        if not self.history:
            raise RuntimeError("no model has been trained yet")
        return self.history[-1]

    @property
    def generations(self) -> int:
        """How many generations have been trained so far."""
        return len(self.history)

    def score_trajectory(self) -> List[float]:
        """Best cross-validated score per generation (did retraining pay
        off?)."""
        return [record.best_score for record in self.history]
