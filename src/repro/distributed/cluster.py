"""Simulated network and clock for the distributed system (paper Fig. 1).

The paper's architecture spans geographically distributed clients, cloud
analytics servers and web services.  Real sockets would add nothing to
the protocol behaviour the paper claims (bytes saved by deltas,
calculations avoided through the DARR, staleness under leases), so the
substrate here is a discrete simulation:

* :class:`SimClock` — virtual time all components share.
* :class:`NetworkLink` — latency + bandwidth between two named nodes.
* :class:`SimulatedNetwork` — registry of nodes and links with exact
  per-link byte/message/latency accounting; every transfer advances the
  clock and is recorded for the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["SimClock", "NetworkLink", "TransferRecord", "SimulatedNetwork"]


class SimClock:
    """Monotonic virtual clock (seconds)."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; returns the new time."""
        if seconds < 0:
            raise ValueError("time cannot go backwards")
        self._now += seconds
        return self._now


@dataclass
class NetworkLink:
    """Point-to-point link properties.

    ``latency_s`` is the one-way propagation delay; ``bandwidth_bps`` the
    sustained throughput in bytes/second.
    """

    latency_s: float = 0.01
    bandwidth_bps: float = 10e6

    def transfer_time(self, n_bytes: int) -> float:
        """Seconds to move ``n_bytes`` across this link."""
        if n_bytes < 0:
            raise ValueError("n_bytes must be >= 0")
        return self.latency_s + n_bytes / self.bandwidth_bps


@dataclass(frozen=True)
class TransferRecord:
    """One completed transfer, for the accounting ledger."""

    src: str
    dst: str
    n_bytes: int
    seconds: float
    timestamp: float
    tag: str = ""


class SimulatedNetwork:
    """Nodes + links + a shared clock + a transfer ledger.

    Links default to :attr:`default_link` unless configured per pair;
    links are symmetric (the same properties both ways) but accounted
    directionally.
    """

    def __init__(
        self,
        clock: Optional[SimClock] = None,
        default_link: Optional[NetworkLink] = None,
    ):
        self.clock = clock or SimClock()
        self.default_link = default_link or NetworkLink()
        self._nodes: Dict[str, object] = {}
        self._links: Dict[Tuple[str, str], NetworkLink] = {}
        self._partitioned: set = set()
        self.transfers: List[TransferRecord] = []

    # -- topology -------------------------------------------------------
    def register(self, name: str, node: object = None) -> None:
        """Register a node name (optionally with its object)."""
        if not name:
            raise ValueError("node name must be non-empty")
        if name in self._nodes:
            raise ValueError(f"node {name!r} already registered")
        self._nodes[name] = node

    def node(self, name: str) -> object:
        """The object registered under ``name``."""
        return self._nodes[name]

    @property
    def node_names(self) -> List[str]:
        """Sorted names of all registered nodes."""
        return sorted(self._nodes)

    def set_link(self, a: str, b: str, link: NetworkLink) -> None:
        """Configure the (symmetric) link between ``a`` and ``b``."""
        self._require(a)
        self._require(b)
        key = (min(a, b), max(a, b))
        self._links[key] = link

    def link(self, a: str, b: str) -> NetworkLink:
        """The link properties between ``a`` and ``b``."""
        key = (min(a, b), max(a, b))
        return self._links.get(key, self.default_link)

    def _require(self, name: str) -> None:
        if name not in self._nodes:
            raise KeyError(
                f"unknown node {name!r}; registered: {self.node_names}"
            )

    # -- partitions -------------------------------------------------------
    def partition(self, a: str, b: str) -> None:
        """Cut connectivity between ``a`` and ``b`` (both directions) —
        the paper's poor-connectivity scenario.  Transfers across a
        partitioned pair raise ``ConnectionError``."""
        self._require(a)
        self._require(b)
        self._partitioned.add((min(a, b), max(a, b)))

    def heal(self, a: str, b: str) -> None:
        """Restore connectivity between ``a`` and ``b``."""
        self._partitioned.discard((min(a, b), max(a, b)))

    def reachable(self, a: str, b: str) -> bool:
        """True if a direct transfer between ``a`` and ``b`` succeeds."""
        self._require(a)
        self._require(b)
        return (min(a, b), max(a, b)) not in self._partitioned

    # -- transfers -------------------------------------------------------
    def transfer(
        self, src: str, dst: str, n_bytes: int, tag: str = ""
    ) -> float:
        """Account a transfer of ``n_bytes`` from ``src`` to ``dst``;
        advances the clock and returns the transfer time in (simulated)
        seconds.  Local transfers (src == dst) are free and instant;
        partitioned pairs raise ``ConnectionError``."""
        self._require(src)
        self._require(dst)
        if src == dst:
            return 0.0
        if not self.reachable(src, dst):
            raise ConnectionError(
                f"network partition between {src!r} and {dst!r}"
            )
        seconds = self.link(src, dst).transfer_time(n_bytes)
        self.clock.advance(seconds)
        self.transfers.append(
            TransferRecord(
                src=src,
                dst=dst,
                n_bytes=n_bytes,
                seconds=seconds,
                timestamp=self.clock.now,
                tag=tag,
            )
        )
        return seconds

    # -- accounting -------------------------------------------------------
    def total_bytes(self, tag: Optional[str] = None) -> int:
        """Total bytes transferred, optionally filtered by tag."""
        return sum(
            record.n_bytes
            for record in self.transfers
            if tag is None or record.tag == tag
        )

    def total_messages(self, tag: Optional[str] = None) -> int:
        """Transfer count, optionally filtered by tag."""
        return sum(
            1
            for record in self.transfers
            if tag is None or record.tag == tag
        )

    def total_seconds(self, tag: Optional[str] = None) -> float:
        """Total transfer time, optionally filtered by tag."""
        return sum(
            record.seconds
            for record in self.transfers
            if tag is None or record.tag == tag
        )

    def reset_accounting(self) -> None:
        """Clear the ledger (keeps topology and clock)."""
        self.transfers.clear()
