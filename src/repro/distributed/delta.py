"""Binary delta encoding between object versions (paper Section III).

"d(o1, 2, 3) represents a delta between version 2 and version 3 of object
o1.  This delta may be considerably smaller than version 3 of o1.  If
this is the case, then sending d(o1, 2, 3) to a node which already has
version 2 of o1 will save considerable bandwidth over sending the entire
copy of o1."

The encoder is an rsync-style block matcher: the old bytes are indexed by
fixed-size block hash; the new bytes are scanned and emitted as COPY
(offset, length) runs against the old version wherever whole blocks
match, with literal INSERT runs in between.  Adjacent copies coalesce, so
an update that touches a small region of a large object yields a delta
close to the touched-region size.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Tuple, Union

__all__ = ["Delta", "compute_delta", "apply_delta", "DEFAULT_BLOCK_SIZE"]

DEFAULT_BLOCK_SIZE = 64

_COPY = 0
_INSERT = 1

# op encodings: COPY -> marker + offset + length (uint32 each);
# INSERT -> marker + length + raw bytes
_COPY_OVERHEAD = 1 + 4 + 4
_INSERT_OVERHEAD = 1 + 4

Op = Union[Tuple[int, int, int], Tuple[int, bytes]]


@dataclass(frozen=True)
class Delta:
    """An encoded delta ``d(name, base_version, target_version)``."""

    name: str
    base_version: int
    target_version: int
    ops: Tuple[Op, ...]
    target_size: int

    @property
    def size(self) -> int:
        """Wire size in bytes (ops + literals), the quantity compared
        against the full object size when the home store decides what to
        send."""
        total = 0
        for op in self.ops:
            if op[0] == _COPY:
                total += _COPY_OVERHEAD
            else:
                total += _INSERT_OVERHEAD + len(op[1])
        return total

    def to_bytes(self) -> bytes:
        """Flat wire encoding (used to measure and to ship deltas)."""
        chunks: List[bytes] = []
        for op in self.ops:
            if op[0] == _COPY:
                chunks.append(struct.pack("<BII", _COPY, op[1], op[2]))
            else:
                chunks.append(struct.pack("<BI", _INSERT, len(op[1])))
                chunks.append(op[1])
        return b"".join(chunks)

    @property
    def compression_ratio(self) -> float:
        """delta bytes / full target bytes (lower is better)."""
        if self.target_size == 0:
            return 1.0
        return self.size / self.target_size


def compute_delta(
    name: str,
    base_version: int,
    target_version: int,
    old: bytes,
    new: bytes,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> Delta:
    """Encode ``new`` relative to ``old``.

    Complexity is O(len(old) + len(new)) expected: old is indexed once;
    new is scanned once with constant-time block lookups.
    """
    if block_size < 8:
        raise ValueError("block_size must be >= 8")
    index: Dict[bytes, int] = {}
    for offset in range(0, max(len(old) - block_size + 1, 0), block_size):
        # first-wins keeps offsets deterministic
        index.setdefault(old[offset : offset + block_size], offset)

    ops: List[Op] = []
    literal = bytearray()

    def flush_literal() -> None:
        if literal:
            ops.append((_INSERT, bytes(literal)))
            literal.clear()

    position = 0
    n = len(new)
    while position < n:
        block = new[position : position + block_size]
        match = index.get(block) if len(block) == block_size else None
        if match is None:
            literal.append(new[position])
            position += 1
            continue
        # Extend the match greedily past the block boundary.
        length = block_size
        while (
            position + length < n
            and match + length < len(old)
            and new[position + length] == old[match + length]
        ):
            length += 1
        flush_literal()
        if ops and ops[-1][0] == _COPY:
            prev_offset, prev_len = ops[-1][1], ops[-1][2]
            if prev_offset + prev_len == match:
                ops[-1] = (_COPY, prev_offset, prev_len + length)
                position += length
                continue
        ops.append((_COPY, match, length))
        position += length
    flush_literal()
    return Delta(
        name=name,
        base_version=base_version,
        target_version=target_version,
        ops=tuple(ops),
        target_size=len(new),
    )


def apply_delta(old: bytes, delta: Delta) -> bytes:
    """Reconstruct the target bytes from ``old`` and ``delta``."""
    out = bytearray()
    for op in delta.ops:
        if op[0] == _COPY:
            _, offset, length = op
            if offset + length > len(old):
                raise ValueError(
                    f"copy op ({offset}, {length}) exceeds base size "
                    f"{len(old)}; wrong base version?"
                )
            out += old[offset : offset + length]
        else:
            out += op[1]
    if len(out) != delta.target_size:
        raise ValueError(
            f"reconstructed {len(out)} bytes, expected {delta.target_size}"
        )
    return bytes(out)
