"""Simulated AI web services (paper Fig. 1, Section III).

"Figure 1 depicts multiple AI Web services ... such as IBM Watson,
Microsoft Azure Cognitive Services, Amazon Machine Learning on AWS, and
Google Cloud AI products.  These Web services complement the machine
learning capabilities at the clients and cloud analytics servers ...
While some of them are offered for free, getting premium service
typically requires paying money."

The real services are proprietary HTTP endpoints; here each service is
an in-process object with request/response accounting (latency via the
simulated network, per-call cost, free-tier quota) exposing a small
analytics capability built on :mod:`repro.ml` — exactly the integration
path a client would exercise against the real thing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

import numpy as np

from repro.distributed.cluster import SimulatedNetwork
from repro.distributed.objects import encode_payload

__all__ = [
    "ServiceResponse",
    "AIWebService",
    "AnomalyScoringService",
    "ImputationService",
    "ForecastService",
    "WebServiceRegistry",
]


@dataclass(frozen=True)
class ServiceResponse:
    """One web-service reply with its billing record."""

    result: Any
    cost: float
    latency_seconds: float
    billed: bool


class AIWebService:
    """Base simulated service.

    Parameters
    ----------
    name:
        Network identity of the service endpoint.
    network:
        Shared simulated network (transfers are accounted against it).
    cost_per_call:
        Price of one premium call.
    free_calls:
        Free-tier quota; calls beyond it are billed.
    """

    def __init__(
        self,
        name: str,
        network: SimulatedNetwork,
        cost_per_call: float = 0.01,
        free_calls: int = 10,
    ):
        if cost_per_call < 0:
            raise ValueError("cost_per_call must be >= 0")
        if free_calls < 0:
            raise ValueError("free_calls must be >= 0")
        self.name = name
        self.network = network
        self.cost_per_call = cost_per_call
        self.free_calls = free_calls
        network.register(name, self)
        self.calls = 0
        self.total_billed = 0.0

    def _operate(self, payload: Any) -> Any:
        raise NotImplementedError

    def call(self, caller: str, payload: Any) -> ServiceResponse:
        """Invoke the service from node ``caller``.

        Request and response bytes go through the network; billing
        applies after the free tier.
        """
        request = encode_payload(payload)
        out_seconds = self.network.transfer(
            caller, self.name, len(request), tag="webservice-request"
        )
        result = self._operate(payload)
        response = encode_payload(result)
        back_seconds = self.network.transfer(
            self.name, caller, len(response), tag="webservice-response"
        )
        self.calls += 1
        billed = self.calls > self.free_calls
        cost = self.cost_per_call if billed else 0.0
        self.total_billed += cost
        return ServiceResponse(
            result=result,
            cost=cost,
            latency_seconds=out_seconds + back_seconds,
            billed=billed,
        )


class AnomalyScoringService(AIWebService):
    """Scores rows by robust z-score magnitude (an "anomaly detection as
    a service" capability)."""

    def _operate(self, payload: Any) -> np.ndarray:
        X = np.asarray(payload, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        median = np.median(X, axis=0)
        mad = np.median(np.abs(X - median), axis=0)
        mad[mad == 0.0] = 1.0
        return np.abs((X - median) / (1.4826 * mad)).max(axis=1)


class ImputationService(AIWebService):
    """Fills NaNs with per-column medians (imputation as a service)."""

    def _operate(self, payload: Any) -> np.ndarray:
        from repro.ml.preprocessing.imputers import SimpleImputer

        X = np.asarray(payload, dtype=float)
        return SimpleImputer(strategy="median").fit(X).transform(X)


class ForecastService(AIWebService):
    """One-step-ahead univariate forecast via an AR model (forecasting
    as a service)."""

    def __init__(
        self,
        name: str,
        network: SimulatedNetwork,
        cost_per_call: float = 0.01,
        free_calls: int = 10,
        order: int = 5,
    ):
        super().__init__(name, network, cost_per_call, free_calls)
        if order < 1:
            raise ValueError("order must be >= 1")
        self.order = order

    def _operate(self, payload: Any) -> float:
        from repro.timeseries.forecast import make_supervised
        from repro.timeseries.models import ARModel

        series = np.asarray(payload, dtype=float).ravel()
        history = min(self.order * 2, len(series) - 1)
        X, y = make_supervised(series, history=history)
        model = ARModel(order=self.order).fit(X, y)
        last_window = series[-history:].reshape(1, history, 1)
        return float(model.predict(last_window)[0])


class WebServiceRegistry:
    """Directory of available services, looked up by capability.

    "It is important for data scientists to be aware of the latest tools
    and techniques so that they can properly take advantage of them."
    """

    def __init__(self):
        self._services: Dict[str, AIWebService] = {}

    def register(self, capability: str, service: AIWebService) -> None:
        """Register ``service`` under a capability name."""
        if capability in self._services:
            raise ValueError(f"capability {capability!r} already registered")
        self._services[capability] = service

    def lookup(self, capability: str) -> AIWebService:
        """The service registered for ``capability``."""
        try:
            return self._services[capability]
        except KeyError:
            raise KeyError(
                f"no service for capability {capability!r}; available: "
                f"{self.capabilities()}"
            ) from None

    def capabilities(self) -> List[str]:
        """Sorted names of registered capabilities."""
        return sorted(self._services)

    def total_billed(self) -> float:
        """Total premium charges across all registered services."""
        return sum(s.total_billed for s in self._services.values())
