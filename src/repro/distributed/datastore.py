"""Home data stores with version history and delta serving.

Paper Section III: "Each data object has an associated home data store
which contains the current version of an object and its version number.
The home data store can send complete versions of an object o1 to other
nodes.  Alternatively, it uses delta encoding to send deltas between a
previous version of an object and the latest version."

"Suppose the latest version of o1 is k.  The home data store maintains
recent versions of o1 as well as deltas between the latest version of o1
and these recent versions, d(o1, k-1, k), d(o1, k-2, k), d(o1, k-3, k)...
When a remote node n1 requests the latest version of o1 ... and n1 has an
earlier version e of o1, n1 passes the version number, e, to the home
data store.  If the home data store has a delta between version k and
version e of o1 and that delta is considerably smaller than version k of
o1, the home data store passes the delta to n1.  Otherwise, the home data
store passes version k (i.e. the latest version)."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Union

from repro.distributed.delta import Delta, compute_delta
from repro.distributed.objects import VersionedObject, encode_payload

__all__ = ["FullResponse", "DeltaResponse", "HomeDataStore"]


@dataclass(frozen=True)
class FullResponse:
    """A complete copy of the latest version."""

    obj: VersionedObject

    @property
    def wire_size(self) -> int:
        """Bytes this response puts on the wire."""
        return self.obj.size

    @property
    def version(self) -> int:
        """Version the receiver ends up holding."""
        return self.obj.version


@dataclass(frozen=True)
class DeltaResponse:
    """A delta from the client's version to the latest."""

    delta: Delta

    @property
    def wire_size(self) -> int:
        """Bytes this response puts on the wire."""
        return self.delta.size

    @property
    def version(self) -> int:
        """Version the receiver ends up holding."""
        return self.delta.target_version


Response = Union[FullResponse, DeltaResponse]

#: Callback signature for update subscribers (the lease manager):
#: ``(store, old: Optional[VersionedObject], new: VersionedObject)``.
UpdateListener = Callable[["HomeDataStore", Optional[VersionedObject], VersionedObject], None]


class HomeDataStore:
    """Authoritative store for a set of named objects.

    Parameters
    ----------
    name:
        Node name of this store in the simulated network.
    history_depth:
        How many recent versions (and their deltas to the latest) to
        keep — the "delta chain depth" ablated in the benchmarks.
    delta_threshold:
        A delta is served only when
        ``delta.size <= delta_threshold * full_size`` ("considerably
        smaller"); above that the full object goes out.
    compact_after_versions:
        Auto-compact an object's version chain once it retains more than
        this many *previous* versions (``None`` disables; the
        ``history_depth`` cap still applies).  Compaction collapses the
        chain to a fresh base snapshot — just the current version, no
        deltas — trading delta-serving ability for storage: lagging
        readers fall back to :class:`FullResponse` catch-up, so
        ``recover_site`` keeps working, only costing full-copy bytes.
    compact_bytes_budget:
        Auto-compact when the chain's retained bytes (previous versions
        plus cached deltas) exceed this budget (``None`` disables).
    """

    def __init__(
        self,
        name: str = "home-store",
        history_depth: int = 4,
        delta_threshold: float = 0.5,
        clock: Optional[Any] = None,
        compact_after_versions: Optional[int] = None,
        compact_bytes_budget: Optional[int] = None,
    ):
        if history_depth < 1:
            raise ValueError("history_depth must be >= 1")
        if not 0.0 < delta_threshold <= 1.0:
            raise ValueError("delta_threshold must be in (0, 1]")
        if compact_after_versions is not None and compact_after_versions < 1:
            raise ValueError("compact_after_versions must be >= 1")
        if compact_bytes_budget is not None and compact_bytes_budget < 1:
            raise ValueError("compact_bytes_budget must be >= 1")
        self.name = name
        self.history_depth = history_depth
        self.delta_threshold = delta_threshold
        self.compact_after_versions = compact_after_versions
        self.compact_bytes_budget = compact_bytes_budget
        self.clock = clock
        #: Hook point for :class:`repro.faults.FaultInjector` (sites
        #: ``datastore.get`` / ``datastore.put``); ``None`` in
        #: production.
        self.fault_injector: Optional[Any] = None
        # name -> recent versions, oldest first, last is current
        self._history: Dict[str, List[VersionedObject]] = {}
        # name -> {base_version: Delta to current}
        self._deltas: Dict[str, Dict[int, Delta]] = {}
        self._listeners: List[UpdateListener] = []
        self.stats = {
            "puts": 0,
            "gets": 0,
            "full_served": 0,
            "delta_served": 0,
            "bytes_full": 0,
            "bytes_delta": 0,
            "bytes_saved": 0,
            "compactions": 0,
            "versions_compacted": 0,
        }

    # -- write path ------------------------------------------------------
    def put(self, name: str, payload: Any) -> VersionedObject:
        """Store a new version of ``name`` (version 1 if new).

        Recomputes the cached delta family d(o, k-i, k) against every
        retained previous version and notifies update listeners.
        """
        if self.fault_injector is not None:
            self.fault_injector.check("datastore.put", name=name)
        data = encode_payload(payload)
        history = self._history.setdefault(name, [])
        previous = history[-1] if history else None
        version = (previous.version + 1) if previous else 1
        timestamp = self.clock.now if self.clock is not None else 0.0
        obj = VersionedObject(
            name=name, version=version, data=data, timestamp=timestamp
        )
        history.append(obj)
        if len(history) > self.history_depth + 1:
            del history[: len(history) - (self.history_depth + 1)]
        self._refresh_deltas(name)
        self._maybe_compact(name)
        self.stats["puts"] += 1
        for listener in self._listeners:
            listener(self, previous, obj)
        return obj

    def _refresh_deltas(self, name: str) -> None:
        history = self._history[name]
        current = history[-1]
        deltas: Dict[int, Delta] = {}
        for base in history[:-1]:
            deltas[base.version] = compute_delta(
                name, base.version, current.version, base.data, current.data
            )
        self._deltas[name] = deltas

    # -- compaction -------------------------------------------------------
    def chain_bytes(self, name: str) -> int:
        """Retained bytes of ``name``'s version chain: previous versions
        plus their cached deltas (the current version itself is excluded
        — it must be kept regardless).

        Parameters
        ----------
        name:
            Object whose chain to measure.

        Returns
        -------
        Total retained chain bytes.
        """
        history = self._history.get(name, [])
        retained = sum(obj.size for obj in history[:-1])
        retained += sum(d.size for d in self._deltas.get(name, {}).values())
        return retained

    def _chain_over_budget(self, name: str) -> bool:
        history = self._history.get(name, [])
        if len(history) <= 1:
            return False
        if (
            self.compact_after_versions is not None
            and len(history) - 1 > self.compact_after_versions
        ):
            return True
        if (
            self.compact_bytes_budget is not None
            and self.chain_bytes(name) > self.compact_bytes_budget
        ):
            return True
        return False

    def _maybe_compact(self, name: str) -> None:
        if self._chain_over_budget(name):
            self.compact(name)

    def compact(self, name: Optional[str] = None) -> int:
        """Collapse version chains into a fresh base snapshot.

        Drops every retained previous version and cached delta of
        ``name`` (or of *all* objects when ``name`` is ``None``), keeping
        only the current :class:`~repro.distributed.objects
        .VersionedObject`.  Version numbers stay monotonic — the current
        version is untouched — so replica catch-up
        (``ReplicatedDataStore.recover_site``) still works; lagging
        readers simply receive a :class:`FullResponse` instead of a
        delta.

        Parameters
        ----------
        name:
            Object to compact, or ``None`` for every stored object.

        Returns
        -------
        The number of previous versions dropped.
        """
        names = [name] if name is not None else list(self._history)
        dropped = 0
        for key in names:
            history = self._history.get(key)
            if not history:
                raise KeyError(f"unknown object {key!r}")
            if len(history) > 1:
                dropped += len(history) - 1
                self._history[key] = [history[-1]]
                self._deltas[key] = {}
        if dropped:
            self.stats["compactions"] += 1
            self.stats["versions_compacted"] += dropped
        return dropped

    # -- read path --------------------------------------------------------
    def current(self, name: str) -> VersionedObject:
        """The latest version of ``name``."""
        history = self._history.get(name)
        if not history:
            raise KeyError(f"unknown object {name!r}")
        return history[-1]

    def current_version(self, name: str) -> int:
        """Latest version number of ``name``."""
        return self.current(name).version

    def data_ref(self, name: str) -> tuple:
        """``(name, current_version)`` — the reference an
        :class:`~repro.core.engine.ExecutionEngine` stamps into artifact
        keys so a later version bump can invalidate exactly the
        artifacts computed on this version."""
        return (name, self.current_version(name))

    def object_names(self) -> List[str]:
        """Sorted names of all stored objects."""
        return sorted(self._history)

    def available_delta(self, name: str, base_version: int) -> Optional[Delta]:
        """The cached delta from ``base_version`` to the current version,
        if retained."""
        return self._deltas.get(name, {}).get(base_version)

    def get(self, name: str, client_version: Optional[int] = None) -> Response:
        """Serve the latest version, as a delta when possible.

        ``client_version`` is the version the requester already holds
        (``None`` = nothing).  Chooses the smaller of full copy vs cached
        delta, subject to :attr:`delta_threshold`; accounting lands in
        :attr:`stats`.
        """
        if self.fault_injector is not None:
            self.fault_injector.check("datastore.get", name=name)
        current = self.current(name)
        self.stats["gets"] += 1
        if client_version is not None:
            if client_version > current.version:
                raise ValueError(
                    f"client claims version {client_version} of {name!r} "
                    f"but current is {current.version}"
                )
            if client_version == current.version:
                # Client is up to date: only a version confirmation goes
                # out, modeled as a delta with no operations.
                empty = Delta(
                    name=name,
                    base_version=client_version,
                    target_version=current.version,
                    ops=(),
                    target_size=current.size,
                )
                return DeltaResponse(empty)
            delta = self.available_delta(name, client_version)
            if (
                delta is not None
                and delta.size <= self.delta_threshold * current.size
            ):
                self.stats["delta_served"] += 1
                self.stats["bytes_delta"] += delta.size
                self.stats["bytes_saved"] += current.size - delta.size
                return DeltaResponse(delta)
        self.stats["full_served"] += 1
        self.stats["bytes_full"] += current.size
        return FullResponse(current)

    # -- change notification ------------------------------------------------
    def add_listener(self, listener: UpdateListener) -> None:
        """Register an update listener (e.g. the lease manager)."""
        self._listeners.append(listener)

    def remove_listener(self, listener: UpdateListener) -> None:
        """Unregister a previously added update listener."""
        self._listeners.remove(listener)
