"""Distribute pipeline evaluations across nodes (paper Section III).

"Different predictive models can be run in parallel.  The same predictive
models may also need to be run with multiple parameter sets to optimize
the parameter settings.  These parameter optimizations can be done via
parallel invocations."  And: "How to optimize computational resources in
such a distributed system is a major challenge."

The scheduler assigns :class:`~repro.core.evaluation.EvaluationJob` units
to compute nodes under a placement policy and reports the simulated
makespan (jobs on one node run serially; nodes run in parallel).  Two
policies implement the ablation called out in DESIGN.md:

* ``round_robin`` — jobs dealt in turn, ignoring node speed.
* ``weighted`` — ETA-greedy: each job goes to the node whose estimated
  completion time (current load + expected duration of an average job on
  that node) is smallest, so fast nodes absorb proportionally more work.
  The expected duration uses a running mean of observed real job times.

A scheduler also plugs into the unified execution layer: pass one as the
``engine`` of a :class:`~repro.core.evaluation.GraphEvaluator` (or call
:meth:`DistributedScheduler.as_executor`) and every evaluation — the
exhaustive sweep, the budgeted searches, the cooperative coordinator —
fans its jobs across the nodes while keeping the engine's shared
fitted-prefix transform cache and result hooks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.distributed.node import ComputeNode
from repro.obs import resolve_telemetry

__all__ = ["ScheduleOutcome", "DistributedScheduler"]

_POLICIES = ("round_robin", "weighted")


@dataclass
class ScheduleOutcome:
    """Results plus per-node accounting for one distributed run."""

    results: List[Any]
    assignment: Dict[str, List[str]]  # node name -> job keys
    node_busy_seconds: Dict[str, float]
    makespan_seconds: float

    @property
    def total_compute_seconds(self) -> float:
        """Total simulated work summed over all nodes."""
        return sum(self.node_busy_seconds.values())

    @property
    def speedup(self) -> float:
        """Parallel speedup vs running everything serially on one
        (speed-1) node would require the serial baseline; here it is the
        ratio of total simulated work to the makespan — i.e. achieved
        parallel efficiency x node count."""
        if self.makespan_seconds == 0:
            return 1.0
        return self.total_compute_seconds / self.makespan_seconds


class DistributedScheduler:
    """Assign evaluation jobs to compute nodes and execute them.

    Parameters
    ----------
    nodes:
        The compute nodes (clients and/or cloud servers).
    policy:
        ``"round_robin"`` or ``"weighted"`` (least-loaded-first, which
        is capability-aware because load is measured in simulated
        seconds).
    telemetry:
        ``None`` (default) or a :class:`~repro.obs.Telemetry` handle.
        When enabled, every run emits a ``scheduler.execute`` span plus
        per-node job counts (``scheduler.node_jobs``), per-node
        simulated busy time (``scheduler.node_busy_seconds``) and the
        total simulated queue wait (``scheduler.queue_seconds``).
        A handle attached to the evaluator/engine that wraps this
        scheduler is propagated here automatically.
    """

    def __init__(
        self,
        nodes: Sequence[ComputeNode],
        policy: str = "weighted",
        telemetry: Any = None,
    ):
        if not nodes:
            raise ValueError("scheduler needs at least one node")
        if policy not in _POLICIES:
            raise ValueError(f"policy must be one of {_POLICIES}")
        names = [node.name for node in nodes]
        if len(set(names)) != len(names):
            raise ValueError("node names must be unique")
        self.nodes = list(nodes)
        self.policy = policy
        self.telemetry = resolve_telemetry(telemetry)
        # Running mean of observed real job seconds (the cost estimate
        # the weighted policy plugs into per-node ETAs).
        self._mean_job_seconds = 0.0
        self._jobs_observed = 0

    def _observe(self, real_seconds: float) -> None:
        self._jobs_observed += 1
        self._mean_job_seconds += (
            real_seconds - self._mean_job_seconds
        ) / self._jobs_observed

    def _pick_node(self, index: int, busy: Dict[str, float]) -> ComputeNode:
        if self.policy == "round_robin":
            return self.nodes[index % len(self.nodes)]
        # ETA greedy: estimated completion = current load + expected
        # duration of an average job on this node.  Before any job has
        # been observed the load term is zero everywhere, so the
        # estimate term alone routes the first jobs to the fastest nodes.
        estimate = self._mean_job_seconds or 1.0
        return min(
            self.nodes,
            key=lambda node: busy[node.name] + estimate / node.compute_speed,
        )

    def as_executor(self):
        """This scheduler wrapped as an engine executor, so it can be
        passed wherever :class:`repro.core.engine.ExecutionEngine`
        accepts one."""
        from repro.core.engine import DistributedExecutor

        return DistributedExecutor(self)

    def execute(
        self,
        evaluator,
        jobs: Sequence[Any],
        X: Any,
        y: Any,
    ) -> ScheduleOutcome:
        """Run all ``jobs`` under the placement policy.

        Jobs execute for real (serially on this machine); the outcome's
        timing fields reflect the simulated parallel execution.
        """
        busy: Dict[str, float] = {node.name: 0.0 for node in self.nodes}
        assignment: Dict[str, List[str]] = {
            node.name: [] for node in self.nodes
        }
        results: List[Any] = []
        tel = self.telemetry
        with tel.span(
            "scheduler.execute", policy=self.policy, n_jobs=len(jobs)
        ) as sched_span:
            for index, job in enumerate(jobs):
                node = self._pick_node(index, busy)
                # Simulated time this job spends queued behind earlier
                # assignments on its node before it can start.
                queue_wait = busy[node.name]
                before = node.busy_seconds
                result = node.execute_job(evaluator, job, X, y)
                simulated = node.busy_seconds - before
                busy[node.name] += simulated
                self._observe(simulated * node.compute_speed)
                assignment[node.name].append(job.key)
                results.append(result)
                if tel.enabled:
                    tel.count("scheduler.jobs")
                    tel.count("scheduler.node_jobs", key=node.name)
                    tel.count(
                        "scheduler.node_busy_seconds", simulated, key=node.name
                    )
                    tel.count("scheduler.queue_seconds", queue_wait)
            makespan = max(busy.values()) if busy else 0.0
            sched_span.annotate(makespan_seconds=makespan)
        return ScheduleOutcome(
            results=results,
            assignment=assignment,
            node_busy_seconds=busy,
            makespan_seconds=makespan,
        )
