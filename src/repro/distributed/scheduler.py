"""Distribute pipeline evaluations across nodes (paper Section III).

"Different predictive models can be run in parallel.  The same predictive
models may also need to be run with multiple parameter sets to optimize
the parameter settings.  These parameter optimizations can be done via
parallel invocations."  And: "How to optimize computational resources in
such a distributed system is a major challenge."

The scheduler assigns :class:`~repro.core.evaluation.EvaluationJob` units
to compute nodes under a placement policy and reports the simulated
makespan (jobs on one node run serially; nodes run in parallel).  Two
policies implement the ablation called out in DESIGN.md:

* ``round_robin`` — jobs dealt in turn, ignoring node speed.
* ``weighted`` — ETA-greedy: each job goes to the node whose estimated
  completion time (current load + expected duration of an average job on
  that node) is smallest, so fast nodes absorb proportionally more work.
  The expected duration uses a running mean of observed real job times.

A scheduler also plugs into the unified execution layer: pass one as the
``engine`` of a :class:`~repro.core.evaluation.GraphEvaluator` (or call
:meth:`DistributedScheduler.as_executor`) and every evaluation — the
exhaustive sweep, the budgeted searches, the cooperative coordinator —
fans its jobs across the nodes while keeping the engine's shared
fitted-prefix transform cache and result hooks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set

from repro.distributed.node import ComputeNode
from repro.faults import NodeCrashed, TransientJobError
from repro.obs import resolve_telemetry

__all__ = ["ScheduleOutcome", "DistributedScheduler", "NoHealthyNodes"]

_POLICIES = ("round_robin", "weighted")


class NoHealthyNodes(RuntimeError):
    """Every compute node has crashed; there is nowhere left to place
    the remaining jobs."""


@dataclass
class ScheduleOutcome:
    """Results plus per-node accounting for one distributed run.

    ``results`` entries are ``None`` for jobs the engine's failure
    policy skipped; ``node_health`` maps each node to ``"healthy"`` or
    ``"crashed"``; ``jobs_reassigned`` counts placements that had to be
    redone on a surviving node after a crash or transient node fault.
    """

    results: List[Any]
    assignment: Dict[str, List[str]]  # node name -> job keys
    node_busy_seconds: Dict[str, float]
    makespan_seconds: float
    node_health: Dict[str, str] = field(default_factory=dict)
    node_crashes: int = 0
    jobs_reassigned: int = 0

    @property
    def total_compute_seconds(self) -> float:
        """Total simulated work summed over all nodes."""
        return sum(self.node_busy_seconds.values())

    @property
    def speedup(self) -> float:
        """Parallel speedup vs running everything serially on one
        (speed-1) node would require the serial baseline; here it is the
        ratio of total simulated work to the makespan — i.e. achieved
        parallel efficiency x node count."""
        if self.makespan_seconds == 0:
            return 1.0
        return self.total_compute_seconds / self.makespan_seconds


class DistributedScheduler:
    """Assign evaluation jobs to compute nodes and execute them.

    Parameters
    ----------
    nodes:
        The compute nodes (clients and/or cloud servers).
    policy:
        ``"round_robin"`` or ``"weighted"`` (least-loaded-first, which
        is capability-aware because load is measured in simulated
        seconds).
    telemetry:
        ``None`` (default) or a :class:`~repro.obs.Telemetry` handle.
        When enabled, every run emits a ``scheduler.execute`` span plus
        per-node job counts (``scheduler.node_jobs``), per-node
        simulated busy time (``scheduler.node_busy_seconds``) and the
        total simulated queue wait (``scheduler.queue_seconds``).
        A handle attached to the evaluator/engine that wraps this
        scheduler is propagated here automatically.
    """

    def __init__(
        self,
        nodes: Sequence[ComputeNode],
        policy: str = "weighted",
        telemetry: Any = None,
    ):
        if not nodes:
            raise ValueError("scheduler needs at least one node")
        if policy not in _POLICIES:
            raise ValueError(f"policy must be one of {_POLICIES}")
        names = [node.name for node in nodes]
        if len(set(names)) != len(names):
            raise ValueError("node names must be unique")
        for node in nodes:
            speed = getattr(node, "compute_speed", 1.0)
            if not speed > 0:
                raise ValueError(
                    f"node {node.name!r} has non-positive compute_speed "
                    f"{speed!r}; every node must have compute_speed > 0"
                )
        self.nodes = list(nodes)
        self.policy = policy
        self.telemetry = resolve_telemetry(telemetry)
        # Running mean of observed real job seconds (the cost estimate
        # the weighted policy plugs into per-node ETAs).
        self._mean_job_seconds = 0.0
        self._jobs_observed = 0

    def _observe(self, real_seconds: float) -> None:
        self._jobs_observed += 1
        self._mean_job_seconds += (
            real_seconds - self._mean_job_seconds
        ) / self._jobs_observed

    def _pick_node(
        self,
        index: int,
        busy: Dict[str, float],
        candidates: Optional[Sequence[ComputeNode]] = None,
    ) -> ComputeNode:
        nodes = self.nodes if candidates is None else list(candidates)
        for node in nodes:
            if not node.compute_speed > 0:
                raise ValueError(
                    f"node {node.name!r} has non-positive compute_speed "
                    f"{node.compute_speed!r}; cannot estimate job duration"
                )
        if self.policy == "round_robin":
            return nodes[index % len(nodes)]
        # ETA greedy: estimated completion = current load + expected
        # duration of an average job on this node.  Before any job has
        # been observed the load term is zero everywhere, so the
        # estimate term alone routes the first jobs to the fastest nodes.
        estimate = self._mean_job_seconds or 1.0
        return min(
            nodes,
            key=lambda node: busy[node.name] + estimate / node.compute_speed,
        )

    def as_executor(self):
        """This scheduler wrapped as an engine executor, so it can be
        passed wherever :class:`repro.core.engine.ExecutionEngine`
        accepts one."""
        from repro.core.engine import DistributedExecutor

        return DistributedExecutor(self)

    def execute(
        self,
        evaluator,
        jobs: Sequence[Any],
        X: Any,
        y: Any,
    ) -> ScheduleOutcome:
        """Run all ``jobs`` under the placement policy.

        Jobs execute for real (serially on this machine); the outcome's
        timing fields reflect the simulated parallel execution.

        A node raising :class:`~repro.faults.NodeCrashed` mid-job is
        quarantined for the rest of the run and its job is re-placed on
        a surviving node under the same policy (pending jobs only ever
        go to healthy nodes).  A node raising
        :class:`~repro.faults.TransientJobError` stays healthy but the
        job is speculatively retried on a different node.  The run
        refuses (:class:`NoHealthyNodes`) only when every node has
        crashed.
        """
        busy: Dict[str, float] = {node.name: 0.0 for node in self.nodes}
        assignment: Dict[str, List[str]] = {
            node.name: [] for node in self.nodes
        }
        node_health: Dict[str, str] = {
            node.name: "healthy" for node in self.nodes
        }
        node_crashes = 0
        jobs_reassigned = 0
        results: List[Any] = []
        tel = self.telemetry
        with tel.span(
            "scheduler.execute", policy=self.policy, n_jobs=len(jobs)
        ) as sched_span:
            for index, job in enumerate(jobs):
                attempted: Set[str] = set()
                placements = 0
                while True:
                    healthy = [
                        node
                        for node in self.nodes
                        if node_health[node.name] == "healthy"
                    ]
                    if not healthy:
                        raise NoHealthyNodes(
                            f"all {len(self.nodes)} node(s) crashed; "
                            f"cannot place job {job.key}"
                        )
                    candidates = [
                        node for node in healthy if node.name not in attempted
                    ] or healthy
                    node = self._pick_node(index, busy, candidates)
                    # Simulated time this job spends queued behind
                    # earlier assignments on its node before it starts.
                    queue_wait = busy[node.name]
                    before = node.busy_seconds
                    placements += 1
                    try:
                        result = node.execute_job(evaluator, job, X, y)
                    except NodeCrashed:
                        node_health[node.name] = "crashed"
                        node_crashes += 1
                        tel.count("scheduler.node_crashes")
                        continue
                    except TransientJobError:
                        # The node survived but this attempt was lost;
                        # speculatively retry elsewhere.  Once every
                        # healthy node has been tried, give the fault up
                        # the stack instead of spinning.
                        attempted.add(node.name)
                        if len(attempted) >= len(healthy):
                            raise
                        continue
                    break
                if placements > 1:
                    jobs_reassigned += placements - 1
                    tel.count("scheduler.jobs_reassigned", placements - 1)
                simulated = node.busy_seconds - before
                busy[node.name] += simulated
                if result is not None:
                    self._observe(simulated * node.compute_speed)
                assignment[node.name].append(job.key)
                results.append(result)
                if tel.enabled:
                    tel.count("scheduler.jobs")
                    tel.count("scheduler.node_jobs", key=node.name)
                    tel.count(
                        "scheduler.node_busy_seconds", simulated, key=node.name
                    )
                    tel.count("scheduler.queue_seconds", queue_wait)
            makespan = max(busy.values()) if busy else 0.0
            sched_span.annotate(
                makespan_seconds=makespan,
                node_crashes=node_crashes,
                jobs_reassigned=jobs_reassigned,
            )
        return ScheduleOutcome(
            results=results,
            assignment=assignment,
            node_busy_seconds=busy,
            makespan_seconds=makespan,
            node_health=node_health,
            node_crashes=node_crashes,
            jobs_reassigned=jobs_reassigned,
        )
