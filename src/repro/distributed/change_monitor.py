"""Change-triggered recomputation policies (paper Section III).

"The data are monitored for changes.  When the amount of change in the
data exceeds a threshold, then analytics calculations are recalculated
on the data.  There are a number of ways to determine if data has
changed enough to warrant updated analytics calculations:

* The number of updates since the last time analytics calculations were
  run exceeds a threshold.
* The total size of updates since the last time analytics calculations
  were run exceeds a threshold.
* Application-specific methods can be applied to determine how much the
  data have changed."
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

import numpy as np

__all__ = [
    "ChangePolicy",
    "UpdateCountPolicy",
    "UpdateSizePolicy",
    "ApplicationPolicy",
    "DriftPolicy",
    "CostAwarePolicy",
    "ChangeMonitor",
]


class ChangePolicy:
    """Interface: observe updates, answer "recompute now?"."""

    def seed(self, data: Any) -> None:
        """Provide the baseline dataset before any updates arrive.

        No-op for counting policies; distribution-based policies (e.g.
        :class:`DriftPolicy`) record the reference distribution here.
        """

    def observe(self, old: Any, new: Any, size: int) -> None:
        raise NotImplementedError

    def should_recompute(self) -> bool:
        raise NotImplementedError

    def reset(self) -> None:
        """Called after analytics have been recomputed."""
        raise NotImplementedError


class UpdateCountPolicy(ChangePolicy):
    """Trigger after ``threshold`` updates."""

    def __init__(self, threshold: int = 10):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = threshold
        self.count = 0

    def observe(self, old: Any, new: Any, size: int) -> None:
        self.count += 1

    def should_recompute(self) -> bool:
        return self.count >= self.threshold

    def reset(self) -> None:
        self.count = 0


class UpdateSizePolicy(ChangePolicy):
    """Trigger after ``threshold_bytes`` of cumulative update volume."""

    def __init__(self, threshold_bytes: int = 1 << 20):
        if threshold_bytes < 1:
            raise ValueError("threshold_bytes must be >= 1")
        self.threshold_bytes = threshold_bytes
        self.total_bytes = 0

    def observe(self, old: Any, new: Any, size: int) -> None:
        if size < 0:
            raise ValueError("size must be >= 0")
        self.total_bytes += size

    def should_recompute(self) -> bool:
        return self.total_bytes >= self.threshold_bytes

    def reset(self) -> None:
        self.total_bytes = 0


class ApplicationPolicy(ChangePolicy):
    """Trigger on an application-specific change measure.

    "This is the best way to determine when to perform updated analytics
    calculations.  However, it is harder to implement this option than
    the previous ones."  ``measure(old, new) -> float`` quantifies each
    update's semantic change; the accumulated measure is compared with
    ``threshold``.
    """

    def __init__(
        self, measure: Callable[[Any, Any], float], threshold: float = 1.0
    ):
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.measure = measure
        self.threshold = threshold
        self.accumulated = 0.0

    def observe(self, old: Any, new: Any, size: int) -> None:
        value = float(self.measure(old, new))
        if value < 0:
            raise ValueError("measure must be non-negative")
        self.accumulated += value

    def should_recompute(self) -> bool:
        return self.accumulated >= self.threshold

    def reset(self) -> None:
        self.accumulated = 0.0


class DriftPolicy(ChangePolicy):
    """A ready-made application policy for numeric datasets: trigger when
    the column-mean shift since the last recomputation exceeds
    ``threshold`` standard deviations (of the baseline).

    Addresses the paper's model-lifecycle concern: "There may be concept
    drifts."
    """

    def __init__(self, threshold: float = 0.5):
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.threshold = threshold
        self._baseline_mean: Optional[np.ndarray] = None
        self._baseline_std: Optional[np.ndarray] = None
        self._latest: Optional[np.ndarray] = None

    def seed(self, data: Any) -> None:
        arr = np.asarray(data, dtype=float)
        if arr.ndim == 1:
            arr = arr.reshape(-1, 1)
        self._set_baseline(arr)

    def observe(self, old: Any, new: Any, size: int) -> None:
        data = np.asarray(new, dtype=float)
        if data.ndim == 1:
            data = data.reshape(-1, 1)
        self._latest = data
        if self._baseline_mean is None:
            self._set_baseline(data)

    def _set_baseline(self, data: np.ndarray) -> None:
        self._baseline_mean = data.mean(axis=0)
        std = data.std(axis=0)
        std[std == 0.0] = 1.0
        self._baseline_std = std

    def should_recompute(self) -> bool:
        if self._baseline_mean is None or self._latest is None:
            return False
        shift = np.abs(self._latest.mean(axis=0) - self._baseline_mean)
        return bool((shift / self._baseline_std).max() >= self.threshold)

    def reset(self) -> None:
        if self._latest is not None:
            self._set_baseline(self._latest)


class ChangeMonitor:
    """Couples a change policy to a recompute action.

    Feed it every data update via :meth:`record_update`; it invokes
    ``recompute`` (if given) when the policy fires and resets the policy.
    The counters expose the recompute-frequency-vs-staleness trade the
    paper discusses ("Too frequent retraining can result in high
    overhead, while too infrequent retraining can result in obsolete
    models").
    """

    def __init__(
        self,
        policy: ChangePolicy,
        recompute: Optional[Callable[[], None]] = None,
    ):
        self.policy = policy
        self.recompute = recompute
        self.updates_seen = 0
        self.recomputations = 0
        self.updates_since_recompute = 0
        self.staleness_log: List[int] = []
        #: The ``(old, new, size)`` of the update currently being
        #: observed — set before ``recompute`` runs so the callback can
        #: see which update fired the policy (the store invalidator
        #: reads the new data version from here).
        self.last_event: Optional[tuple] = None

    def record_update(self, old: Any = None, new: Any = None, size: int = 0) -> bool:
        """Observe one update; returns True if a recomputation fired."""
        self.updates_seen += 1
        self.updates_since_recompute += 1
        self.last_event = (old, new, size)
        self.policy.observe(old, new, size)
        if self.policy.should_recompute():
            if self.recompute is not None:
                self.recompute()
            self.recomputations += 1
            self.staleness_log.append(self.updates_since_recompute)
            self.updates_since_recompute = 0
            self.policy.reset()
            return True
        return False

    def notify_recomputed(self) -> None:
        """Record that analytics were recomputed *outside* the monitor's
        own ``recompute`` callback — e.g. an incremental recompute driven
        by :class:`repro.streaming.StreamingEvaluator`, or a scheduled
        cold sweep.

        Without this, only monitor-triggered recomputes would call
        ``policy.reset()``: the policy would keep accumulating change
        that the external recompute already absorbed and fire spuriously
        on the next update.  Bookkeeping matches a fired
        :meth:`record_update` — the recompute counts, the staleness log
        records the updates the recompute absorbed, and the policy
        resets.
        """
        self.recomputations += 1
        self.staleness_log.append(self.updates_since_recompute)
        self.updates_since_recompute = 0
        self.policy.reset()

    @property
    def mean_staleness(self) -> float:
        """Mean number of updates absorbed per recomputation."""
        if not self.staleness_log:
            return float(self.updates_since_recompute)
        return float(np.mean(self.staleness_log))


class CostAwarePolicy(ChangePolicy):
    """Wrap another policy with a compute-cost gate (paper Section III).

    "The computational overhead for data analytics calculations is also
    an important factor that should be considered in making decisions to
    perform analytics calculations.  If the computational overhead is
    low, it becomes more feasible to perform analytics calculations more
    frequently, and vice versa."

    The inner policy decides when the data has changed *enough*; this
    wrapper additionally requires that the projected recompute cost fits
    the remaining budget.  ``record_cost`` feeds observed recompute
    costs (seconds) so the projection tracks reality; ``replenish``
    tops the budget up (e.g. once per accounting period).
    """

    def __init__(
        self,
        inner: ChangePolicy,
        budget_seconds: float,
        initial_cost_estimate: float = 1.0,
    ):
        if budget_seconds <= 0:
            raise ValueError("budget_seconds must be positive")
        if initial_cost_estimate <= 0:
            raise ValueError("initial_cost_estimate must be positive")
        self.inner = inner
        self.budget_seconds = budget_seconds
        self.remaining_seconds = float(budget_seconds)
        self._cost_estimate = float(initial_cost_estimate)
        self._costs_seen = 0
        self.deferrals = 0

    def seed(self, data: Any) -> None:
        self.inner.seed(data)

    def observe(self, old: Any, new: Any, size: int) -> None:
        self.inner.observe(old, new, size)

    def should_recompute(self) -> bool:
        if not self.inner.should_recompute():
            return False
        if self._cost_estimate > self.remaining_seconds:
            self.deferrals += 1
            return False
        return True

    def reset(self) -> None:
        # called after a recompute fired: charge the budget
        self.remaining_seconds = max(
            0.0, self.remaining_seconds - self._cost_estimate
        )
        self.inner.reset()

    def record_cost(self, seconds: float) -> None:
        """Feed the observed cost of the last recompute.

        The projection becomes the running mean of *observed* costs —
        the ``initial_cost_estimate`` prior is replaced by the first
        observation rather than averaged into it.
        """
        if seconds < 0:
            raise ValueError("seconds must be >= 0")
        self._costs_seen += 1
        self._cost_estimate += (
            seconds - self._cost_estimate
        ) / self._costs_seen

    def replenish(self, seconds: Optional[float] = None) -> None:
        """Top the budget back up (default: to the full budget)."""
        if seconds is None:
            self.remaining_seconds = float(self.budget_seconds)
        else:
            if seconds < 0:
                raise ValueError("seconds must be >= 0")
            self.remaining_seconds = min(
                float(self.budget_seconds),
                self.remaining_seconds + seconds,
            )

    @property
    def projected_cost(self) -> float:
        """Current per-recompute cost estimate in seconds."""
        return self._cost_estimate
