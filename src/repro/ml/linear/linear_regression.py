"""Linear models: ordinary least squares and ridge regression.

Linear regression is one of the model-training techniques the paper lists
(Section III, Table I).  Both models solve the normal equations with a
least-squares solver, which is exact and fast at the dataset sizes this
library targets.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.ml.base import (
    BaseComponent,
    RegressorMixin,
    as_1d_array,
    as_2d_array,
    check_consistent_length,
    check_is_fitted,
)

__all__ = ["LinearRegression", "RidgeRegression"]


class LinearRegression(RegressorMixin, BaseComponent):
    """Ordinary least squares regression."""

    def __init__(self, fit_intercept: bool = True):
        self.fit_intercept = fit_intercept
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: Optional[float] = None

    def fit(self, X: Any, y: Any) -> "LinearRegression":
        X = as_2d_array(X)
        y = as_1d_array(y).astype(float)
        check_consistent_length(X, y)
        if self.fit_intercept:
            design = np.hstack([np.ones((len(X), 1)), X])
        else:
            design = X
        solution, *_ = np.linalg.lstsq(design, y, rcond=None)
        if self.fit_intercept:
            self.intercept_ = float(solution[0])
            self.coef_ = solution[1:]
        else:
            self.intercept_ = 0.0
            self.coef_ = solution
        return self

    def predict(self, X: Any) -> np.ndarray:
        check_is_fitted(self, "coef_")
        X = as_2d_array(X)
        if X.shape[1] != self.coef_.shape[0]:
            raise ValueError(
                f"X has {X.shape[1]} features, model was fitted with "
                f"{self.coef_.shape[0]}"
            )
        return X @ self.coef_ + self.intercept_


class RidgeRegression(RegressorMixin, BaseComponent):
    """L2-regularized least squares.

    The intercept is never penalized: data is centered before solving and
    the intercept recovered from the means.
    """

    def __init__(self, alpha: float = 1.0):
        if alpha < 0:
            raise ValueError("alpha must be >= 0")
        self.alpha = alpha
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: Optional[float] = None

    def fit(self, X: Any, y: Any) -> "RidgeRegression":
        X = as_2d_array(X)
        y = as_1d_array(y).astype(float)
        check_consistent_length(X, y)
        x_mean = X.mean(axis=0)
        y_mean = y.mean()
        Xc = X - x_mean
        yc = y - y_mean
        n_features = X.shape[1]
        gram = Xc.T @ Xc + self.alpha * np.eye(n_features)
        self.coef_ = np.linalg.solve(gram, Xc.T @ yc)
        self.intercept_ = float(y_mean - x_mean @ self.coef_)
        return self

    def predict(self, X: Any) -> np.ndarray:
        check_is_fitted(self, "coef_")
        X = as_2d_array(X)
        if X.shape[1] != self.coef_.shape[0]:
            raise ValueError(
                f"X has {X.shape[1]} features, model was fitted with "
                f"{self.coef_.shape[0]}"
            )
        return X @ self.coef_ + self.intercept_
