"""Linear models: ordinary least squares and ridge regression.

Linear regression is one of the model-training techniques the paper lists
(Section III, Table I).  Both models solve the normal equations with a
least-squares solver, which is exact and fast at the dataset sizes this
library targets.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.ml.base import (
    BaseComponent,
    RegressorMixin,
    as_1d_array,
    as_2d_array,
    check_consistent_length,
    check_is_fitted,
)

__all__ = ["LinearRegression", "RidgeRegression"]


class LinearRegression(RegressorMixin, BaseComponent):
    """Ordinary least squares regression.

    Supports incremental updates through ``partial_fit``: the normal
    equations are accumulated as sufficient statistics (design Gram matrix
    and moment vector), so each call costs O(batch × d²) regardless of how
    many rows were seen before.  The accumulated solve differs from the
    cold ``fit`` lstsq path only by floating-point accumulation order,
    hence ``partial_fit_parity = "tolerance"``.
    """

    partial_fit_parity = "tolerance"

    def __init__(self, fit_intercept: bool = True):
        self.fit_intercept = fit_intercept
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: Optional[float] = None
        self._gram: Optional[np.ndarray] = None
        self._moment: Optional[np.ndarray] = None
        self._n_seen = 0

    def fit(self, X: Any, y: Any) -> "LinearRegression":
        X = as_2d_array(X)
        y = as_1d_array(y).astype(float)
        check_consistent_length(X, y)
        if self.fit_intercept:
            design = np.hstack([np.ones((len(X), 1)), X])
        else:
            design = X
        solution, *_ = np.linalg.lstsq(design, y, rcond=None)
        if self.fit_intercept:
            self.intercept_ = float(solution[0])
            self.coef_ = solution[1:]
        else:
            self.intercept_ = 0.0
            self.coef_ = solution
        self._gram = None
        self._moment = None
        self._n_seen = len(X)
        return self

    def partial_fit(self, X: Any, y: Any) -> "LinearRegression":
        """Incrementally absorb ``(X, y)`` into the normal equations."""
        X = as_2d_array(X)
        y = as_1d_array(y).astype(float)
        check_consistent_length(X, y)
        if self.fit_intercept:
            design = np.hstack([np.ones((len(X), 1)), X])
        else:
            design = X
        if self._gram is None:
            d = design.shape[1]
            self._gram = np.zeros((d, d))
            self._moment = np.zeros(d)
            self._n_seen = 0
        elif self._gram.shape[0] != design.shape[1]:
            raise ValueError(
                f"X has {X.shape[1]} features, model was started with "
                f"{self._gram.shape[0] - int(self.fit_intercept)}"
            )
        self._gram += design.T @ design
        self._moment += design.T @ y
        self._n_seen += len(X)
        solution, *_ = np.linalg.lstsq(self._gram, self._moment, rcond=None)
        if self.fit_intercept:
            self.intercept_ = float(solution[0])
            self.coef_ = solution[1:]
        else:
            self.intercept_ = 0.0
            self.coef_ = solution
        return self

    def predict(self, X: Any) -> np.ndarray:
        check_is_fitted(self, "coef_")
        X = as_2d_array(X)
        if X.shape[1] != self.coef_.shape[0]:
            raise ValueError(
                f"X has {X.shape[1]} features, model was fitted with "
                f"{self.coef_.shape[0]}"
            )
        return X @ self.coef_ + self.intercept_


class RidgeRegression(RegressorMixin, BaseComponent):
    """L2-regularized least squares.

    The intercept is never penalized: data is centered before solving and
    the intercept recovered from the means.

    ``partial_fit`` accumulates raw moments (``ΣX``, ``Σy``, ``XᵀX``,
    ``Xᵀy``) and re-centers them at solve time, matching the cold path up
    to floating-point accumulation order
    (``partial_fit_parity = "tolerance"``).
    """

    partial_fit_parity = "tolerance"

    def __init__(self, alpha: float = 1.0):
        if alpha < 0:
            raise ValueError("alpha must be >= 0")
        self.alpha = alpha
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: Optional[float] = None
        self._sxx: Optional[np.ndarray] = None
        self._sxy: Optional[np.ndarray] = None
        self._sx: Optional[np.ndarray] = None
        self._sy = 0.0
        self._n_seen = 0

    def fit(self, X: Any, y: Any) -> "RidgeRegression":
        X = as_2d_array(X)
        y = as_1d_array(y).astype(float)
        check_consistent_length(X, y)
        x_mean = X.mean(axis=0)
        y_mean = y.mean()
        Xc = X - x_mean
        yc = y - y_mean
        n_features = X.shape[1]
        gram = Xc.T @ Xc + self.alpha * np.eye(n_features)
        self.coef_ = np.linalg.solve(gram, Xc.T @ yc)
        self.intercept_ = float(y_mean - x_mean @ self.coef_)
        self._sxx = None
        self._sxy = None
        self._sx = None
        self._sy = 0.0
        self._n_seen = len(X)
        return self

    def partial_fit(self, X: Any, y: Any) -> "RidgeRegression":
        """Incrementally absorb ``(X, y)`` into the centered ridge solve."""
        X = as_2d_array(X)
        y = as_1d_array(y).astype(float)
        check_consistent_length(X, y)
        if self._sxx is None:
            d = X.shape[1]
            self._sxx = np.zeros((d, d))
            self._sxy = np.zeros(d)
            self._sx = np.zeros(d)
            self._sy = 0.0
            self._n_seen = 0
        elif self._sxx.shape[0] != X.shape[1]:
            raise ValueError(
                f"X has {X.shape[1]} features, model was started with "
                f"{self._sxx.shape[0]}"
            )
        self._sxx += X.T @ X
        self._sxy += X.T @ y
        self._sx += X.sum(axis=0)
        self._sy += float(y.sum())
        self._n_seen += len(X)
        n = self._n_seen
        x_mean = self._sx / n
        y_mean = self._sy / n
        centered_gram = self._sxx - n * np.outer(x_mean, x_mean)
        centered_moment = self._sxy - n * x_mean * y_mean
        gram = centered_gram + self.alpha * np.eye(X.shape[1])
        self.coef_ = np.linalg.solve(gram, centered_moment)
        self.intercept_ = float(y_mean - x_mean @ self.coef_)
        return self

    def predict(self, X: Any) -> np.ndarray:
        check_is_fitted(self, "coef_")
        X = as_2d_array(X)
        if X.shape[1] != self.coef_.shape[0]:
            raise ValueError(
                f"X has {X.shape[1]} features, model was fitted with "
                f"{self.coef_.shape[0]}"
            )
        return X @ self.coef_ + self.intercept_
