"""Logistic regression classifier (binary and one-vs-rest multiclass).

Used by the classification-oriented solution templates (failure
prediction, anomaly analysis) where the paper's industrial problems are
binary with heavy class imbalance; ``class_weight="balanced"`` reweights
the loss accordingly.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.ml.base import (
    BaseComponent,
    ClassifierMixin,
    as_1d_array,
    as_2d_array,
    check_consistent_length,
    check_is_fitted,
)

__all__ = ["LogisticRegression"]


def _sigmoid(z: np.ndarray) -> np.ndarray:
    # Clip to keep exp() in range; gradients saturate there anyway.
    return 1.0 / (1.0 + np.exp(-np.clip(z, -35.0, 35.0)))


class LogisticRegression(ClassifierMixin, BaseComponent):
    """L2-regularized logistic regression trained by full-batch gradient
    descent with a fixed learning rate and early stopping on the gradient
    norm.

    Parameters
    ----------
    alpha:
        L2 penalty strength (intercept not penalized).
    learning_rate, max_iter, tol:
        Optimizer settings; ``tol`` is the infinity-norm of the gradient
        below which training stops.
    class_weight:
        ``None`` or ``"balanced"`` (inverse class frequency weights).

    ``partial_fit(X, y, classes=...)`` warm-starts the gradient-descent
    loop from the current weights on the given batch — an online
    approximation whose fitted state tracks (but does not bit-match) a
    cold refit on the full history, hence
    ``partial_fit_parity = "tolerance"``.
    """

    partial_fit_parity = "tolerance"

    def __init__(
        self,
        alpha: float = 1e-4,
        learning_rate: float = 0.1,
        max_iter: int = 500,
        tol: float = 1e-5,
        class_weight: Optional[str] = None,
    ):
        if alpha < 0:
            raise ValueError("alpha must be >= 0")
        if class_weight not in (None, "balanced"):
            raise ValueError("class_weight must be None or 'balanced'")
        self.alpha = alpha
        self.learning_rate = learning_rate
        self.max_iter = max_iter
        self.tol = tol
        self.class_weight = class_weight
        self.classes_: Optional[np.ndarray] = None
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: Optional[np.ndarray] = None

    def _sample_weights(self, y01: np.ndarray) -> np.ndarray:
        if self.class_weight is None:
            return np.ones(len(y01))
        n = len(y01)
        n_pos = max(y01.sum(), 1)
        n_neg = max(n - y01.sum(), 1)
        weights = np.where(y01 == 1, n / (2.0 * n_pos), n / (2.0 * n_neg))
        return weights

    def _fit_binary(
        self,
        X: np.ndarray,
        y01: np.ndarray,
        w: "np.ndarray | None" = None,
        b: float = 0.0,
    ) -> tuple:
        n, d = X.shape
        w = np.zeros(d) if w is None else w.astype(float).copy()
        sample_w = self._sample_weights(y01)
        for _ in range(self.max_iter):
            p = _sigmoid(X @ w + b)
            error = sample_w * (p - y01)
            grad_w = X.T @ error / n + self.alpha * w
            grad_b = error.mean()
            w -= self.learning_rate * grad_w
            b -= self.learning_rate * grad_b
            if max(np.abs(grad_w).max(), abs(grad_b)) < self.tol:
                break
        return w, b

    def fit(self, X: Any, y: Any) -> "LogisticRegression":
        X = as_2d_array(X)
        y = as_1d_array(y)
        check_consistent_length(X, y)
        self.classes_ = np.unique(y)
        if len(self.classes_) < 2:
            raise ValueError("need at least two classes")
        coefs, intercepts = [], []
        if len(self.classes_) == 2:
            y01 = (y == self.classes_[1]).astype(float)
            w, b = self._fit_binary(X, y01)
            coefs.append(w)
            intercepts.append(b)
        else:
            for c in self.classes_:
                y01 = (y == c).astype(float)
                w, b = self._fit_binary(X, y01)
                coefs.append(w)
                intercepts.append(b)
        self.coef_ = np.vstack(coefs)
        self.intercept_ = np.asarray(intercepts)
        return self

    def partial_fit(
        self, X: Any, y: Any, classes: Any = None
    ) -> "LogisticRegression":
        """Warm-start gradient descent on a new batch of ``(X, y)``.

        Parameters
        ----------
        X, y:
            The new batch of observations.
        classes:
            The full label set; required on the first call (later batches
            may not contain every class) and ignored afterwards.

        Returns
        -------
        ``self``, with weights advanced from their current values.
        """
        X = as_2d_array(X)
        y = as_1d_array(y)
        check_consistent_length(X, y)
        if self.classes_ is None:
            if classes is None:
                classes = np.unique(y)
            self.classes_ = np.unique(np.asarray(classes))
            if len(self.classes_) < 2:
                raise ValueError("need at least two classes")
        unknown = np.setdiff1d(np.unique(y), self.classes_)
        if len(unknown):
            raise ValueError(
                f"y contains labels unseen at the first partial_fit call: "
                f"{unknown.tolist()}"
            )
        n_binary = 1 if len(self.classes_) == 2 else len(self.classes_)
        if self.coef_ is None:
            self.coef_ = np.zeros((n_binary, X.shape[1]))
            self.intercept_ = np.zeros(n_binary)
        coefs, intercepts = [], []
        targets = (
            [self.classes_[1]] if n_binary == 1 else list(self.classes_)
        )
        for index, c in enumerate(targets):
            y01 = (y == c).astype(float)
            w, b = self._fit_binary(
                X, y01, w=self.coef_[index], b=float(self.intercept_[index])
            )
            coefs.append(w)
            intercepts.append(b)
        self.coef_ = np.vstack(coefs)
        self.intercept_ = np.asarray(intercepts)
        return self

    def predict_proba(self, X: Any) -> np.ndarray:
        """Class-membership probabilities, columns ordered by
        ``classes_``."""
        check_is_fitted(self, "coef_")
        X = as_2d_array(X)
        scores = X @ self.coef_.T + self.intercept_
        if len(self.classes_) == 2:
            p1 = _sigmoid(scores[:, 0])
            return np.column_stack([1.0 - p1, p1])
        probs = _sigmoid(scores)
        totals = probs.sum(axis=1, keepdims=True)
        totals[totals == 0.0] = 1.0
        return probs / totals

    def predict(self, X: Any) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    def decision_function(self, X: Any) -> np.ndarray:
        """Raw scores; for binary problems a 1-D array for the positive
        class (``classes_[1]``)."""
        check_is_fitted(self, "coef_")
        X = as_2d_array(X)
        scores = X @ self.coef_.T + self.intercept_
        if len(self.classes_) == 2:
            return scores[:, 0]
        return scores
