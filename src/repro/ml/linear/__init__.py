"""Linear models: OLS, ridge, logistic regression."""

from repro.ml.linear.linear_regression import LinearRegression, RidgeRegression
from repro.ml.linear.logistic import LogisticRegression

__all__ = ["LinearRegression", "RidgeRegression", "LogisticRegression"]
