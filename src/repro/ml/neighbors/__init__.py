"""k-nearest-neighbor models."""

from repro.ml.neighbors.knn import KNeighborsClassifier, KNeighborsRegressor

__all__ = ["KNeighborsRegressor", "KNeighborsClassifier"]
