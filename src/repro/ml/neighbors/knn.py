"""k-nearest-neighbor regression and classification.

"k nearest neighbors" is named both as a model-training technique and as
an imputation method in paper Section III.  Distances are computed with a
fully vectorized euclidean kernel; ``weights="distance"`` enables
inverse-distance weighting.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.ml.base import (
    BaseComponent,
    ClassifierMixin,
    RegressorMixin,
    as_1d_array,
    as_2d_array,
    check_consistent_length,
    check_is_fitted,
)

__all__ = ["KNeighborsRegressor", "KNeighborsClassifier"]


def _pairwise_sq_dists(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    sq = (
        (A**2).sum(axis=1)[:, None]
        + (B**2).sum(axis=1)[None, :]
        - 2.0 * A @ B.T
    )
    return np.maximum(sq, 0.0)


class _BaseKNN(BaseComponent):
    def __init__(self, n_neighbors: int = 5, weights: str = "uniform"):
        if n_neighbors < 1:
            raise ValueError("n_neighbors must be >= 1")
        if weights not in ("uniform", "distance"):
            raise ValueError("weights must be 'uniform' or 'distance'")
        self.n_neighbors = n_neighbors
        self.weights = weights
        self.X_: Optional[np.ndarray] = None
        self.y_: Optional[np.ndarray] = None

    def _neighbors(self, X: np.ndarray):
        k = min(self.n_neighbors, len(self.X_))
        dists = np.sqrt(_pairwise_sq_dists(X, self.X_))
        idx = np.argpartition(dists, k - 1, axis=1)[:, :k]
        neighbor_dists = np.take_along_axis(dists, idx, axis=1)
        if self.weights == "distance":
            with np.errstate(divide="ignore"):
                w = 1.0 / neighbor_dists
            # exact matches get all the weight
            exact = np.isinf(w)
            w[exact.any(axis=1)] = 0.0
            w[exact] = 1.0
        else:
            w = np.ones_like(neighbor_dists)
        return idx, w


class KNeighborsRegressor(RegressorMixin, _BaseKNN):
    """Predict the (weighted) mean target of the k nearest training
    rows."""

    def fit(self, X: Any, y: Any) -> "KNeighborsRegressor":
        X = as_2d_array(X)
        y = as_1d_array(y).astype(float)
        check_consistent_length(X, y)
        self.X_ = X.copy()
        self.y_ = y.copy()
        return self

    def predict(self, X: Any) -> np.ndarray:
        check_is_fitted(self, "X_")
        X = as_2d_array(X)
        if X.shape[1] != self.X_.shape[1]:
            raise ValueError(
                f"X has {X.shape[1]} features, model was fitted with "
                f"{self.X_.shape[1]}"
            )
        idx, w = self._neighbors(X)
        values = self.y_[idx]
        return (values * w).sum(axis=1) / w.sum(axis=1)


class KNeighborsClassifier(ClassifierMixin, _BaseKNN):
    """Predict the (weighted) majority class among the k nearest training
    rows."""

    def __init__(self, n_neighbors: int = 5, weights: str = "uniform"):
        super().__init__(n_neighbors=n_neighbors, weights=weights)
        self.classes_: Optional[np.ndarray] = None

    def fit(self, X: Any, y: Any) -> "KNeighborsClassifier":
        X = as_2d_array(X)
        y = as_1d_array(y)
        check_consistent_length(X, y)
        self.classes_, encoded = np.unique(y, return_inverse=True)
        self.X_ = X.copy()
        self.y_ = encoded
        return self

    def predict_proba(self, X: Any) -> np.ndarray:
        check_is_fitted(self, "X_")
        X = as_2d_array(X)
        if X.shape[1] != self.X_.shape[1]:
            raise ValueError(
                f"X has {X.shape[1]} features, model was fitted with "
                f"{self.X_.shape[1]}"
            )
        idx, w = self._neighbors(X)
        n_classes = len(self.classes_)
        proba = np.zeros((len(X), n_classes))
        labels = self.y_[idx]
        for c in range(n_classes):
            proba[:, c] = (w * (labels == c)).sum(axis=1)
        totals = proba.sum(axis=1, keepdims=True)
        totals[totals == 0.0] = 1.0
        return proba / totals

    def predict(self, X: Any) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]
