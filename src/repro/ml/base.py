"""Base contracts for transformers and estimators.

The paper adopts the scikit-learn component model: every node in a
Transformer-Estimator Graph is either a *Transformer* (``fit`` +
``transform``) or an *Estimator* (``fit`` + ``predict``), and node
hyper-parameters are addressed externally through the
``<node_name>__<param>`` naming convention (paper Section IV).  Because no
third-party ML framework is available in this environment, this module
defines those contracts from scratch; every component in :mod:`repro.ml`,
:mod:`repro.nn` and :mod:`repro.timeseries` implements them.

Parameter introspection mirrors scikit-learn: the constructor signature is
the single source of truth for a component's hyper-parameters, which makes
:func:`clone` and :meth:`BaseComponent.get_params` work for any component
without per-class boilerplate.
"""

from __future__ import annotations

import copy
import inspect
from typing import Any, Dict, Iterator, List, Tuple

import numpy as np

__all__ = [
    "BaseComponent",
    "TransformerMixin",
    "EstimatorMixin",
    "ClassifierMixin",
    "RegressorMixin",
    "ClusterMixin",
    "FusedStepKernel",
    "kernel_is_trustworthy",
    "PARITY_EXACT",
    "PARITY_TOLERANCE",
    "partial_fit_parity",
    "partial_fit_is_trustworthy",
    "supports_partial_fit",
    "NotFittedError",
    "clone",
    "check_is_fitted",
    "as_2d_array",
    "as_1d_array",
    "check_consistent_length",
]


class NotFittedError(RuntimeError):
    """Raised when ``transform``/``predict`` is called before ``fit``."""


def as_2d_array(X: Any, *, dtype: type = float, name: str = "X") -> np.ndarray:
    """Coerce ``X`` to a 2-D float array, validating shape.

    1-D input is interpreted as a single feature column.  Raises
    ``ValueError`` for empty input or ndim > 2, so that malformed data is
    rejected at the pipeline boundary rather than deep inside a model.
    """
    arr = np.asarray(X, dtype=dtype)
    if arr.ndim == 1:
        arr = arr.reshape(-1, 1)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 1-D or 2-D, got ndim={arr.ndim}")
    if arr.size == 0:
        raise ValueError(f"{name} is empty")
    if not np.all(np.isfinite(arr)):
        raise ValueError(
            f"{name} contains NaN or infinity; impute or drop bad rows first "
            "(see repro.ml.preprocessing.imputers)"
        )
    return arr


def as_1d_array(y: Any, *, name: str = "y") -> np.ndarray:
    """Coerce ``y`` to a 1-D array (labels or targets)."""
    arr = np.asarray(y)
    if arr.ndim == 2 and arr.shape[1] == 1:
        arr = arr.ravel()
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError(f"{name} is empty")
    return arr


def check_consistent_length(X: np.ndarray, y: np.ndarray) -> None:
    """Raise if ``X`` and ``y`` disagree on the number of samples."""
    if len(X) != len(y):
        raise ValueError(
            f"X and y have inconsistent lengths: {len(X)} != {len(y)}"
        )


def check_is_fitted(component: "BaseComponent", attribute: str) -> None:
    """Raise :class:`NotFittedError` unless ``attribute`` is set.

    By convention (borrowed from scikit-learn) attributes learned during
    ``fit`` carry a trailing underscore, e.g. ``mean_``.
    """
    if getattr(component, attribute, None) is None:
        raise NotFittedError(
            f"{type(component).__name__} is not fitted yet; call fit() "
            "before using this component"
        )


class BaseComponent:
    """Base class for every transformer and estimator in the library.

    Subclasses must declare all hyper-parameters as explicit keyword
    arguments in ``__init__`` and store them verbatim on ``self`` (no
    renaming, no validation side effects) — this is what makes
    :meth:`get_params`, :meth:`set_params` and :func:`clone` generic.
    """

    @classmethod
    def _param_names(cls) -> List[str]:
        init = cls.__init__
        if init is object.__init__:
            return []
        signature = inspect.signature(init)
        names = []
        for name, parameter in signature.parameters.items():
            if name == "self":
                continue
            if parameter.kind in (
                inspect.Parameter.VAR_POSITIONAL,
                inspect.Parameter.VAR_KEYWORD,
            ):
                raise TypeError(
                    f"{cls.__name__}.__init__ must declare explicit "
                    "parameters (no *args/**kwargs) for introspection"
                )
            names.append(name)
        return sorted(names)

    def get_params(self) -> Dict[str, Any]:
        """Return the component's hyper-parameters as a dict."""
        return {name: getattr(self, name) for name in self._param_names()}

    def set_params(self, **params: Any) -> "BaseComponent":
        """Set hyper-parameters; unknown names raise ``ValueError``."""
        valid = set(self._param_names())
        for name, value in params.items():
            if name not in valid:
                raise ValueError(
                    f"invalid parameter {name!r} for {type(self).__name__}; "
                    f"valid parameters: {sorted(valid)}"
                )
            setattr(self, name, value)
        return self

    def iter_params(self) -> Iterator[Tuple[str, Any]]:
        """Iterate ``(name, value)`` pairs in sorted name order."""
        return iter(sorted(self.get_params().items()))

    def __repr__(self) -> str:
        params = ", ".join(
            f"{name}={value!r}" for name, value in self.iter_params()
        )
        return f"{type(self).__name__}({params})"


def clone(component: BaseComponent) -> BaseComponent:
    """Return an unfitted copy of ``component`` with identical parameters.

    Parameter values are deep-copied so that mutable defaults (lists of
    sub-components, arrays) are not shared between the original and the
    clone — essential when the same graph node is fitted concurrently on
    different cross-validation folds.  Objects exposing their own
    ``clone()`` (e.g. :class:`repro.core.pipeline.Pipeline`) delegate to
    it.
    """
    custom = getattr(component, "clone", None)
    if callable(custom):
        return custom()
    params = {
        name: copy.deepcopy(value)
        for name, value in component.get_params().items()
    }
    return type(component)(**params)


class FusedStepKernel:
    """One transformer stage compiled to a pair of pure array functions.

    The plan compiler (:mod:`repro.core.compile`) fuses chains of these
    into a single per-fold routine that skips component cloning and
    attribute bookkeeping entirely.  The contract is strict numerical
    parity with the component that produced the kernel:

    * ``fit(X, y) -> state`` must perform exactly the computation (and
      input validation) of ``component.fit`` and return the learned
      statistics as a plain value instead of setting attributes.
    * ``transform(X, state) -> ndarray`` must reproduce
      ``component.transform`` bit-for-bit, including its validation and
      error behaviour.

    Under that contract the compiled and interpreted execution paths
    produce byte-identical transformed folds — which is what lets the
    engine reuse the *same* :class:`~repro.store.keys.ArtifactKey` for
    both.
    """

    __slots__ = ("fit", "transform")

    def __init__(
        self,
        fit: "Any",
        transform: "Any",
    ):
        self.fit = fit
        self.transform = transform


def kernel_is_trustworthy(component: Any) -> bool:
    """Whether ``component``'s ``fused_kernel`` may stand in for its
    ``fit``/``transform``.

    A subclass that overrides ``fit``, ``transform`` or
    ``fit_transform`` *below* the class providing ``fused_kernel``
    (e.g. a user subclass of ``StandardScaler`` with custom fitting)
    would silently lose its override if the inherited kernel ran
    instead — so any such override disqualifies the kernel and the
    stage must run interpreted.
    """
    mro = type(component).__mro__

    def definer_index(name: str) -> "int | None":
        for index, klass in enumerate(mro):
            if name in vars(klass):
                return index
        return None

    kernel_index = definer_index("fused_kernel")
    if kernel_index is None:
        return False
    for name in ("fit", "transform", "fit_transform"):
        method_index = definer_index(name)
        if method_index is not None and method_index < kernel_index:
            return False
    return True


#: Parity classes a ``partial_fit``-capable component must declare via its
#: ``partial_fit_parity`` class attribute.  ``PARITY_EXACT`` promises that a
#: sequence of ``partial_fit`` calls covering rows ``[0, n)`` yields *byte
#: identical* fitted state to one cold ``fit`` on those rows.  For
#: ``PARITY_TOLERANCE`` the states agree only up to floating-point
#: accumulation order (e.g. streaming mean/variance merges, warm-started
#: gradient descent) and downstream consumers must compare scores with a
#: documented tolerance instead of asserting equality.
PARITY_EXACT = "exact"
PARITY_TOLERANCE = "tolerance"


def partial_fit_parity(component: Any) -> "str | None":
    """The declared incremental-vs-cold parity class of ``component``.

    Parameters
    ----------
    component:
        Any transformer or estimator (instance or class).

    Returns
    -------
    ``"exact"``, ``"tolerance"``, or ``None`` when the component does not
    implement ``partial_fit`` at all.  A component that implements
    ``partial_fit`` without declaring a valid parity class raises
    ``TypeError`` — the declaration is mandatory so that reuse layers
    (:mod:`repro.streaming`) know whether warm-started results may be
    byte-compared against cold recomputes.
    """
    if not callable(getattr(component, "partial_fit", None)):
        return None
    parity = getattr(component, "partial_fit_parity", None)
    if parity not in (PARITY_EXACT, PARITY_TOLERANCE):
        cls = component if inspect.isclass(component) else type(component)
        raise TypeError(
            f"{cls.__name__} implements partial_fit but declares "
            f"partial_fit_parity={parity!r}; expected "
            f"{PARITY_EXACT!r} or {PARITY_TOLERANCE!r}"
        )
    return parity


def partial_fit_is_trustworthy(component: Any) -> bool:
    """Whether ``component``'s inherited ``partial_fit`` may stand in for
    its ``fit``.

    Mirrors :func:`kernel_is_trustworthy`: a subclass that overrides
    ``fit``, ``transform`` or ``fit_transform`` *below* the class providing
    ``partial_fit`` (e.g. a user subclass of ``StandardScaler`` with a
    custom ``fit``) would silently diverge from its override if the
    inherited incremental path ran instead — so any such override
    disqualifies ``partial_fit`` and the component must be refitted cold.
    """
    mro = type(component).__mro__

    def definer_index(name: str) -> "int | None":
        for index, klass in enumerate(mro):
            if name in vars(klass):
                return index
        return None

    pf_index = definer_index("partial_fit")
    if pf_index is None:
        return False
    for name in ("fit", "transform", "fit_transform"):
        method_index = definer_index(name)
        if method_index is not None and method_index < pf_index:
            return False
    return True


def supports_partial_fit(component: Any) -> bool:
    """Whether ``component`` can be incrementally updated right now.

    Parameters
    ----------
    component:
        A transformer or estimator instance.

    Returns
    -------
    ``True`` only when the component implements ``partial_fit``, declares
    a valid parity class, passes the :func:`partial_fit_is_trustworthy`
    subclass guard, and — if it exposes a ``_partial_fit_ready()``
    instance hook — that hook returns ``True`` (components such as
    ``WindowScaler`` use the hook to opt out when their *configured inner
    component* cannot be updated incrementally).
    """
    if not callable(getattr(component, "partial_fit", None)):
        return False
    try:
        partial_fit_parity(component)
    except TypeError:
        return False
    if not partial_fit_is_trustworthy(component):
        return False
    ready = getattr(component, "_partial_fit_ready", None)
    if callable(ready) and not ready():
        return False
    return True


class TransformerMixin:
    """Mixin for components implementing ``fit`` + ``transform``.

    Paper Section IV: "A Transform operation uses a trained model on
    individual data items or a collection of items to produce a new data
    item."
    """

    is_transformer = True
    is_estimator = False

    def fit_transform(self, X: Any, y: Any = None) -> np.ndarray:
        """Fit to ``(X, y)`` then transform ``X`` — the "fit & transform"
        operation applied to internal pipeline nodes (paper Fig. 5)."""
        return self.fit(X, y).transform(X)

    def fused_kernel(self) -> "FusedStepKernel | None":
        """Optional compiled form of this transformer.

        Stateless transformers (whose fitted state is a pure function of
        the training fold) return a :class:`FusedStepKernel` that the
        plan compiler chains into one vectorized per-fold routine;
        transformers without a safe kernel return ``None`` and run
        interpreted.  ``tools/check_fusion_coverage.py`` lints that every
        stateless transformer either overrides this or is explicitly
        exempted.
        """
        return None


class EstimatorMixin:
    """Mixin for components implementing ``fit`` + ``predict``.

    Paper Section IV: "An Estimate operation is typically applied to a
    collection of data items to produce a trained model."
    """

    is_transformer = False
    is_estimator = True


class RegressorMixin(EstimatorMixin):
    """Estimator predicting continuous targets."""

    task = "regression"

    def score(self, X: Any, y: Any) -> float:
        """Coefficient of determination R^2 on ``(X, y)``."""
        from repro.ml.metrics.regression import r2_score

        return r2_score(as_1d_array(y), self.predict(X))


class ClassifierMixin(EstimatorMixin):
    """Estimator predicting discrete class labels."""

    task = "classification"

    def score(self, X: Any, y: Any) -> float:
        """Accuracy on ``(X, y)``."""
        from repro.ml.metrics.classification import accuracy_score

        return accuracy_score(as_1d_array(y), self.predict(X))


class ClusterMixin(EstimatorMixin):
    """Estimator assigning cluster labels (used by Cohort Analysis)."""

    task = "clustering"
