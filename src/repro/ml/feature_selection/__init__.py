"""Feature selection: SelectKBest with pluggable relevance scorers."""

from repro.ml.feature_selection.scoring import (
    SCORERS,
    entropy_score,
    f_score,
    get_scorer,
    information_gain,
    variance_score,
)
from repro.ml.feature_selection.select_k_best import (
    SelectKBest,
    VarianceThreshold,
)

__all__ = [
    "SelectKBest",
    "VarianceThreshold",
    "f_score",
    "information_gain",
    "entropy_score",
    "variance_score",
    "get_scorer",
    "SCORERS",
]
