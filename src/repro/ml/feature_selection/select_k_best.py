"""SelectKBest feature selection (paper Fig. 3, Table I)."""

from __future__ import annotations

from typing import Any, Callable, Optional, Union

import numpy as np

from repro.ml.base import (
    BaseComponent,
    FusedStepKernel,
    TransformerMixin,
    as_1d_array,
    as_2d_array,
    check_is_fitted,
)
from repro.ml.feature_selection.scoring import get_scorer

__all__ = ["SelectKBest", "VarianceThreshold"]


class SelectKBest(TransformerMixin, BaseComponent):
    """Keep the ``k`` features with the highest relevance scores.

    Parameters
    ----------
    k:
        Number of features to keep; clipped to the number of available
        features at fit time (so the same graph node works across datasets
        of different widths, which matters when graphs are shared through
        the DARR).
    score_func:
        A scorer name from :mod:`repro.ml.feature_selection.scoring`
        (``"f_score"``, ``"information_gain"``, ``"entropy"``,
        ``"variance"``) or any callable ``(X, y) -> scores``.
    """

    def __init__(
        self,
        k: int = 10,
        score_func: Union[str, Callable] = "f_score",
    ):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.score_func = score_func
        self.scores_: Optional[np.ndarray] = None
        self.support_: Optional[np.ndarray] = None

    def _resolve_scorer(self) -> Callable:
        if callable(self.score_func):
            return self.score_func
        return get_scorer(self.score_func)

    def fit(self, X: Any, y: Any = None) -> "SelectKBest":
        X = as_2d_array(X)
        scorer = self._resolve_scorer()
        if y is None:
            scores = scorer(X, None)
        else:
            scores = scorer(X, as_1d_array(y))
        scores = np.asarray(scores, dtype=float)
        if scores.shape != (X.shape[1],):
            raise ValueError(
                f"scorer returned shape {scores.shape}, expected "
                f"({X.shape[1]},)"
            )
        k = min(self.k, X.shape[1])
        # argsort is ascending; take the k largest, then restore column
        # order so the selected features keep their original arrangement.
        top = np.sort(np.argsort(scores)[-k:])
        support = np.zeros(X.shape[1], dtype=bool)
        support[top] = True
        self.scores_ = scores
        self.support_ = support
        return self

    def transform(self, X: Any) -> np.ndarray:
        check_is_fitted(self, "support_")
        X = as_2d_array(X)
        if X.shape[1] != self.support_.shape[0]:
            raise ValueError(
                f"X has {X.shape[1]} features, selector was fitted with "
                f"{self.support_.shape[0]}"
            )
        return X[:, self.support_]

    def get_support(self) -> np.ndarray:
        """Boolean mask of selected features."""
        check_is_fitted(self, "support_")
        return self.support_.copy()

    def fused_kernel(self) -> FusedStepKernel:
        """Bit-identical fused ``(fit, transform)`` kernel of this stage."""
        k_param = self.k
        scorer = self._resolve_scorer()

        def fit(X: Any, y: Any = None) -> np.ndarray:
            X = as_2d_array(X)
            if y is None:
                scores = scorer(X, None)
            else:
                scores = scorer(X, as_1d_array(y))
            scores = np.asarray(scores, dtype=float)
            if scores.shape != (X.shape[1],):
                raise ValueError(
                    f"scorer returned shape {scores.shape}, expected "
                    f"({X.shape[1]},)"
                )
            k = min(k_param, X.shape[1])
            top = np.sort(np.argsort(scores)[-k:])
            support = np.zeros(X.shape[1], dtype=bool)
            support[top] = True
            return support

        def transform(X: Any, state: np.ndarray) -> np.ndarray:
            X = as_2d_array(X)
            if X.shape[1] != state.shape[0]:
                raise ValueError(
                    f"X has {X.shape[1]} features, selector was fitted with "
                    f"{state.shape[0]}"
                )
            return X[:, state]

        return FusedStepKernel(fit, transform)


class VarianceThreshold(TransformerMixin, BaseComponent):
    """Drop features whose variance is at or below ``threshold``.

    If every feature would be dropped, the single highest-variance feature
    is kept so downstream estimators always receive at least one column.
    """

    def __init__(self, threshold: float = 0.0):
        if threshold < 0:
            raise ValueError("threshold must be >= 0")
        self.threshold = threshold
        self.variances_: Optional[np.ndarray] = None
        self.support_: Optional[np.ndarray] = None

    def fit(self, X: Any, y: Any = None) -> "VarianceThreshold":
        X = as_2d_array(X)
        self.variances_ = X.var(axis=0)
        support = self.variances_ > self.threshold
        if not support.any():
            support[np.argmax(self.variances_)] = True
        self.support_ = support
        return self

    def transform(self, X: Any) -> np.ndarray:
        check_is_fitted(self, "support_")
        X = as_2d_array(X)
        return X[:, self.support_]

    def fused_kernel(self) -> FusedStepKernel:
        """Bit-identical fused ``(fit, transform)`` kernel of this stage."""
        threshold = self.threshold

        def fit(X: Any, y: Any = None) -> np.ndarray:
            X = as_2d_array(X)
            variances = X.var(axis=0)
            support = variances > threshold
            if not support.any():
                support[np.argmax(variances)] = True
            return support

        def transform(X: Any, state: np.ndarray) -> np.ndarray:
            X = as_2d_array(X)
            return X[:, state]

        return FusedStepKernel(fit, transform)
