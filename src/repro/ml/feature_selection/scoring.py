"""Feature scoring functions for ``SelectKBest``.

Table I of the paper lists "Select K-Best", "Information Gain" and
"Entropy" as the feature-selection options a data scientist iterates over.
We expose each as a scoring function: ``f_score`` (the classic univariate
F statistic for regression targets), ``information_gain`` (mutual
information between a discretized feature and the target — the "Information
Gain" row) and ``entropy_score`` (ranks features by their own entropy, a
model-free relevance proxy — the "Entropy" row), plus ``variance_score``.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

__all__ = [
    "f_score",
    "information_gain",
    "entropy_score",
    "variance_score",
    "get_scorer",
    "SCORERS",
]


def _validate(X: np.ndarray, y: np.ndarray) -> None:
    if X.ndim != 2:
        raise ValueError("X must be 2-D")
    if len(X) != len(y):
        raise ValueError("X and y have inconsistent lengths")


def f_score(X: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Univariate F statistic of each feature against a continuous target.

    Equivalent to sklearn's ``f_regression``: the squared Pearson
    correlation converted to an F value with ``n - 2`` degrees of freedom.
    Constant features score 0.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float).ravel()
    _validate(X, y)
    n = len(y)
    xc = X - X.mean(axis=0)
    yc = y - y.mean()
    x_norm = np.sqrt((xc**2).sum(axis=0))
    y_norm = np.sqrt((yc**2).sum())
    denom = x_norm * y_norm
    with np.errstate(divide="ignore", invalid="ignore"):
        corr = (xc * yc[:, None]).sum(axis=0) / denom
    corr = np.where(denom == 0.0, 0.0, corr)
    corr = np.clip(corr, -1.0 + 1e-12, 1.0 - 1e-12)
    dof = max(n - 2, 1)
    return corr**2 / (1.0 - corr**2) * dof


def _entropy(counts: np.ndarray) -> float:
    p = counts / counts.sum()
    p = p[p > 0]
    return float(-(p * np.log2(p)).sum())


def _discretize(values: np.ndarray, n_bins: int) -> np.ndarray:
    """Equal-frequency discretization; constant columns become one bin."""
    edges = np.quantile(values, np.linspace(0, 1, n_bins + 1)[1:-1])
    return np.searchsorted(edges, values, side="right")


def information_gain(
    X: np.ndarray, y: np.ndarray, n_bins: int = 8
) -> np.ndarray:
    """Mutual information I(feature; target) after discretization.

    Both the feature and (if continuous) the target are binned into
    ``n_bins`` equal-frequency bins; the score is
    ``H(y) - H(y | feature)``, i.e. the information-gain criterion of
    Table I.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y).ravel()
    _validate(X, y)
    if np.issubdtype(y.dtype, np.floating) and len(np.unique(y)) > n_bins:
        y_bins = _discretize(y.astype(float), n_bins)
    else:
        _, y_bins = np.unique(y, return_inverse=True)
    h_y = _entropy(np.bincount(y_bins))
    scores = np.empty(X.shape[1])
    for j in range(X.shape[1]):
        x_bins = _discretize(X[:, j], n_bins)
        h_cond = 0.0
        total = len(y_bins)
        for bin_value in np.unique(x_bins):
            mask = x_bins == bin_value
            weight = mask.sum() / total
            h_cond += weight * _entropy(np.bincount(y_bins[mask]))
        scores[j] = max(h_y - h_cond, 0.0)
    return scores


def entropy_score(
    X: np.ndarray, y: np.ndarray = None, n_bins: int = 8
) -> np.ndarray:
    """Entropy of each (discretized) feature; higher = more informative.

    A target-free relevance proxy: low-entropy (near-constant) features
    carry little information regardless of the task.
    """
    X = np.asarray(X, dtype=float)
    if X.ndim != 2:
        raise ValueError("X must be 2-D")
    scores = np.empty(X.shape[1])
    for j in range(X.shape[1]):
        bins = _discretize(X[:, j], n_bins)
        scores[j] = _entropy(np.bincount(bins))
    return scores


def variance_score(X: np.ndarray, y: np.ndarray = None) -> np.ndarray:
    """Per-feature variance (the simplest unsupervised relevance score)."""
    X = np.asarray(X, dtype=float)
    if X.ndim != 2:
        raise ValueError("X must be 2-D")
    return X.var(axis=0)


SCORERS: Dict[str, Callable] = {
    "f_score": f_score,
    "information_gain": information_gain,
    "entropy": entropy_score,
    "variance": variance_score,
}


def get_scorer(name: str) -> Callable:
    """Look up a feature scorer by name; raises ``KeyError`` with the list
    of valid names on a miss."""
    try:
        return SCORERS[name]
    except KeyError:
        raise KeyError(
            f"unknown feature scorer {name!r}; available: {sorted(SCORERS)}"
        ) from None
