"""CART decision trees."""

from repro.ml.tree.decision_tree import (
    DecisionTreeClassifier,
    DecisionTreeRegressor,
)

__all__ = ["DecisionTreeRegressor", "DecisionTreeClassifier"]
