"""CART decision trees (regression and classification).

Decision trees appear throughout the paper: ``DecisionTree()`` is an
estimator option in the Fig. 3 regression graph and trees underpin the
random-forest and gradient-boosting options of Section III.  Split search
is vectorized per feature: candidate thresholds come from sorting the
feature once and evaluating all split points with cumulative statistics,
giving O(n log n) per feature per node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

import numpy as np

from repro.ml.base import (
    BaseComponent,
    ClassifierMixin,
    RegressorMixin,
    as_1d_array,
    as_2d_array,
    check_consistent_length,
    check_is_fitted,
)

__all__ = ["DecisionTreeRegressor", "DecisionTreeClassifier"]


@dataclass
class _Node:
    """A tree node; leaves have ``feature is None``."""

    value: np.ndarray  # mean target (regression) or class counts
    n_samples: int
    impurity: float
    feature: Optional[int] = None
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    depth: int = 0

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


def _best_split_mse(
    X: np.ndarray, y: np.ndarray, feature_indices: np.ndarray,
    min_samples_leaf: int,
) -> Tuple[Optional[int], float, float]:
    """Best (feature, threshold) minimizing weighted child MSE.

    Returns ``(feature, threshold, gain)``; feature is ``None`` when no
    valid split exists.  Uses prefix sums of y and y^2 over each sorted
    feature so every split point is evaluated in O(1).
    """
    n = len(y)
    total_sum = y.sum()
    total_sq = (y**2).sum()
    parent_sse = total_sq - total_sum**2 / n
    # Start below zero so zero-gain splits are still taken: XOR-like
    # targets need a first split that does not reduce impurity by itself.
    best_gain = -1e-9
    best_feature: Optional[int] = None
    best_threshold = 0.0
    for j in feature_indices:
        order = np.argsort(X[:, j], kind="stable")
        xs = X[order, j]
        ys = y[order]
        # split after position i means left = ys[:i+1]
        csum = np.cumsum(ys)
        csq = np.cumsum(ys**2)
        idx = np.arange(1, n)  # left sizes
        valid = (xs[1:] > xs[:-1])  # threshold must separate values
        valid &= (idx >= min_samples_leaf) & (n - idx >= min_samples_leaf)
        if not valid.any():
            continue
        left_sum = csum[:-1]
        left_sq = csq[:-1]
        right_sum = total_sum - left_sum
        right_sq = total_sq - left_sq
        left_sse = left_sq - left_sum**2 / idx
        right_sse = right_sq - right_sum**2 / (n - idx)
        gain = parent_sse - (left_sse + right_sse)
        gain = np.where(valid, gain, -np.inf)
        k = int(np.argmax(gain))
        if gain[k] > best_gain + 1e-12:
            best_gain = float(gain[k])
            best_feature = int(j)
            best_threshold = float((xs[k] + xs[k + 1]) / 2.0)
    return best_feature, best_threshold, best_gain


def _batched_split_mse(
    X: np.ndarray,
    y: np.ndarray,
    rows: np.ndarray,
    orders: np.ndarray,
    feature_indices: np.ndarray,
    min_samples_leaf: int,
) -> Tuple[Optional[int], float, float]:
    """Batched form of :func:`_best_split_mse` over maintained orders.

    ``rows`` are the node's row ids into the tree-level ``X``/``y``;
    ``orders`` holds, per feature column, those same row ids stably
    sorted by the feature value.  All candidate features are evaluated
    in one vectorized pass, but the winning feature is selected by
    replaying the sequential ``> best_gain + 1e-12`` tie-break in
    feature order so the result is bit-identical to the per-feature
    loop.
    """
    m = len(rows)
    y_node = y[rows]
    total_sum = y_node.sum()
    total_sq = (y_node**2).sum()
    parent_sse = total_sq - total_sum**2 / m
    sub = orders[:, feature_indices]
    xs = X[sub, feature_indices]
    ys = y[sub]
    csum = ys.cumsum(axis=0)
    csq = (ys**2).cumsum(axis=0)
    idx = np.arange(1, m)
    valid = xs[1:] > xs[:-1]
    valid &= (
        (idx >= min_samples_leaf) & (m - idx >= min_samples_leaf)
    )[:, None]
    left_sum = csum[:-1]
    left_sq = csq[:-1]
    right_sum = total_sum - left_sum
    right_sq = total_sq - left_sq
    left_sse = left_sq - left_sum**2 / idx[:, None]
    right_sse = right_sq - right_sum**2 / (m - idx)[:, None]
    gain = parent_sse - (left_sse + right_sse)
    gain = np.where(valid, gain, -np.inf)
    ks = gain.argmax(axis=0)
    best_gain = -1e-9
    best_feature: Optional[int] = None
    best_threshold = 0.0
    for col, j in enumerate(feature_indices):
        k = int(ks[col])
        g = gain[k, col]
        if g > best_gain + 1e-12:
            best_gain = float(g)
            best_feature = int(j)
            best_threshold = float((xs[k, col] + xs[k + 1, col]) / 2.0)
    return best_feature, best_threshold, best_gain


def _batched_split_gini(
    X: np.ndarray,
    Y: np.ndarray,
    rows: np.ndarray,
    orders: np.ndarray,
    feature_indices: np.ndarray,
    min_samples_leaf: int,
) -> Tuple[Optional[int], float, float]:
    """Batched form of :func:`_best_split_gini` over maintained orders."""
    m = len(rows)
    counts_node = Y[rows]
    total_counts = counts_node.sum(axis=0)
    parent_gini = 1.0 - ((total_counts / m) ** 2).sum()
    sub = orders[:, feature_indices]
    xs = X[sub, feature_indices]
    counts = Y[sub].cumsum(axis=0)
    idx = np.arange(1, m)
    valid = xs[1:] > xs[:-1]
    valid &= (
        (idx >= min_samples_leaf) & (m - idx >= min_samples_leaf)
    )[:, None]
    left_counts = counts[:-1]
    right_counts = total_counts - left_counts
    left_n = idx[:, None, None]
    right_n = (m - idx)[:, None, None]
    gini_left = 1.0 - ((left_counts / left_n) ** 2).sum(axis=2)
    gini_right = 1.0 - ((right_counts / right_n) ** 2).sum(axis=2)
    weighted = (
        idx[:, None] * gini_left + (m - idx)[:, None] * gini_right
    ) / m
    gain = np.where(valid, parent_gini - weighted, -np.inf)
    ks = gain.argmax(axis=0)
    best_gain = -1e-9
    best_feature: Optional[int] = None
    best_threshold = 0.0
    for col, j in enumerate(feature_indices):
        k = int(ks[col])
        g = gain[k, col]
        if g > best_gain + 1e-12:
            best_gain = float(g)
            best_feature = int(j)
            best_threshold = float((xs[k, col] + xs[k + 1, col]) / 2.0)
    return best_feature, best_threshold, best_gain


def _best_split_gini(
    X: np.ndarray, Y: np.ndarray, feature_indices: np.ndarray,
    min_samples_leaf: int,
) -> Tuple[Optional[int], float, float]:
    """Best split minimizing weighted Gini impurity.

    ``Y`` is a one-hot (n, n_classes) indicator matrix; cumulative class
    counts along each sorted feature give O(1) impurity per split point.
    """
    n = len(Y)
    total_counts = Y.sum(axis=0)
    parent_gini = 1.0 - ((total_counts / n) ** 2).sum()
    best_gain = -1e-9
    best_feature: Optional[int] = None
    best_threshold = 0.0
    for j in feature_indices:
        order = np.argsort(X[:, j], kind="stable")
        xs = X[order, j]
        counts = np.cumsum(Y[order], axis=0)
        idx = np.arange(1, n)
        valid = (xs[1:] > xs[:-1])
        valid &= (idx >= min_samples_leaf) & (n - idx >= min_samples_leaf)
        if not valid.any():
            continue
        left_counts = counts[:-1]
        right_counts = total_counts - left_counts
        left_n = idx[:, None]
        right_n = (n - idx)[:, None]
        gini_left = 1.0 - ((left_counts / left_n) ** 2).sum(axis=1)
        gini_right = 1.0 - ((right_counts / right_n) ** 2).sum(axis=1)
        weighted = (idx * gini_left + (n - idx) * gini_right) / n
        gain = np.where(valid, parent_gini - weighted, -np.inf)
        k = int(np.argmax(gain))
        if gain[k] > best_gain + 1e-12:
            best_gain = float(gain[k])
            best_feature = int(j)
            best_threshold = float((xs[k] + xs[k + 1]) / 2.0)
    return best_feature, best_threshold, best_gain


class _BaseDecisionTree(BaseComponent):
    """Shared growth/inference machinery for both tree flavors."""

    def __init__(
        self,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: Optional[Any] = None,
        random_state: Optional[int] = None,
    ):
        if max_depth is not None and max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state
        self.root_: Optional[_Node] = None
        self.n_features_: Optional[int] = None
        self.feature_importances_: Optional[np.ndarray] = None

    # -- subclass hooks -------------------------------------------------
    def _leaf_value(self, targets: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _impurity(self, targets: np.ndarray) -> float:
        raise NotImplementedError

    def _find_split(self, X, targets, features):
        raise NotImplementedError

    def _find_split_batched(self, X, targets, rows, orders, features):
        raise NotImplementedError

    def _is_pure(self, targets: np.ndarray) -> bool:
        raise NotImplementedError

    def _node_stats(
        self, targets: np.ndarray
    ) -> Tuple[np.ndarray, float, bool]:
        """``(leaf value, impurity, is pure)`` for one node's targets.

        Exactly the values of the three separate methods; criterion
        subclasses override this to share the underlying reductions
        instead of recomputing them per call — the batched grower
        evaluates it at every node, where the per-call overhead of the
        separate numpy reductions dominates the arithmetic.
        """
        return (
            self._leaf_value(targets),
            self._impurity(targets),
            self._is_pure(targets),
        )

    # --------------------------------------------------------------------
    def _resolve_max_features(self, n_features: int) -> int:
        mf = self.max_features
        if mf is None:
            return n_features
        if mf == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if mf == "log2":
            return max(1, int(np.log2(n_features)))
        if isinstance(mf, float):
            return max(1, int(mf * n_features))
        if isinstance(mf, int):
            return max(1, min(mf, n_features))
        raise ValueError(f"unsupported max_features {mf!r}")

    def _grow(
        self,
        X: np.ndarray,
        targets: np.ndarray,
        depth: int,
        rng: np.random.Generator,
        importances: np.ndarray,
    ) -> _Node:
        node = _Node(
            value=self._leaf_value(targets),
            n_samples=len(targets),
            impurity=self._impurity(targets),
            depth=depth,
        )
        if (
            len(targets) < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or self._is_pure(targets)
        ):
            return node
        n_features = X.shape[1]
        k = self._resolve_max_features(n_features)
        if k < n_features:
            features = rng.choice(n_features, size=k, replace=False)
        else:
            features = np.arange(n_features)
        feature, threshold, gain = self._find_split(X, targets, features)
        if feature is None:
            return node
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        importances[feature] += max(gain, 0.0)
        node.left = self._grow(
            X[mask], targets[mask], depth + 1, rng, importances
        )
        node.right = self._grow(
            X[~mask], targets[~mask], depth + 1, rng, importances
        )
        return node

    def _fit_tree(self, X: np.ndarray, targets: np.ndarray) -> None:
        self.n_features_ = X.shape[1]
        rng = np.random.default_rng(self.random_state)
        importances = np.zeros(self.n_features_)
        self.root_ = self._grow(X, targets, 0, rng, importances)
        total = importances.sum()
        self.feature_importances_ = (
            importances / total if total > 0 else importances
        )

    def _grow_batched(
        self,
        X: np.ndarray,
        targets: np.ndarray,
        rows: np.ndarray,
        orders: np.ndarray,
        depth: int,
        rng: np.random.Generator,
        importances: np.ndarray,
        in_left: np.ndarray,
    ) -> _Node:
        """Grow a node from maintained per-feature sort orders.

        Mirrors :meth:`_grow` exactly — same guards, same RNG call sites,
        same reduction element order — but never re-sorts: each child's
        orders are the parent's orders filtered by split membership, which
        preserves stable sort order because retained rows keep their
        relative positions.
        """
        node_targets = targets[rows]
        value, impurity, is_pure = self._node_stats(node_targets)
        node = _Node(
            value=value,
            n_samples=len(rows),
            impurity=impurity,
            depth=depth,
        )
        if (
            len(rows) < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or is_pure
        ):
            return node
        n_features = X.shape[1]
        k = self._resolve_max_features(n_features)
        if k < n_features:
            features = rng.choice(n_features, size=k, replace=False)
        else:
            features = np.arange(n_features)
        feature, threshold, gain = self._find_split_batched(
            X, targets, rows, orders, features
        )
        if feature is None:
            return node
        node.feature = feature
        node.threshold = threshold
        importances[feature] += max(gain, 0.0)
        left_mask = X[rows, feature] <= threshold
        left_rows = rows[left_mask]
        right_rows = rows[~left_mask]
        in_left[left_rows] = True
        keep = in_left[orders]
        in_left[left_rows] = False
        f = orders.shape[1]
        left_orders = orders.T[keep.T].reshape(f, len(left_rows)).T
        right_orders = orders.T[~keep.T].reshape(f, len(right_rows)).T
        node.left = self._grow_batched(
            X, targets, left_rows, left_orders, depth + 1, rng,
            importances, in_left,
        )
        node.right = self._grow_batched(
            X, targets, right_rows, right_orders, depth + 1, rng,
            importances, in_left,
        )
        return node

    def _fit_tree_batched(self, X: np.ndarray, targets: np.ndarray) -> None:
        """Batched twin of :meth:`_fit_tree`: sort every feature once at
        the root, then maintain the orders down the recursion.  Produces a
        bit-identical tree (structure, thresholds, leaf values, feature
        importances) to the interpreted path."""
        self.n_features_ = X.shape[1]
        rng = np.random.default_rng(self.random_state)
        importances = np.zeros(self.n_features_)
        orders = np.argsort(X, axis=0, kind="stable")
        rows = np.arange(len(X))
        in_left = np.zeros(len(X), dtype=bool)
        self.root_ = self._grow_batched(
            X, targets, rows, orders, 0, rng, importances, in_left
        )
        total = importances.sum()
        self.feature_importances_ = (
            importances / total if total > 0 else importances
        )

    def _leaf_for(self, row: np.ndarray) -> _Node:
        node = self.root_
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node

    def _leaf_values(self, X: np.ndarray) -> np.ndarray:
        check_is_fitted(self, "root_")
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"X has {X.shape[1]} features, tree was fitted with "
                f"{self.n_features_}"
            )
        return np.stack([self._leaf_for(row).value for row in X])

    @property
    def depth_(self) -> int:
        """Maximum depth of the grown tree."""
        check_is_fitted(self, "root_")

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return node.depth
            return max(walk(node.left), walk(node.right))

        return walk(self.root_)

    @property
    def n_leaves_(self) -> int:
        """Number of leaves in the grown tree."""
        check_is_fitted(self, "root_")

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 1
            return walk(node.left) + walk(node.right)

        return walk(self.root_)

    def decision_rules(self) -> List[str]:
        """Human-readable root-to-leaf rules.

        Supports the paper's interpretability requirement ("can it be
        described using simple rules?", Section II) and the RCA template.
        """
        check_is_fitted(self, "root_")
        rules: List[str] = []

        def walk(node: _Node, conditions: List[str]) -> None:
            if node.is_leaf:
                head = " and ".join(conditions) if conditions else "always"
                rules.append(f"if {head} then value={node.value}")
                return
            walk(
                node.left,
                conditions + [f"x[{node.feature}] <= {node.threshold:.4g}"],
            )
            walk(
                node.right,
                conditions + [f"x[{node.feature}] > {node.threshold:.4g}"],
            )

        walk(self.root_, [])
        return rules


class DecisionTreeRegressor(RegressorMixin, _BaseDecisionTree):
    """CART regression tree minimizing mean squared error."""

    def _leaf_value(self, targets: np.ndarray) -> np.ndarray:
        return np.asarray(targets.mean())

    def _impurity(self, targets: np.ndarray) -> float:
        return float(targets.var())

    def _is_pure(self, targets: np.ndarray) -> bool:
        return bool(targets.var() < 1e-12)

    def _node_stats(
        self, targets: np.ndarray
    ) -> Tuple[np.ndarray, float, bool]:
        # one pass over the node's targets: mean and variance replay
        # the exact ufunc sequence ndarray.mean()/ndarray.var() perform
        # (sum / n, deviations squared in place, sum / n), so the
        # values — and therefore the grown tree — are bit-identical to
        # the per-method path while skipping its per-call machinery
        n = targets.shape[0]
        mean = targets.sum() / n
        dev = targets - mean
        dev *= dev
        var = dev.sum() / n
        return np.asarray(mean), float(var), bool(var < 1e-12)

    def _find_split(self, X, targets, features):
        return _best_split_mse(X, targets, features, self.min_samples_leaf)

    def _find_split_batched(self, X, targets, rows, orders, features):
        return _batched_split_mse(
            X, targets, rows, orders, features, self.min_samples_leaf
        )

    def fit(self, X: Any, y: Any) -> "DecisionTreeRegressor":
        X = as_2d_array(X)
        y = as_1d_array(y).astype(float)
        check_consistent_length(X, y)
        self._fit_tree(X, y)
        return self

    def fused_fit(self, X: Any, y: Any) -> "DecisionTreeRegressor":
        """Fit via the batched split-search kernel; bit-identical to
        :meth:`fit` (same validation, same RNG stream, same tree)."""
        X = as_2d_array(X)
        y = as_1d_array(y).astype(float)
        check_consistent_length(X, y)
        self._fit_tree_batched(X, y)
        return self

    def predict(self, X: Any) -> np.ndarray:
        X = as_2d_array(X)
        return self._leaf_values(X).ravel()


class DecisionTreeClassifier(ClassifierMixin, _BaseDecisionTree):
    """CART classification tree minimizing Gini impurity."""

    def __init__(
        self,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: Optional[Any] = None,
        random_state: Optional[int] = None,
    ):
        super().__init__(
            max_depth=max_depth,
            min_samples_split=min_samples_split,
            min_samples_leaf=min_samples_leaf,
            max_features=max_features,
            random_state=random_state,
        )
        self.classes_: Optional[np.ndarray] = None

    def _leaf_value(self, targets: np.ndarray) -> np.ndarray:
        # targets is one-hot; the leaf stores class probabilities
        counts = targets.sum(axis=0)
        return counts / counts.sum()

    def _impurity(self, targets: np.ndarray) -> float:
        p = targets.mean(axis=0)
        return float(1.0 - (p**2).sum())

    def _is_pure(self, targets: np.ndarray) -> bool:
        return bool((targets.sum(axis=0) > 0).sum() <= 1)

    def _node_stats(
        self, targets: np.ndarray
    ) -> Tuple[np.ndarray, float, bool]:
        # the class-count reduction is shared across value, impurity
        # and purity; counts / n replays ndarray.mean(axis=0)'s exact
        # ufunc sequence, so every value is bit-identical to the
        # per-method path
        counts = targets.sum(axis=0)
        p = counts / targets.shape[0]
        return (
            counts / counts.sum(),
            float(1.0 - (p**2).sum()),
            bool((counts > 0).sum() <= 1),
        )

    def _find_split(self, X, targets, features):
        return _best_split_gini(X, targets, features, self.min_samples_leaf)

    def _find_split_batched(self, X, targets, rows, orders, features):
        return _batched_split_gini(
            X, targets, rows, orders, features, self.min_samples_leaf
        )

    def fit(self, X: Any, y: Any) -> "DecisionTreeClassifier":
        X = as_2d_array(X)
        y = as_1d_array(y)
        check_consistent_length(X, y)
        self.classes_, inverse = np.unique(y, return_inverse=True)
        onehot = np.zeros((len(y), len(self.classes_)))
        onehot[np.arange(len(y)), inverse] = 1.0
        self._fit_tree(X, onehot)
        return self

    def fused_fit(self, X: Any, y: Any) -> "DecisionTreeClassifier":
        """Fit via the batched split-search kernel; bit-identical to
        :meth:`fit` (same validation, same RNG stream, same tree)."""
        X = as_2d_array(X)
        y = as_1d_array(y)
        check_consistent_length(X, y)
        self.classes_, inverse = np.unique(y, return_inverse=True)
        onehot = np.zeros((len(y), len(self.classes_)))
        onehot[np.arange(len(y)), inverse] = 1.0
        self._fit_tree_batched(X, onehot)
        return self

    def predict_proba(self, X: Any) -> np.ndarray:
        X = as_2d_array(X)
        return self._leaf_values(X)

    def predict(self, X: Any) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]
