"""Classification metrics.

"Accuracy, Area under the Curve (AUC), and F1-score are commonly used
performance measures for classification tasks" (paper Section IV-B).
Includes confusion-matrix primitives and a registry mirroring the
regression one so evaluation requests and DARR records can name metrics.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

import numpy as np

__all__ = [
    "accuracy_score",
    "precision_score",
    "recall_score",
    "f1_score",
    "confusion_matrix",
    "roc_curve",
    "roc_auc_score",
    "CLASSIFICATION_METRICS",
    "CLASSIFICATION_GREATER_IS_BETTER",
]


def _pair(y_true, y_pred) -> Tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true).ravel()
    y_pred = np.asarray(y_pred).ravel()
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"shape mismatch: y_true {y_true.shape} vs y_pred {y_pred.shape}"
        )
    if y_true.size == 0:
        raise ValueError("empty input")
    return y_true, y_pred


def accuracy_score(y_true, y_pred) -> float:
    """Fraction of exact label matches."""
    y_true, y_pred = _pair(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def confusion_matrix(y_true, y_pred) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(labels, matrix)`` with ``matrix[i, j]`` counting samples
    of true class ``labels[i]`` predicted as ``labels[j]``."""
    y_true, y_pred = _pair(y_true, y_pred)
    labels = np.unique(np.concatenate([y_true, y_pred]))
    index = {label: i for i, label in enumerate(labels)}
    matrix = np.zeros((len(labels), len(labels)), dtype=int)
    for t, p in zip(y_true, y_pred):
        matrix[index[t], index[p]] += 1
    return labels, matrix


def _binary_counts(y_true, y_pred, positive) -> Tuple[int, int, int]:
    tp = int(np.sum((y_true == positive) & (y_pred == positive)))
    fp = int(np.sum((y_true != positive) & (y_pred == positive)))
    fn = int(np.sum((y_true == positive) & (y_pred != positive)))
    return tp, fp, fn


def _positive_label(y_true: np.ndarray, positive):
    if positive is not None:
        return positive
    labels = np.unique(y_true)
    # Convention: the lexically largest label (1 in {0,1}, True in
    # {False,True}) is the positive class.
    return labels[-1]


def precision_score(y_true, y_pred, positive=None) -> float:
    """TP / (TP + FP); 0.0 when nothing is predicted positive."""
    y_true, y_pred = _pair(y_true, y_pred)
    positive = _positive_label(y_true, positive)
    tp, fp, _ = _binary_counts(y_true, y_pred, positive)
    return tp / (tp + fp) if (tp + fp) else 0.0


def recall_score(y_true, y_pred, positive=None) -> float:
    """TP / (TP + FN); 0.0 when there are no positives."""
    y_true, y_pred = _pair(y_true, y_pred)
    positive = _positive_label(y_true, positive)
    tp, _, fn = _binary_counts(y_true, y_pred, positive)
    return tp / (tp + fn) if (tp + fn) else 0.0


def f1_score(y_true, y_pred, positive=None) -> float:
    """Harmonic mean of precision and recall for the positive class."""
    p = precision_score(y_true, y_pred, positive)
    r = recall_score(y_true, y_pred, positive)
    return 2.0 * p * r / (p + r) if (p + r) else 0.0


def roc_curve(
    y_true, y_score, positive=None
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """ROC curve (fpr, tpr, thresholds) from continuous scores.

    Thresholds sweep the distinct score values from high to low; the
    first point is (0, 0) with an infinite threshold.
    """
    y_true = np.asarray(y_true).ravel()
    y_score = np.asarray(y_score, dtype=float).ravel()
    if y_true.shape != y_score.shape:
        raise ValueError("y_true and y_score must align")
    positive = _positive_label(y_true, positive)
    is_pos = y_true == positive
    n_pos = int(is_pos.sum())
    n_neg = len(y_true) - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ValueError("roc_curve needs both classes present")
    order = np.argsort(-y_score, kind="stable")
    sorted_pos = is_pos[order].astype(float)
    sorted_scores = y_score[order]
    tps = np.cumsum(sorted_pos)
    fps = np.cumsum(1.0 - sorted_pos)
    # keep only the last index of each distinct score
    distinct = np.r_[np.flatnonzero(np.diff(sorted_scores)), len(y_true) - 1]
    tpr = np.r_[0.0, tps[distinct] / n_pos]
    fpr = np.r_[0.0, fps[distinct] / n_neg]
    thresholds = np.r_[np.inf, sorted_scores[distinct]]
    return fpr, tpr, thresholds


def roc_auc_score(y_true, y_score, positive=None) -> float:
    """Area under the ROC curve via trapezoidal integration."""
    fpr, tpr, _ = roc_curve(y_true, y_score, positive)
    trapezoid = getattr(np, "trapezoid", None) or np.trapz
    return float(trapezoid(tpr, fpr))


CLASSIFICATION_METRICS: Dict[str, Callable] = {
    "accuracy": accuracy_score,
    "precision": precision_score,
    "recall": recall_score,
    "f1-score": f1_score,
    "f1": f1_score,
    "auc": roc_auc_score,
}

#: All classification metrics in the registry are scores to maximize.
CLASSIFICATION_GREATER_IS_BETTER = frozenset(CLASSIFICATION_METRICS)
