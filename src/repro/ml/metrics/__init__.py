"""Model-scoring metrics for regression and classification."""

from repro.ml.metrics.classification import (
    CLASSIFICATION_METRICS,
    accuracy_score,
    confusion_matrix,
    f1_score,
    precision_score,
    recall_score,
    roc_auc_score,
    roc_curve,
)
from repro.ml.metrics.regression import (
    GREATER_IS_BETTER,
    REGRESSION_METRICS,
    explained_variance,
    mean_absolute_error,
    mean_absolute_percentage_error,
    mean_squared_error,
    mean_squared_log_error,
    median_absolute_error,
    median_absolute_log_error,
    r2_score,
    root_mean_squared_error,
    root_mean_squared_log_error,
)

__all__ = [
    "mean_squared_error",
    "root_mean_squared_error",
    "mean_absolute_error",
    "median_absolute_error",
    "mean_squared_log_error",
    "root_mean_squared_log_error",
    "median_absolute_log_error",
    "mean_absolute_percentage_error",
    "r2_score",
    "explained_variance",
    "REGRESSION_METRICS",
    "GREATER_IS_BETTER",
    "accuracy_score",
    "precision_score",
    "recall_score",
    "f1_score",
    "confusion_matrix",
    "roc_curve",
    "roc_auc_score",
    "CLASSIFICATION_METRICS",
]
