"""Regression metrics.

Paper Section III enumerates "mean absolute error, mean squared error,
median absolute log error, mean squared log error, root mean squared
error, root mean squared log error" for training fit and "mean squared
error, coefficient of determination (R^2), mean absolute error, root mean
squared error" for testing; Tables I/II add Mean Average Percentage Error
(MAPE).  All are implemented here, plus a registry so metrics can be named
in pipeline-evaluation requests (Listing 2's ``set_accuracy``) and in DARR
records.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

__all__ = [
    "mean_squared_error",
    "root_mean_squared_error",
    "mean_absolute_error",
    "median_absolute_error",
    "mean_squared_log_error",
    "root_mean_squared_log_error",
    "median_absolute_log_error",
    "mean_absolute_percentage_error",
    "r2_score",
    "explained_variance",
    "REGRESSION_METRICS",
    "GREATER_IS_BETTER",
]


def _pair(y_true, y_pred):
    y_true = np.asarray(y_true, dtype=float).ravel()
    y_pred = np.asarray(y_pred, dtype=float).ravel()
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"shape mismatch: y_true {y_true.shape} vs y_pred {y_pred.shape}"
        )
    if y_true.size == 0:
        raise ValueError("empty input")
    return y_true, y_pred


def mean_squared_error(y_true, y_pred) -> float:
    """Mean of squared residuals."""
    y_true, y_pred = _pair(y_true, y_pred)
    return float(np.mean((y_true - y_pred) ** 2))


def root_mean_squared_error(y_true, y_pred) -> float:
    """Square root of the mean squared error (paper's RMSE)."""
    return float(np.sqrt(mean_squared_error(y_true, y_pred)))


def mean_absolute_error(y_true, y_pred) -> float:
    """Mean of absolute residuals."""
    y_true, y_pred = _pair(y_true, y_pred)
    return float(np.mean(np.abs(y_true - y_pred)))


def median_absolute_error(y_true, y_pred) -> float:
    """Median of absolute residuals (robust to a few large misses)."""
    y_true, y_pred = _pair(y_true, y_pred)
    return float(np.median(np.abs(y_true - y_pred)))


def _log1p_checked(values: np.ndarray, name: str) -> np.ndarray:
    if (values < -1.0 + 1e-12).any():
        raise ValueError(
            f"{name} contains values < -1; log-based metrics are undefined"
        )
    return np.log1p(values)


def mean_squared_log_error(y_true, y_pred) -> float:
    """Mean squared error in log1p space."""
    y_true, y_pred = _pair(y_true, y_pred)
    lt = _log1p_checked(y_true, "y_true")
    lp = _log1p_checked(y_pred, "y_pred")
    return float(np.mean((lt - lp) ** 2))


def root_mean_squared_log_error(y_true, y_pred) -> float:
    """RMSE in log1p space."""
    return float(np.sqrt(mean_squared_log_error(y_true, y_pred)))


def median_absolute_log_error(y_true, y_pred) -> float:
    """Median absolute error in log1p space (from the paper's list)."""
    y_true, y_pred = _pair(y_true, y_pred)
    lt = _log1p_checked(y_true, "y_true")
    lp = _log1p_checked(y_pred, "y_pred")
    return float(np.median(np.abs(lt - lp)))


def mean_absolute_percentage_error(y_true, y_pred) -> float:
    """MAPE in percent; near-zero truths are floored at 1e-8 to stay
    finite (the convention used for industrial sensor targets)."""
    y_true, y_pred = _pair(y_true, y_pred)
    denom = np.maximum(np.abs(y_true), 1e-8)
    return float(np.mean(np.abs(y_true - y_pred) / denom) * 100.0)


def r2_score(y_true, y_pred) -> float:
    """Coefficient of determination; 1 is perfect, 0 matches the mean
    predictor, negative is worse than the mean predictor.  A constant
    ``y_true`` yields 0.0 for a perfect fit and -inf-free negative values
    otherwise (we return 0.0/−1.0 by convention)."""
    y_true, y_pred = _pair(y_true, y_pred)
    ss_res = float(((y_true - y_pred) ** 2).sum())
    ss_tot = float(((y_true - y_true.mean()) ** 2).sum())
    if ss_tot == 0.0:
        return 0.0 if ss_res == 0.0 else -1.0
    return 1.0 - ss_res / ss_tot


def explained_variance(y_true, y_pred) -> float:
    """Fraction of target variance explained by the predictions."""
    y_true, y_pred = _pair(y_true, y_pred)
    var_y = float(np.var(y_true))
    if var_y == 0.0:
        return 0.0
    return 1.0 - float(np.var(y_true - y_pred)) / var_y


REGRESSION_METRICS: Dict[str, Callable] = {
    "mse": mean_squared_error,
    "rmse": root_mean_squared_error,
    "mae": mean_absolute_error,
    "median_ae": median_absolute_error,
    "msle": mean_squared_log_error,
    "rmsle": root_mean_squared_log_error,
    "median_ale": median_absolute_log_error,
    "mape": mean_absolute_percentage_error,
    "r2": r2_score,
    "explained_variance": explained_variance,
}

#: Metrics where larger values indicate better models.  Everything else in
#: :data:`REGRESSION_METRICS` is an error to be minimized.
GREATER_IS_BETTER = frozenset({"r2", "explained_variance"})
