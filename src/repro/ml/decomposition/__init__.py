"""Feature transformation: PCA, kernel PCA, LDA, covariance whitening."""

from repro.ml.decomposition.pca import PCA, Covariance, KernelPCA, LDA

__all__ = ["PCA", "KernelPCA", "LDA", "Covariance"]
