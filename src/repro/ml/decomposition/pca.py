"""Feature transformation: PCA, kernel PCA, LDA, covariance whitening.

Table I lists PCA, kernel-PCA and LDA as feature-transformation options;
Fig. 3's feature-selection stage additionally chains ``Covariance()`` in
front of ``PCA()`` (Listing 1: ``[Covariance(), PCA()]``), which we realize
as a covariance-whitening transformer.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.ml.base import (
    BaseComponent,
    FusedStepKernel,
    TransformerMixin,
    as_1d_array,
    as_2d_array,
    check_is_fitted,
)

__all__ = ["PCA", "KernelPCA", "LDA", "Covariance"]


class PCA(TransformerMixin, BaseComponent):
    """Principal component analysis via SVD of the centered data.

    "learning a direction of a principal component is done using an
    estimate operation, whereas projecting a data point to a new dimension
    is done using a 'transform' operation" (paper Section IV).

    Parameters
    ----------
    n_components:
        Number of components to keep; ``None`` keeps
        ``min(n_samples, n_features)``.  Clipped to the data rank bound at
        fit time so the same node works across datasets.
    """

    def __init__(self, n_components: Optional[int] = None):
        if n_components is not None and n_components < 1:
            raise ValueError("n_components must be >= 1")
        self.n_components = n_components
        self.mean_: Optional[np.ndarray] = None
        self.components_: Optional[np.ndarray] = None
        self.explained_variance_: Optional[np.ndarray] = None
        self.explained_variance_ratio_: Optional[np.ndarray] = None

    def fit(self, X: Any, y: Any = None) -> "PCA":
        X = as_2d_array(X)
        self.mean_ = X.mean(axis=0)
        centered = X - self.mean_
        _, singular_values, vt = np.linalg.svd(centered, full_matrices=False)
        max_components = vt.shape[0]
        k = max_components if self.n_components is None else min(
            self.n_components, max_components
        )
        denominator = max(len(X) - 1, 1)
        variances = singular_values**2 / denominator
        total = variances.sum()
        self.components_ = vt[:k]
        self.explained_variance_ = variances[:k]
        self.explained_variance_ratio_ = (
            variances[:k] / total if total > 0 else np.zeros(k)
        )
        return self

    def transform(self, X: Any) -> np.ndarray:
        check_is_fitted(self, "components_")
        X = as_2d_array(X)
        return (X - self.mean_) @ self.components_.T

    def inverse_transform(self, X: Any) -> np.ndarray:
        check_is_fitted(self, "components_")
        X = as_2d_array(X)
        return X @ self.components_ + self.mean_

    def fused_kernel(self) -> FusedStepKernel:
        """Bit-identical fused ``(fit, transform)`` kernel of this stage."""
        n_components = self.n_components

        def fit(X: Any, y: Any = None) -> tuple:
            X = as_2d_array(X)
            mean = X.mean(axis=0)
            centered = X - mean
            _, singular_values, vt = np.linalg.svd(
                centered, full_matrices=False
            )
            max_components = vt.shape[0]
            k = max_components if n_components is None else min(
                n_components, max_components
            )
            return mean, vt[:k]

        def transform(X: Any, state: tuple) -> np.ndarray:
            mean, components = state
            X = as_2d_array(X)
            return (X - mean) @ components.T

        return FusedStepKernel(fit, transform)


class KernelPCA(TransformerMixin, BaseComponent):
    """Kernel PCA with an RBF or polynomial kernel.

    Uses the standard double-centering of the kernel matrix and projects
    new points through the training set.
    """

    def __init__(
        self,
        n_components: int = 2,
        kernel: str = "rbf",
        gamma: float = 1.0,
        degree: int = 3,
    ):
        if n_components < 1:
            raise ValueError("n_components must be >= 1")
        if kernel not in ("rbf", "poly", "linear"):
            raise ValueError(f"unsupported kernel {kernel!r}")
        self.n_components = n_components
        self.kernel = kernel
        self.gamma = gamma
        self.degree = degree
        self.X_fit_: Optional[np.ndarray] = None
        self.alphas_: Optional[np.ndarray] = None
        self.k_fit_rows_: Optional[np.ndarray] = None
        self.k_fit_all_: Optional[float] = None

    def _kernel_matrix(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        if self.kernel == "linear":
            return A @ B.T
        if self.kernel == "poly":
            return (A @ B.T + 1.0) ** self.degree
        sq = (
            (A**2).sum(axis=1)[:, None]
            + (B**2).sum(axis=1)[None, :]
            - 2.0 * A @ B.T
        )
        return np.exp(-self.gamma * np.maximum(sq, 0.0))

    def fit(self, X: Any, y: Any = None) -> "KernelPCA":
        X = as_2d_array(X)
        self.X_fit_ = X.copy()
        K = self._kernel_matrix(X, X)
        n = len(X)
        one = np.full((n, n), 1.0 / n)
        K_centered = K - one @ K - K @ one + one @ K @ one
        eigenvalues, eigenvectors = np.linalg.eigh(K_centered)
        order = np.argsort(eigenvalues)[::-1]
        k = min(self.n_components, n)
        top_values = np.maximum(eigenvalues[order][:k], 1e-12)
        top_vectors = eigenvectors[:, order][:, :k]
        self.alphas_ = top_vectors / np.sqrt(top_values)
        self.k_fit_rows_ = K.mean(axis=1)
        self.k_fit_all_ = float(K.mean())
        return self

    def transform(self, X: Any) -> np.ndarray:
        check_is_fitted(self, "alphas_")
        X = as_2d_array(X)
        K = self._kernel_matrix(X, self.X_fit_)
        K_centered = (
            K
            - K.mean(axis=1, keepdims=True)
            - self.k_fit_rows_[None, :]
            + self.k_fit_all_
        )
        return K_centered @ self.alphas_


class LDA(TransformerMixin, BaseComponent):
    """Linear discriminant analysis projection (supervised).

    Solves the generalized eigenproblem on within/between-class scatter
    with a small ridge on the within-class scatter for stability.  Keeps
    at most ``n_classes - 1`` components.
    """

    def __init__(self, n_components: Optional[int] = None):
        if n_components is not None and n_components < 1:
            raise ValueError("n_components must be >= 1")
        self.n_components = n_components
        self.scalings_: Optional[np.ndarray] = None
        self.mean_: Optional[np.ndarray] = None

    def fit(self, X: Any, y: Any = None) -> "LDA":
        if y is None:
            raise ValueError("LDA is supervised; y is required")
        X = as_2d_array(X)
        y = as_1d_array(y)
        classes = np.unique(y)
        if len(classes) < 2:
            raise ValueError("LDA needs at least two classes")
        n_features = X.shape[1]
        overall_mean = X.mean(axis=0)
        S_w = np.zeros((n_features, n_features))
        S_b = np.zeros((n_features, n_features))
        for c in classes:
            Xc = X[y == c]
            mean_c = Xc.mean(axis=0)
            centered = Xc - mean_c
            S_w += centered.T @ centered
            diff = (mean_c - overall_mean)[:, None]
            S_b += len(Xc) * (diff @ diff.T)
        S_w += 1e-6 * np.trace(S_w) / n_features * np.eye(n_features)
        eigenvalues, eigenvectors = np.linalg.eig(np.linalg.solve(S_w, S_b))
        order = np.argsort(eigenvalues.real)[::-1]
        max_components = len(classes) - 1
        k = max_components if self.n_components is None else min(
            self.n_components, max_components
        )
        self.scalings_ = eigenvectors.real[:, order][:, :k]
        self.mean_ = overall_mean
        return self

    def transform(self, X: Any) -> np.ndarray:
        check_is_fitted(self, "scalings_")
        X = as_2d_array(X)
        return (X - self.mean_) @ self.scalings_


class Covariance(TransformerMixin, BaseComponent):
    """Covariance whitening (ZCA): decorrelate features to unit covariance.

    Appears in Listing 1 chained ahead of PCA
    (``[Covariance(), PCA()]``): whitening first equalizes feature scales
    so PCA directions are not dominated by high-variance raw features.
    """

    def __init__(self, epsilon: float = 1e-8):
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        self.epsilon = epsilon
        self.mean_: Optional[np.ndarray] = None
        self.whitener_: Optional[np.ndarray] = None

    def fit(self, X: Any, y: Any = None) -> "Covariance":
        X = as_2d_array(X)
        self.mean_ = X.mean(axis=0)
        centered = X - self.mean_
        cov = centered.T @ centered / max(len(X) - 1, 1)
        eigenvalues, eigenvectors = np.linalg.eigh(cov)
        inv_sqrt = 1.0 / np.sqrt(np.maximum(eigenvalues, self.epsilon))
        self.whitener_ = eigenvectors @ np.diag(inv_sqrt) @ eigenvectors.T
        return self

    def transform(self, X: Any) -> np.ndarray:
        check_is_fitted(self, "whitener_")
        X = as_2d_array(X)
        return (X - self.mean_) @ self.whitener_

    def fused_kernel(self) -> FusedStepKernel:
        """Bit-identical fused ``(fit, transform)`` kernel of this stage."""
        epsilon = self.epsilon

        def fit(X: Any, y: Any = None) -> tuple:
            X = as_2d_array(X)
            mean = X.mean(axis=0)
            centered = X - mean
            cov = centered.T @ centered / max(len(X) - 1, 1)
            eigenvalues, eigenvectors = np.linalg.eigh(cov)
            inv_sqrt = 1.0 / np.sqrt(np.maximum(eigenvalues, epsilon))
            whitener = eigenvectors @ np.diag(inv_sqrt) @ eigenvectors.T
            return mean, whitener

        def transform(X: Any, state: tuple) -> np.ndarray:
            mean, whitener = state
            X = as_2d_array(X)
            return (X - mean) @ whitener

        return FusedStepKernel(fit, transform)
