"""Model-agnostic interpretability utilities (paper Section II).

"one must consider whether the model is interpretable: (1) can it be
described using simple rules?  (2) can it provide sensitivity analysis —
i.e., how much contribution a factor is making to the predicted value,
or how does it compare to another factor in terms of importance?  For
example, some ensemble methods and neural networks fall short on this
count."

These utilities close that gap for *any* fitted estimator or pipeline:

* :func:`permutation_importance` — the score drop when one feature's
  values are shuffled; a factor's contribution measured on the model's
  actual predictions, comparable across factors and model families.
* :func:`partial_dependence` — the mean prediction as one feature sweeps
  its range with the rest held at observed values; the shape of a
  factor's influence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence, Tuple, Union

import numpy as np

from repro.ml.base import as_1d_array, as_2d_array
from repro.ml.model_selection.cross_validate import resolve_metric

__all__ = ["PermutationImportance", "permutation_importance", "partial_dependence"]


@dataclass
class PermutationImportance:
    """Result of :func:`permutation_importance`."""

    importances_mean: np.ndarray
    importances_std: np.ndarray
    baseline_score: float
    metric: str
    greater_is_better: bool

    def ranking(self) -> np.ndarray:
        """Feature indices ordered most-important first."""
        return np.argsort(-self.importances_mean)


def permutation_importance(
    model: Any,
    X: Any,
    y: Any,
    metric: Union[str, Callable] = "rmse",
    n_repeats: int = 5,
    random_state: Optional[int] = None,
) -> PermutationImportance:
    """Importance of each feature as the performance lost when it is
    permuted.

    Importances are oriented so larger = more important regardless of
    the metric direction (for errors the importance is the error
    *increase*; for scores the score *decrease*).

    ``model`` is any fitted object with ``predict``; pipelines work
    unchanged (permutation happens in the raw input space, so the
    importances are attributable to the original factors even when the
    pipeline transforms them).
    """
    if n_repeats < 1:
        raise ValueError("n_repeats must be >= 1")
    X = as_2d_array(X)
    y = as_1d_array(y)
    if len(X) != len(y):
        raise ValueError("X and y have inconsistent lengths")
    metric_name, metric_fn, greater = resolve_metric(metric)
    rng = np.random.default_rng(random_state)
    baseline = float(metric_fn(y, model.predict(X)))
    n_features = X.shape[1]
    drops = np.empty((n_features, n_repeats))
    for j in range(n_features):
        for repeat in range(n_repeats):
            permuted = X.copy()
            permuted[:, j] = rng.permutation(permuted[:, j])
            score = float(metric_fn(y, model.predict(permuted)))
            drops[j, repeat] = (
                baseline - score if greater else score - baseline
            )
    return PermutationImportance(
        importances_mean=drops.mean(axis=1),
        importances_std=drops.std(axis=1),
        baseline_score=baseline,
        metric=metric_name,
        greater_is_better=greater,
    )


def partial_dependence(
    model: Any,
    X: Any,
    feature: int,
    grid: Optional[Sequence[float]] = None,
    n_points: int = 20,
) -> Tuple[np.ndarray, np.ndarray]:
    """Mean model prediction as ``feature`` sweeps a grid.

    Returns ``(grid_values, mean_predictions)``.  The default grid spans
    the observed 5th–95th percentile of the feature.
    """
    X = as_2d_array(X)
    if not 0 <= feature < X.shape[1]:
        raise ValueError(
            f"feature must be a column index in [0, {X.shape[1]})"
        )
    if grid is None:
        if n_points < 2:
            raise ValueError("n_points must be >= 2")
        lo, hi = np.percentile(X[:, feature], [5, 95])
        if lo == hi:
            lo, hi = lo - 0.5, hi + 0.5
        grid_values = np.linspace(lo, hi, n_points)
    else:
        grid_values = np.asarray(list(grid), dtype=float)
        if grid_values.size < 1:
            raise ValueError("grid must be non-empty")
    means = np.empty(len(grid_values))
    sweep = X.copy()
    for index, value in enumerate(grid_values):
        sweep[:, feature] = value
        means[index] = float(np.mean(model.predict(sweep)))
    return grid_values, means
