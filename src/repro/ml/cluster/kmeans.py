"""k-means clustering (used by the Cohort Analysis solution template).

Paper Section IV-E: Cohort Analysis "leverages historical sensor data from
multiple assets ... assets are grouped in different buckets or cohorts".
Uses k-means++ seeding and Lloyd iterations with an inertia-based restart
over ``n_init`` seedings.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.ml.base import (
    BaseComponent,
    ClusterMixin,
    as_2d_array,
    check_is_fitted,
)

__all__ = ["KMeans"]


def _kmeans_plus_plus(
    X: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    n = len(X)
    centers = np.empty((k, X.shape[1]))
    centers[0] = X[rng.integers(n)]
    closest_sq = ((X - centers[0]) ** 2).sum(axis=1)
    for i in range(1, k):
        total = closest_sq.sum()
        if total <= 0:
            centers[i] = X[rng.integers(n)]
            continue
        probs = closest_sq / total
        centers[i] = X[rng.choice(n, p=probs)]
        new_sq = ((X - centers[i]) ** 2).sum(axis=1)
        closest_sq = np.minimum(closest_sq, new_sq)
    return centers


class KMeans(ClusterMixin, BaseComponent):
    """Lloyd's k-means with k-means++ initialization.

    Attributes after fitting: ``cluster_centers_``, ``labels_`` (training
    assignments) and ``inertia_`` (within-cluster sum of squares).
    """

    def __init__(
        self,
        n_clusters: int = 3,
        n_init: int = 5,
        max_iter: int = 300,
        tol: float = 1e-6,
        random_state: Optional[int] = None,
    ):
        if n_clusters < 1:
            raise ValueError("n_clusters must be >= 1")
        if n_init < 1:
            raise ValueError("n_init must be >= 1")
        self.n_clusters = n_clusters
        self.n_init = n_init
        self.max_iter = max_iter
        self.tol = tol
        self.random_state = random_state
        self.cluster_centers_: Optional[np.ndarray] = None
        self.labels_: Optional[np.ndarray] = None
        self.inertia_: Optional[float] = None

    def _assign(self, X: np.ndarray, centers: np.ndarray):
        sq = (
            (X**2).sum(axis=1)[:, None]
            + (centers**2).sum(axis=1)[None, :]
            - 2.0 * X @ centers.T
        )
        sq = np.maximum(sq, 0.0)
        labels = np.argmin(sq, axis=1)
        inertia = float(sq[np.arange(len(X)), labels].sum())
        return labels, inertia

    def _single_run(self, X: np.ndarray, rng: np.random.Generator):
        centers = _kmeans_plus_plus(X, self.n_clusters, rng)
        labels, inertia = self._assign(X, centers)
        for _ in range(self.max_iter):
            new_centers = centers.copy()
            for c in range(self.n_clusters):
                members = X[labels == c]
                if len(members):
                    new_centers[c] = members.mean(axis=0)
                else:
                    # re-seed an empty cluster at the farthest point
                    sq = ((X - centers[labels]) ** 2).sum(axis=1)
                    new_centers[c] = X[np.argmax(sq)]
            shift = np.abs(new_centers - centers).max()
            centers = new_centers
            labels, inertia = self._assign(X, centers)
            if shift < self.tol:
                break
        return centers, labels, inertia

    def fit(self, X: Any, y: Any = None) -> "KMeans":
        X = as_2d_array(X)
        if len(X) < self.n_clusters:
            raise ValueError(
                f"n_samples={len(X)} < n_clusters={self.n_clusters}"
            )
        rng = np.random.default_rng(self.random_state)
        best = None
        for _ in range(self.n_init):
            centers, labels, inertia = self._single_run(X, rng)
            if best is None or inertia < best[2]:
                best = (centers, labels, inertia)
        self.cluster_centers_, self.labels_, self.inertia_ = best
        return self

    def predict(self, X: Any) -> np.ndarray:
        check_is_fitted(self, "cluster_centers_")
        X = as_2d_array(X)
        labels, _ = self._assign(X, self.cluster_centers_)
        return labels

    def transform(self, X: Any) -> np.ndarray:
        """Distances from each sample to each cluster center."""
        check_is_fitted(self, "cluster_centers_")
        X = as_2d_array(X)
        sq = (
            (X**2).sum(axis=1)[:, None]
            + (self.cluster_centers_**2).sum(axis=1)[None, :]
            - 2.0 * X @ self.cluster_centers_.T
        )
        return np.sqrt(np.maximum(sq, 0.0))

    def fit_predict(self, X: Any, y: Any = None) -> np.ndarray:
        """Fit and return training-set labels."""
        return self.fit(X, y).labels_
