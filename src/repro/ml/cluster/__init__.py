"""Clustering: k-means (Cohort Analysis) and DBSCAN."""

from repro.ml.cluster.dbscan import DBSCAN
from repro.ml.cluster.kmeans import KMeans

__all__ = ["KMeans", "DBSCAN"]
