"""DBSCAN density-based clustering.

Named in paper Section V among the scikit-learn algorithms the system
consumes.  Density clustering complements k-means for the Cohort and
Anomaly templates: it discovers the cluster count itself and labels
low-density points as noise (-1) — a natural anomaly signal.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

import numpy as np

from repro.ml.base import (
    BaseComponent,
    ClusterMixin,
    as_2d_array,
    check_is_fitted,
)

__all__ = ["DBSCAN"]

NOISE = -1


class DBSCAN(ClusterMixin, BaseComponent):
    """Density-based spatial clustering of applications with noise.

    Parameters
    ----------
    eps:
        Neighborhood radius.
    min_samples:
        Points (including self) within ``eps`` required for a core
        point.

    Attributes after fitting: ``labels_`` (cluster ids, -1 = noise),
    ``core_sample_indices_`` and ``n_clusters_``.
    """

    def __init__(self, eps: float = 0.5, min_samples: int = 5):
        if eps <= 0:
            raise ValueError("eps must be positive")
        if min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        self.eps = eps
        self.min_samples = min_samples
        self.labels_: Optional[np.ndarray] = None
        self.core_sample_indices_: Optional[np.ndarray] = None
        self._X: Optional[np.ndarray] = None

    def fit(self, X: Any, y: Any = None) -> "DBSCAN":
        X = as_2d_array(X)
        n = len(X)
        sq = (
            (X**2).sum(axis=1)[:, None]
            + (X**2).sum(axis=1)[None, :]
            - 2.0 * X @ X.T
        )
        within = np.maximum(sq, 0.0) <= self.eps**2
        neighbor_counts = within.sum(axis=1)
        is_core = neighbor_counts >= self.min_samples
        labels = np.full(n, NOISE, dtype=int)
        cluster = 0
        for seed in range(n):
            if labels[seed] != NOISE or not is_core[seed]:
                continue
            # expand a new cluster from this unvisited core point
            labels[seed] = cluster
            queue = deque([seed])
            while queue:
                point = queue.popleft()
                if not is_core[point]:
                    continue
                for neighbor in np.flatnonzero(within[point]):
                    if labels[neighbor] == NOISE:
                        labels[neighbor] = cluster
                        queue.append(neighbor)
            cluster += 1
        self.labels_ = labels
        self.core_sample_indices_ = np.flatnonzero(is_core)
        self._X = X.copy()
        return self

    @property
    def n_clusters_(self) -> int:
        """Number of discovered clusters (noise excluded)."""
        check_is_fitted(self, "labels_")
        return int(self.labels_.max() + 1) if (self.labels_ >= 0).any() else 0

    def fit_predict(self, X: Any, y: Any = None) -> np.ndarray:
        """Fit and return the training labels."""
        return self.fit(X, y).labels_

    def predict(self, X: Any) -> np.ndarray:
        """Assign new points to the cluster of the nearest *core* sample
        within ``eps``; otherwise noise (-1).

        (Classic DBSCAN is transductive; this is the standard inductive
        extension.)
        """
        check_is_fitted(self, "labels_")
        X = as_2d_array(X)
        if X.shape[1] != self._X.shape[1]:
            raise ValueError(
                f"X has {X.shape[1]} features, model was fitted with "
                f"{self._X.shape[1]}"
            )
        if len(self.core_sample_indices_) == 0:
            return np.full(len(X), NOISE, dtype=int)
        cores = self._X[self.core_sample_indices_]
        core_labels = self.labels_[self.core_sample_indices_]
        sq = (
            (X**2).sum(axis=1)[:, None]
            + (cores**2).sum(axis=1)[None, :]
            - 2.0 * X @ cores.T
        )
        sq = np.maximum(sq, 0.0)
        nearest = np.argmin(sq, axis=1)
        labels = core_labels[nearest].copy()
        labels[np.sqrt(sq[np.arange(len(X)), nearest]) > self.eps] = NOISE
        return labels
