"""Ensembles: random forests and gradient boosting."""

from repro.ml.ensemble.gradient_boosting import (
    GradientBoostingClassifier,
    GradientBoostingRegressor,
)
from repro.ml.ensemble.random_forest import (
    RandomForestClassifier,
    RandomForestRegressor,
)

__all__ = [
    "RandomForestRegressor",
    "RandomForestClassifier",
    "GradientBoostingRegressor",
    "GradientBoostingClassifier",
]
