"""Random forests (regression and classification).

Random forest is the first model-training option in Table I and a named
estimator in the Fig. 3 regression graph.  Trees are trained on bootstrap
resamples with per-node feature subsampling (``max_features="sqrt"`` by
default, the standard forest recipe).
"""

from __future__ import annotations

from typing import Any, List, Optional

import numpy as np

from repro.ml.base import (
    BaseComponent,
    ClassifierMixin,
    RegressorMixin,
    as_1d_array,
    as_2d_array,
    check_consistent_length,
    check_is_fitted,
)
from repro.ml.tree.decision_tree import (
    DecisionTreeClassifier,
    DecisionTreeRegressor,
)

__all__ = ["RandomForestRegressor", "RandomForestClassifier"]


class _BaseForest(BaseComponent):
    def __init__(
        self,
        n_estimators: int = 50,
        max_depth: Optional[int] = None,
        min_samples_leaf: int = 1,
        max_features: Any = "sqrt",
        bootstrap: bool = True,
        random_state: Optional[int] = None,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.random_state = random_state
        self.trees_: Optional[List] = None
        self.feature_importances_: Optional[np.ndarray] = None

    def _make_tree(self, seed: int):
        raise NotImplementedError

    def _fit_forest(self, X: np.ndarray, y: np.ndarray) -> None:
        rng = np.random.default_rng(self.random_state)
        n = len(X)
        trees = []
        importances = np.zeros(X.shape[1])
        for _ in range(self.n_estimators):
            seed = int(rng.integers(0, 2**31 - 1))
            tree = self._make_tree(seed)
            if self.bootstrap:
                idx = rng.integers(0, n, size=n)
                tree.fit(X[idx], y[idx])
            else:
                tree.fit(X, y)
            importances += tree.feature_importances_
            trees.append(tree)
        self.trees_ = trees
        total = importances.sum()
        self.feature_importances_ = (
            importances / total if total > 0 else importances
        )

    def _fit_forest_batched(self, X: np.ndarray, y: np.ndarray) -> None:
        """Twin of :meth:`_fit_forest` fitting each tree through its
        batched split-search path.  Consumes the forest RNG in the same
        order (seed, then bootstrap indices, per tree) so the ensemble is
        bit-identical.  Each tree sorts its own materialized bootstrap
        matrix — sort orders cannot be shared across bootstraps because
        duplicated rows break the stable-order restriction argument."""
        rng = np.random.default_rng(self.random_state)
        n = len(X)
        trees = []
        importances = np.zeros(X.shape[1])
        for _ in range(self.n_estimators):
            seed = int(rng.integers(0, 2**31 - 1))
            tree = self._make_tree(seed)
            if self.bootstrap:
                idx = rng.integers(0, n, size=n)
                tree.fused_fit(X[idx], y[idx])
            else:
                tree.fused_fit(X, y)
            importances += tree.feature_importances_
            trees.append(tree)
        self.trees_ = trees
        total = importances.sum()
        self.feature_importances_ = (
            importances / total if total > 0 else importances
        )


class RandomForestRegressor(RegressorMixin, _BaseForest):
    """Bagged ensemble of CART regression trees; prediction is the mean of
    the per-tree predictions."""

    def _make_tree(self, seed: int) -> DecisionTreeRegressor:
        return DecisionTreeRegressor(
            max_depth=self.max_depth,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
            random_state=seed,
        )

    def fit(self, X: Any, y: Any) -> "RandomForestRegressor":
        X = as_2d_array(X)
        y = as_1d_array(y).astype(float)
        check_consistent_length(X, y)
        self._fit_forest(X, y)
        return self

    def fused_fit(self, X: Any, y: Any) -> "RandomForestRegressor":
        """Fit via batched tree kernels; bit-identical to :meth:`fit`."""
        X = as_2d_array(X)
        y = as_1d_array(y).astype(float)
        check_consistent_length(X, y)
        self._fit_forest_batched(X, y)
        return self

    def predict(self, X: Any) -> np.ndarray:
        check_is_fitted(self, "trees_")
        X = as_2d_array(X)
        return np.mean([tree.predict(X) for tree in self.trees_], axis=0)


class RandomForestClassifier(ClassifierMixin, _BaseForest):
    """Bagged ensemble of CART classification trees; prediction averages
    per-tree class probabilities (soft voting)."""

    def __init__(
        self,
        n_estimators: int = 50,
        max_depth: Optional[int] = None,
        min_samples_leaf: int = 1,
        max_features: Any = "sqrt",
        bootstrap: bool = True,
        random_state: Optional[int] = None,
    ):
        super().__init__(
            n_estimators=n_estimators,
            max_depth=max_depth,
            min_samples_leaf=min_samples_leaf,
            max_features=max_features,
            bootstrap=bootstrap,
            random_state=random_state,
        )
        self.classes_: Optional[np.ndarray] = None

    def _make_tree(self, seed: int) -> DecisionTreeClassifier:
        return DecisionTreeClassifier(
            max_depth=self.max_depth,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
            random_state=seed,
        )

    def fit(self, X: Any, y: Any) -> "RandomForestClassifier":
        X = as_2d_array(X)
        y = as_1d_array(y)
        check_consistent_length(X, y)
        self.classes_ = np.unique(y)
        self._fit_forest(X, y)
        return self

    def fused_fit(self, X: Any, y: Any) -> "RandomForestClassifier":
        """Fit via batched tree kernels; bit-identical to :meth:`fit`."""
        X = as_2d_array(X)
        y = as_1d_array(y)
        check_consistent_length(X, y)
        self.classes_ = np.unique(y)
        self._fit_forest_batched(X, y)
        return self

    def predict_proba(self, X: Any) -> np.ndarray:
        check_is_fitted(self, "trees_")
        X = as_2d_array(X)
        # Trees trained on bootstrap samples may miss rare classes; align
        # every tree's probabilities to the forest's class order.
        proba = np.zeros((len(X), len(self.classes_)))
        for tree in self.trees_:
            tree_proba = tree.predict_proba(X)
            cols = np.searchsorted(self.classes_, tree.classes_)
            proba[:, cols] += tree_proba
        return proba / len(self.trees_)

    def predict(self, X: Any) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]
