"""Gradient boosting (regression and binary classification).

"Gradient boosting" is one of the model-training techniques enumerated in
paper Section III.  Regression boosts squared error; classification boosts
binomial deviance with probability outputs, both over shallow CART trees.
"""

from __future__ import annotations

from typing import Any, List, Optional

import numpy as np

from repro.ml.base import (
    BaseComponent,
    ClassifierMixin,
    RegressorMixin,
    as_1d_array,
    as_2d_array,
    check_consistent_length,
    check_is_fitted,
)
from repro.ml.tree.decision_tree import DecisionTreeRegressor

__all__ = ["GradientBoostingRegressor", "GradientBoostingClassifier"]


class GradientBoostingRegressor(RegressorMixin, BaseComponent):
    """Least-squares gradient boosting over depth-limited regression
    trees."""

    def __init__(
        self,
        n_estimators: int = 100,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        min_samples_leaf: int = 1,
        subsample: float = 1.0,
        random_state: Optional[int] = None,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError("learning_rate must be in (0, 1]")
        if not 0.0 < subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.random_state = random_state
        self.init_: Optional[float] = None
        self.trees_: Optional[List[DecisionTreeRegressor]] = None
        self.train_losses_: Optional[List[float]] = None

    def fit(self, X: Any, y: Any) -> "GradientBoostingRegressor":
        X = as_2d_array(X)
        y = as_1d_array(y).astype(float)
        check_consistent_length(X, y)
        rng = np.random.default_rng(self.random_state)
        self.init_ = float(y.mean())
        prediction = np.full(len(y), self.init_)
        trees: List[DecisionTreeRegressor] = []
        losses: List[float] = []
        n = len(y)
        sample_size = max(1, int(self.subsample * n))
        for _ in range(self.n_estimators):
            residual = y - prediction
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                random_state=int(rng.integers(0, 2**31 - 1)),
            )
            if sample_size < n:
                idx = rng.choice(n, size=sample_size, replace=False)
                tree.fit(X[idx], residual[idx])
            else:
                tree.fit(X, residual)
            prediction = prediction + self.learning_rate * tree.predict(X)
            trees.append(tree)
            losses.append(float(np.mean((y - prediction) ** 2)))
        self.trees_ = trees
        self.train_losses_ = losses
        return self

    def predict(self, X: Any) -> np.ndarray:
        check_is_fitted(self, "trees_")
        X = as_2d_array(X)
        prediction = np.full(len(X), self.init_)
        for tree in self.trees_:
            prediction = prediction + self.learning_rate * tree.predict(X)
        return prediction


class GradientBoostingClassifier(ClassifierMixin, BaseComponent):
    """Binary gradient boosting with logistic loss.

    Trees fit the negative gradient of the binomial deviance; leaf outputs
    use the standard single Newton step approximation.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        min_samples_leaf: int = 1,
        random_state: Optional[int] = None,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError("learning_rate must be in (0, 1]")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.random_state = random_state
        self.classes_: Optional[np.ndarray] = None
        self.init_: Optional[float] = None
        self.trees_: Optional[List[DecisionTreeRegressor]] = None

    def fit(self, X: Any, y: Any) -> "GradientBoostingClassifier":
        X = as_2d_array(X)
        y = as_1d_array(y)
        check_consistent_length(X, y)
        self.classes_ = np.unique(y)
        if len(self.classes_) != 2:
            raise ValueError(
                "GradientBoostingClassifier supports binary targets only; "
                f"got {len(self.classes_)} classes"
            )
        rng = np.random.default_rng(self.random_state)
        y01 = (y == self.classes_[1]).astype(float)
        prior = np.clip(y01.mean(), 1e-6, 1 - 1e-6)
        self.init_ = float(np.log(prior / (1 - prior)))
        raw = np.full(len(y01), self.init_)
        trees: List[DecisionTreeRegressor] = []
        for _ in range(self.n_estimators):
            proba = 1.0 / (1.0 + np.exp(-raw))
            residual = y01 - proba
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                random_state=int(rng.integers(0, 2**31 - 1)),
            )
            tree.fit(X, residual)
            raw = raw + self.learning_rate * tree.predict(X)
            trees.append(tree)
        self.trees_ = trees
        return self

    def _raw(self, X: np.ndarray) -> np.ndarray:
        raw = np.full(len(X), self.init_)
        for tree in self.trees_:
            raw = raw + self.learning_rate * tree.predict(X)
        return raw

    def predict_proba(self, X: Any) -> np.ndarray:
        check_is_fitted(self, "trees_")
        X = as_2d_array(X)
        p1 = 1.0 / (1.0 + np.exp(-self._raw(X)))
        return np.column_stack([1.0 - p1, p1])

    def predict(self, X: Any) -> np.ndarray:
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    def decision_function(self, X: Any) -> np.ndarray:
        """Raw log-odds for the positive class."""
        check_is_fitted(self, "trees_")
        return self._raw(as_2d_array(X))
