"""Outlier detection and removal.

Paper Sections II–III: "Data which constitute erroneous and/or outlying
values may need to be identified and discarded" and data cleansing with
"removing outliers using one or more of a fixed set of techniques" is one
of the structured DARR-tracked steps.  Detectors flag rows; the
``OutlierClipper`` transformer is graph-safe (it never drops rows, so
downstream ``y`` alignment is preserved), while :func:`remove_outliers`
drops flagged rows from ``(X, y)`` as an explicit preprocessing call.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

import numpy as np

from repro.ml.base import (
    BaseComponent,
    TransformerMixin,
    as_2d_array,
    check_is_fitted,
)

__all__ = [
    "ZScoreOutlierDetector",
    "IQROutlierDetector",
    "OutlierClipper",
    "remove_outliers",
]


class ZScoreOutlierDetector(BaseComponent):
    """Flag rows containing any value more than ``threshold`` standard
    deviations from its column mean."""

    def __init__(self, threshold: float = 3.0):
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.threshold = threshold
        self.mean_: Optional[np.ndarray] = None
        self.std_: Optional[np.ndarray] = None

    def fit(self, X: Any, y: Any = None) -> "ZScoreOutlierDetector":
        X = as_2d_array(X)
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        std[std == 0.0] = 1.0
        self.std_ = std
        return self

    def predict(self, X: Any) -> np.ndarray:
        """Return a boolean mask, True where the row is an outlier."""
        check_is_fitted(self, "std_")
        X = as_2d_array(X)
        z = np.abs((X - self.mean_) / self.std_)
        return (z > self.threshold).any(axis=1)


class IQROutlierDetector(BaseComponent):
    """Flag rows with any value outside ``[q1 - k*iqr, q3 + k*iqr]``."""

    def __init__(self, k: float = 1.5):
        if k <= 0:
            raise ValueError("k must be positive")
        self.k = k
        self.lower_: Optional[np.ndarray] = None
        self.upper_: Optional[np.ndarray] = None

    def fit(self, X: Any, y: Any = None) -> "IQROutlierDetector":
        X = as_2d_array(X)
        q1 = np.percentile(X, 25, axis=0)
        q3 = np.percentile(X, 75, axis=0)
        iqr = q3 - q1
        self.lower_ = q1 - self.k * iqr
        self.upper_ = q3 + self.k * iqr
        return self

    def predict(self, X: Any) -> np.ndarray:
        """Return a boolean mask, True where the row is an outlier."""
        check_is_fitted(self, "lower_")
        X = as_2d_array(X)
        return ((X < self.lower_) | (X > self.upper_)).any(axis=1)


class OutlierClipper(TransformerMixin, BaseComponent):
    """Winsorize values into the IQR fence learned at fit time.

    Row count is preserved, so the clipper can sit inside a
    Transformer-Estimator Graph stage without desynchronizing ``X`` and
    ``y``.
    """

    def __init__(self, k: float = 1.5):
        if k <= 0:
            raise ValueError("k must be positive")
        self.k = k
        self.detector_: Optional[IQROutlierDetector] = None

    def fit(self, X: Any, y: Any = None) -> "OutlierClipper":
        self.detector_ = IQROutlierDetector(k=self.k).fit(X)
        return self

    def transform(self, X: Any) -> np.ndarray:
        check_is_fitted(self, "detector_")
        X = as_2d_array(X)
        return np.clip(X, self.detector_.lower_, self.detector_.upper_)


def remove_outliers(
    X: Any,
    y: Any = None,
    detector: Optional[BaseComponent] = None,
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Drop rows flagged by ``detector`` (default: 3-sigma z-score).

    Returns the filtered ``(X, y)``; ``y`` may be ``None``.  At least one
    row always survives: if the detector flags everything, the input is
    returned unchanged (discarding the whole dataset is never the intent
    of a cleansing step).
    """
    X = as_2d_array(X)
    detector = detector or ZScoreOutlierDetector()
    mask = ~detector.fit(X).predict(X)
    if not mask.any():
        mask = np.ones(len(X), dtype=bool)
    y_out = None
    if y is not None:
        y_arr = np.asarray(y)
        if len(y_arr) != len(X):
            raise ValueError("X and y have inconsistent lengths")
        y_out = y_arr[mask]
    return X[mask], y_out
