"""Data cleansing and feature engineering: scalers, imputers,
outlier handling, encoders."""

from repro.ml.preprocessing.encoders import (
    KBinsDiscretizer,
    OneHotEncoder,
    PolynomialFeatures,
)
from repro.ml.preprocessing.imputers import (
    IterativeImputer,
    KNNImputer,
    MatrixFactorizationImputer,
    SimpleImputer,
)
from repro.ml.preprocessing.outliers import (
    IQROutlierDetector,
    OutlierClipper,
    ZScoreOutlierDetector,
    remove_outliers,
)
from repro.ml.preprocessing.scalers import (
    MinMaxScaler,
    NoOp,
    RobustScaler,
    StandardScaler,
)

__all__ = [
    "StandardScaler",
    "MinMaxScaler",
    "RobustScaler",
    "NoOp",
    "SimpleImputer",
    "KNNImputer",
    "IterativeImputer",
    "MatrixFactorizationImputer",
    "PolynomialFeatures",
    "OneHotEncoder",
    "KBinsDiscretizer",
    "ZScoreOutlierDetector",
    "IQROutlierDetector",
    "OutlierClipper",
    "remove_outliers",
]
