"""Data scalers used in the Data Scaling stage of every pipeline graph.

The paper's regression graph (Fig. 3) and time-series graph (Fig. 11/Table
II) both open with a scaling stage offering ``MinMaxScaler``,
``StandardScaler``, ``RobustScaler`` and a ``NoOp`` option that lets a path
skip the stage entirely.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.ml.base import (
    BaseComponent,
    FusedStepKernel,
    TransformerMixin,
    as_2d_array,
    check_is_fitted,
)

__all__ = ["StandardScaler", "MinMaxScaler", "RobustScaler", "NoOp"]


class StandardScaler(TransformerMixin, BaseComponent):
    """Standardize features to zero mean and unit variance.

    "Standardization of data typically involves converting the mean of the
    time series to 0 and the standard deviation to 1" (paper Section
    IV-C4).  Constant columns are left at zero after centering (their scale
    divisor is forced to 1 to avoid division by zero).

    ``partial_fit`` maintains streaming count/mean/M2 statistics (Chan et
    al. parallel merge), which agree with the cold single-pass ``fit`` up
    to floating-point accumulation order
    (``partial_fit_parity = "tolerance"``).
    """

    partial_fit_parity = "tolerance"

    def __init__(self, with_mean: bool = True, with_std: bool = True):
        self.with_mean = with_mean
        self.with_std = with_std
        self.mean_: Optional[np.ndarray] = None
        self.scale_: Optional[np.ndarray] = None
        self._n_seen = 0
        self._run_mean: Optional[np.ndarray] = None
        self._run_m2: Optional[np.ndarray] = None

    def fit(self, X: Any, y: Any = None) -> "StandardScaler":
        X = as_2d_array(X)
        self.mean_ = X.mean(axis=0) if self.with_mean else np.zeros(X.shape[1])
        if self.with_std:
            std = X.std(axis=0)
            std[std == 0.0] = 1.0
            self.scale_ = std
        else:
            self.scale_ = np.ones(X.shape[1])
        self._n_seen = len(X)
        self._run_mean = X.mean(axis=0)
        self._run_m2 = X.var(axis=0) * len(X)
        return self

    def partial_fit(self, X: Any, y: Any = None) -> "StandardScaler":
        """Merge a new batch into the streaming mean/variance."""
        X = as_2d_array(X)
        batch_n = len(X)
        batch_mean = X.mean(axis=0)
        batch_m2 = X.var(axis=0) * batch_n
        if self._n_seen == 0 or self._run_mean is None:
            self._n_seen = batch_n
            self._run_mean = batch_mean
            self._run_m2 = batch_m2
        else:
            if X.shape[1] != self._run_mean.shape[0]:
                raise ValueError(
                    f"X has {X.shape[1]} features, scaler was started with "
                    f"{self._run_mean.shape[0]}"
                )
            total = self._n_seen + batch_n
            delta = batch_mean - self._run_mean
            self._run_m2 = (
                self._run_m2
                + batch_m2
                + delta**2 * self._n_seen * batch_n / total
            )
            self._run_mean = self._run_mean + delta * batch_n / total
            self._n_seen = total
        self.mean_ = (
            self._run_mean.copy()
            if self.with_mean
            else np.zeros(self._run_mean.shape[0])
        )
        if self.with_std:
            std = np.sqrt(np.maximum(self._run_m2 / self._n_seen, 0.0))
            std[std == 0.0] = 1.0
            self.scale_ = std
        else:
            self.scale_ = np.ones(self._run_mean.shape[0])
        return self

    def transform(self, X: Any) -> np.ndarray:
        check_is_fitted(self, "scale_")
        X = as_2d_array(X)
        if X.shape[1] != self.mean_.shape[0]:
            raise ValueError(
                f"X has {X.shape[1]} features, scaler was fitted with "
                f"{self.mean_.shape[0]}"
            )
        return (X - self.mean_) / self.scale_

    def inverse_transform(self, X: Any) -> np.ndarray:
        check_is_fitted(self, "scale_")
        X = as_2d_array(X)
        return X * self.scale_ + self.mean_

    def fused_kernel(self) -> FusedStepKernel:
        """Bit-identical fused ``(fit, transform)`` kernel of this stage."""
        with_mean, with_std = self.with_mean, self.with_std

        def fit(X: Any, y: Any = None) -> tuple:
            X = as_2d_array(X)
            mean = X.mean(axis=0) if with_mean else np.zeros(X.shape[1])
            if with_std:
                scale = X.std(axis=0)
                scale[scale == 0.0] = 1.0
            else:
                scale = np.ones(X.shape[1])
            return mean, scale

        def transform(X: Any, state: tuple) -> np.ndarray:
            mean, scale = state
            X = as_2d_array(X)
            if X.shape[1] != mean.shape[0]:
                raise ValueError(
                    f"X has {X.shape[1]} features, scaler was fitted with "
                    f"{mean.shape[0]}"
                )
            return (X - mean) / scale

        return FusedStepKernel(fit, transform)


class MinMaxScaler(TransformerMixin, BaseComponent):
    """Scale features to a fixed range, by default [0, 1].

    Implements the "0-1 normalization" option from the paper's
    introduction.  Constant columns map to ``feature_range[0]``.

    ``partial_fit`` merges per-batch minima/maxima, which is byte-identical
    to a cold ``fit`` on the concatenated batches
    (``partial_fit_parity = "exact"``).
    """

    partial_fit_parity = "exact"

    def __init__(self, feature_range: tuple = (0.0, 1.0)):
        lo, hi = feature_range
        if hi <= lo:
            raise ValueError(f"feature_range must increase, got {feature_range}")
        self.feature_range = (float(lo), float(hi))
        self.data_min_: Optional[np.ndarray] = None
        self.data_max_: Optional[np.ndarray] = None

    def fit(self, X: Any, y: Any = None) -> "MinMaxScaler":
        X = as_2d_array(X)
        self.data_min_ = X.min(axis=0)
        self.data_max_ = X.max(axis=0)
        return self

    def partial_fit(self, X: Any, y: Any = None) -> "MinMaxScaler":
        """Merge a new batch's minima/maxima into the fitted range."""
        X = as_2d_array(X)
        if self.data_min_ is None:
            self.data_min_ = X.min(axis=0)
            self.data_max_ = X.max(axis=0)
            return self
        if X.shape[1] != self.data_min_.shape[0]:
            raise ValueError(
                f"X has {X.shape[1]} features, scaler was started with "
                f"{self.data_min_.shape[0]}"
            )
        self.data_min_ = np.minimum(self.data_min_, X.min(axis=0))
        self.data_max_ = np.maximum(self.data_max_, X.max(axis=0))
        return self

    def transform(self, X: Any) -> np.ndarray:
        check_is_fitted(self, "data_min_")
        X = as_2d_array(X)
        lo, hi = self.feature_range
        span = self.data_max_ - self.data_min_
        span = np.where(span == 0.0, 1.0, span)
        unit = (X - self.data_min_) / span
        return unit * (hi - lo) + lo

    def inverse_transform(self, X: Any) -> np.ndarray:
        check_is_fitted(self, "data_min_")
        X = as_2d_array(X)
        lo, hi = self.feature_range
        span = self.data_max_ - self.data_min_
        span = np.where(span == 0.0, 1.0, span)
        return (X - lo) / (hi - lo) * span + self.data_min_

    def fused_kernel(self) -> FusedStepKernel:
        """Bit-identical fused ``(fit, transform)`` kernel of this stage."""
        lo, hi = self.feature_range

        def fit(X: Any, y: Any = None) -> tuple:
            X = as_2d_array(X)
            return X.min(axis=0), X.max(axis=0)

        def transform(X: Any, state: tuple) -> np.ndarray:
            data_min, data_max = state
            X = as_2d_array(X)
            span = data_max - data_min
            span = np.where(span == 0.0, 1.0, span)
            unit = (X - data_min) / span
            return unit * (hi - lo) + lo

        return FusedStepKernel(fit, transform)


class RobustScaler(TransformerMixin, BaseComponent):
    """Scale features using statistics robust to outliers.

    The "outlier-aware robust scaler" from the paper's introduction:
    centers on the median and scales by the inter-quantile range
    (25th–75th percentile by default).

    Quantiles are not mergeable from summaries, so ``partial_fit`` retains
    the rows seen so far and recomputes — byte-identical to a cold ``fit``
    on the concatenation (``partial_fit_parity = "exact"``) at the cost of
    O(rows-seen) memory.
    """

    partial_fit_parity = "exact"

    def __init__(self, quantile_range: tuple = (25.0, 75.0)):
        lo, hi = quantile_range
        if not (0.0 <= lo < hi <= 100.0):
            raise ValueError(f"invalid quantile_range {quantile_range}")
        self.quantile_range = (float(lo), float(hi))
        self.center_: Optional[np.ndarray] = None
        self.scale_: Optional[np.ndarray] = None
        self._rows: Optional[np.ndarray] = None

    def fit(self, X: Any, y: Any = None) -> "RobustScaler":
        X = as_2d_array(X)
        lo, hi = self.quantile_range
        self.center_ = np.median(X, axis=0)
        iqr = np.percentile(X, hi, axis=0) - np.percentile(X, lo, axis=0)
        iqr[iqr == 0.0] = 1.0
        self.scale_ = iqr
        self._rows = X.copy()
        return self

    def partial_fit(self, X: Any, y: Any = None) -> "RobustScaler":
        """Append the batch to the retained rows and refit the quantiles."""
        X = as_2d_array(X)
        if self._rows is None:
            self._rows = X.copy()
        else:
            if X.shape[1] != self._rows.shape[1]:
                raise ValueError(
                    f"X has {X.shape[1]} features, scaler was started with "
                    f"{self._rows.shape[1]}"
                )
            self._rows = np.vstack([self._rows, X])
        lo, hi = self.quantile_range
        rows = self._rows
        self.center_ = np.median(rows, axis=0)
        iqr = np.percentile(rows, hi, axis=0) - np.percentile(rows, lo, axis=0)
        iqr[iqr == 0.0] = 1.0
        self.scale_ = iqr
        return self

    def transform(self, X: Any) -> np.ndarray:
        check_is_fitted(self, "scale_")
        X = as_2d_array(X)
        return (X - self.center_) / self.scale_

    def inverse_transform(self, X: Any) -> np.ndarray:
        check_is_fitted(self, "scale_")
        X = as_2d_array(X)
        return X * self.scale_ + self.center_

    def fused_kernel(self) -> FusedStepKernel:
        """Bit-identical fused ``(fit, transform)`` kernel of this stage."""
        lo, hi = self.quantile_range

        def fit(X: Any, y: Any = None) -> tuple:
            X = as_2d_array(X)
            center = np.median(X, axis=0)
            iqr = np.percentile(X, hi, axis=0) - np.percentile(X, lo, axis=0)
            iqr[iqr == 0.0] = 1.0
            return center, iqr

        def transform(X: Any, state: tuple) -> np.ndarray:
            center, scale = state
            X = as_2d_array(X)
            return (X - center) / scale

        return FusedStepKernel(fit, transform)


class NoOp(TransformerMixin, BaseComponent):
    """Identity transformer.

    "The NoOp operation allows users to skip the operation in that stage"
    (paper Section IV-A).  Including a ``NoOp`` option in a stage adds the
    stage-skipping paths to the graph without special-casing the pipeline
    executor.  The identity has no state, so incremental updates are
    trivially exact (``partial_fit_parity = "exact"``).
    """

    partial_fit_parity = "exact"

    def __init__(self):
        self.fitted_ = None

    def fit(self, X: Any, y: Any = None) -> "NoOp":
        self.fitted_ = True
        return self

    def partial_fit(self, X: Any, y: Any = None) -> "NoOp":
        """Identity update: validates input and marks the stage fitted."""
        as_2d_array(X)
        self.fitted_ = True
        return self

    def transform(self, X: Any) -> np.ndarray:
        return as_2d_array(X)

    def inverse_transform(self, X: Any) -> np.ndarray:
        return as_2d_array(X)

    def fused_kernel(self) -> FusedStepKernel:
        """Bit-identical fused ``(fit, transform)`` kernel of this stage."""
        def fit(X: Any, y: Any = None) -> None:
            return None

        def transform(X: Any, state: None) -> np.ndarray:
            return as_2d_array(X)

        return FusedStepKernel(fit, transform)
