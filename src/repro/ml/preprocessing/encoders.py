"""Feature engineering transformers.

Paper Section III: "The appropriate transformations to make the data
most amenable for analysis can be substantial."  These graph-compatible
transformers cover the common cases on industrial tabular data: crossing
numeric features (:class:`PolynomialFeatures`), expanding categorical id
columns like the operator-shift factor (:class:`OneHotEncoder`), and
discretizing continuous sensors into operating bands
(:class:`KBinsDiscretizer`).
"""

from __future__ import annotations

import itertools
from typing import Any, List, Optional, Sequence

import numpy as np

from repro.ml.base import (
    BaseComponent,
    TransformerMixin,
    as_2d_array,
    check_is_fitted,
)

__all__ = ["PolynomialFeatures", "OneHotEncoder", "KBinsDiscretizer"]


class PolynomialFeatures(TransformerMixin, BaseComponent):
    """Polynomial and interaction feature expansion.

    Output columns are, in order: (optional bias), the original features,
    then all degree-2..``degree`` products of feature combinations
    (with replacement unless ``interaction_only``).
    """

    def __init__(
        self,
        degree: int = 2,
        interaction_only: bool = False,
        include_bias: bool = False,
    ):
        if degree < 1:
            raise ValueError("degree must be >= 1")
        self.degree = degree
        self.interaction_only = interaction_only
        self.include_bias = include_bias
        self.combinations_: Optional[List[tuple]] = None
        self.n_features_in_: Optional[int] = None

    def _make_combinations(self, n_features: int) -> List[tuple]:
        chooser = (
            itertools.combinations
            if self.interaction_only
            else itertools.combinations_with_replacement
        )
        out: List[tuple] = []
        if self.include_bias:
            out.append(())
        for d in range(1, self.degree + 1):
            if self.interaction_only and d > n_features:
                break
            out.extend(chooser(range(n_features), d))
        return out

    def fit(self, X: Any, y: Any = None) -> "PolynomialFeatures":
        X = as_2d_array(X)
        self.n_features_in_ = X.shape[1]
        self.combinations_ = self._make_combinations(X.shape[1])
        return self

    def transform(self, X: Any) -> np.ndarray:
        check_is_fitted(self, "combinations_")
        X = as_2d_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features, transformer was fitted "
                f"with {self.n_features_in_}"
            )
        columns = []
        for combo in self.combinations_:
            if not combo:
                columns.append(np.ones(len(X)))
            else:
                column = X[:, combo[0]].copy()
                for index in combo[1:]:
                    column = column * X[:, index]
                columns.append(column)
        return np.column_stack(columns)

    @property
    def n_output_features_(self) -> int:
        """Number of columns the expansion produces."""
        check_is_fitted(self, "combinations_")
        return len(self.combinations_)


class OneHotEncoder(TransformerMixin, BaseComponent):
    """One-hot expansion of integer-coded categorical columns.

    ``categorical_columns`` selects which columns to expand (``None``
    auto-detects columns whose values are all integral with at most
    ``max_categories`` distinct values); the remaining columns pass
    through unchanged, in their original order, followed by the one-hot
    blocks.  Unseen categories at transform time encode as all-zeros.
    """

    def __init__(
        self,
        categorical_columns: Optional[Sequence[int]] = None,
        max_categories: int = 20,
    ):
        if max_categories < 2:
            raise ValueError("max_categories must be >= 2")
        self.categorical_columns = (
            list(categorical_columns)
            if categorical_columns is not None
            else None
        )
        self.max_categories = max_categories
        self.columns_: Optional[List[int]] = None
        self.categories_: Optional[dict] = None
        self.n_features_in_: Optional[int] = None

    def _detect(self, X: np.ndarray) -> List[int]:
        detected = []
        for j in range(X.shape[1]):
            values = X[:, j]
            if not np.allclose(values, np.round(values)):
                continue
            if len(np.unique(values)) <= self.max_categories:
                detected.append(j)
        return detected

    def fit(self, X: Any, y: Any = None) -> "OneHotEncoder":
        X = as_2d_array(X)
        self.n_features_in_ = X.shape[1]
        if self.categorical_columns is not None:
            bad = [j for j in self.categorical_columns if not 0 <= j < X.shape[1]]
            if bad:
                raise ValueError(f"column indices out of range: {bad}")
            columns = sorted(set(self.categorical_columns))
        else:
            columns = self._detect(X)
        self.columns_ = columns
        self.categories_ = {
            j: np.unique(X[:, j]) for j in columns
        }
        return self

    def transform(self, X: Any) -> np.ndarray:
        check_is_fitted(self, "columns_")
        X = as_2d_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features, encoder was fitted with "
                f"{self.n_features_in_}"
            )
        passthrough = [
            X[:, j] for j in range(X.shape[1]) if j not in self.columns_
        ]
        blocks = []
        for j in self.columns_:
            categories = self.categories_[j]
            block = (
                X[:, j][:, None] == categories[None, :]
            ).astype(float)
            blocks.append(block)
        pieces = passthrough + blocks
        if not pieces:
            raise ValueError("encoder produced no output columns")
        return np.column_stack(pieces)


class KBinsDiscretizer(TransformerMixin, BaseComponent):
    """Quantile discretization of continuous features into ordinal bins.

    Each feature maps to its bin index in ``[0, n_bins)``; useful for
    turning continuous sensor levels into operating bands that trees and
    rules can name.
    """

    def __init__(self, n_bins: int = 5):
        if n_bins < 2:
            raise ValueError("n_bins must be >= 2")
        self.n_bins = n_bins
        self.edges_: Optional[List[np.ndarray]] = None

    def fit(self, X: Any, y: Any = None) -> "KBinsDiscretizer":
        X = as_2d_array(X)
        quantiles = np.linspace(0, 1, self.n_bins + 1)[1:-1]
        self.edges_ = [
            np.unique(np.quantile(X[:, j], quantiles))
            for j in range(X.shape[1])
        ]
        return self

    def transform(self, X: Any) -> np.ndarray:
        check_is_fitted(self, "edges_")
        X = as_2d_array(X)
        if X.shape[1] != len(self.edges_):
            raise ValueError(
                f"X has {X.shape[1]} features, discretizer was fitted "
                f"with {len(self.edges_)}"
            )
        out = np.empty_like(X)
        for j, edges in enumerate(self.edges_):
            out[:, j] = np.searchsorted(edges, X[:, j], side="right")
        return out
