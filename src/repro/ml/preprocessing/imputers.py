"""Missing-data imputation.

Paper Section III: data imputation is one of the pre-defined analytics
steps, "e.g. mean, median, mode, multiple imputation by chained equations,
matrix factorization, k nearest neighbors, etc.".  We implement the
single-pass statistics imputers, a kNN imputer, and an iterative
chained-equations imputer (a lightweight MICE) on top of our own linear
regression.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.ml.base import (
    BaseComponent,
    TransformerMixin,
    check_is_fitted,
)

__all__ = [
    "SimpleImputer",
    "KNNImputer",
    "IterativeImputer",
    "MatrixFactorizationImputer",
]


def _as_float_with_nan(X: Any, name: str = "X") -> np.ndarray:
    """Like :func:`as_2d_array` but NaNs are allowed (they are the point)."""
    arr = np.asarray(X, dtype=float)
    if arr.ndim == 1:
        arr = arr.reshape(-1, 1)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 1-D or 2-D, got ndim={arr.ndim}")
    if arr.size == 0:
        raise ValueError(f"{name} is empty")
    return arr


def _column_mode(values: np.ndarray) -> float:
    uniques, counts = np.unique(values, return_counts=True)
    return float(uniques[np.argmax(counts)])


class SimpleImputer(TransformerMixin, BaseComponent):
    """Impute missing values (NaN) with a per-column statistic.

    Parameters
    ----------
    strategy:
        One of ``"mean"``, ``"median"``, ``"mode"`` or ``"constant"``.
    fill_value:
        Used only with ``strategy="constant"``.
    """

    _STRATEGIES = ("mean", "median", "mode", "constant")

    def __init__(self, strategy: str = "mean", fill_value: float = 0.0):
        if strategy not in self._STRATEGIES:
            raise ValueError(
                f"strategy must be one of {self._STRATEGIES}, got {strategy!r}"
            )
        self.strategy = strategy
        self.fill_value = fill_value
        self.statistics_: Optional[np.ndarray] = None

    def fit(self, X: Any, y: Any = None) -> "SimpleImputer":
        X = _as_float_with_nan(X)
        stats = np.empty(X.shape[1])
        for j in range(X.shape[1]):
            observed = X[~np.isnan(X[:, j]), j]
            if self.strategy == "constant":
                stats[j] = self.fill_value
            elif observed.size == 0:
                stats[j] = self.fill_value
            elif self.strategy == "mean":
                stats[j] = observed.mean()
            elif self.strategy == "median":
                stats[j] = np.median(observed)
            else:  # mode
                stats[j] = _column_mode(observed)
        self.statistics_ = stats
        return self

    def transform(self, X: Any) -> np.ndarray:
        check_is_fitted(self, "statistics_")
        X = _as_float_with_nan(X).copy()
        if X.shape[1] != self.statistics_.shape[0]:
            raise ValueError(
                f"X has {X.shape[1]} features, imputer was fitted with "
                f"{self.statistics_.shape[0]}"
            )
        for j in range(X.shape[1]):
            mask = np.isnan(X[:, j])
            X[mask, j] = self.statistics_[j]
        return X


class KNNImputer(TransformerMixin, BaseComponent):
    """Impute each missing value from the k nearest complete rows.

    Distance between rows is the euclidean distance over the columns
    observed in *both* rows, rescaled to the full feature count
    (the standard nan-euclidean distance).
    """

    def __init__(self, n_neighbors: int = 5):
        if n_neighbors < 1:
            raise ValueError("n_neighbors must be >= 1")
        self.n_neighbors = n_neighbors
        self.train_: Optional[np.ndarray] = None
        self.fallback_: Optional[np.ndarray] = None

    def fit(self, X: Any, y: Any = None) -> "KNNImputer":
        X = _as_float_with_nan(X)
        self.train_ = X.copy()
        # Column means over observed values: fallback when no neighbor
        # observes the column.
        with np.errstate(invalid="ignore"):
            fallback = np.nanmean(X, axis=0)
        self.fallback_ = np.where(np.isnan(fallback), 0.0, fallback)
        return self

    def _nan_distances(self, row: np.ndarray) -> np.ndarray:
        train = self.train_
        both = ~np.isnan(row) & ~np.isnan(train)
        diff = np.where(both, train - row, 0.0)
        counts = both.sum(axis=1)
        sq = (diff**2).sum(axis=1)
        n_features = train.shape[1]
        with np.errstate(divide="ignore", invalid="ignore"):
            scaled = sq * (n_features / counts)
        scaled[counts == 0] = np.inf
        return np.sqrt(scaled)

    def transform(self, X: Any) -> np.ndarray:
        check_is_fitted(self, "train_")
        X = _as_float_with_nan(X).copy()
        for i in range(X.shape[0]):
            missing = np.isnan(X[i])
            if not missing.any():
                continue
            distances = self._nan_distances(X[i])
            order = np.argsort(distances)
            for j in np.flatnonzero(missing):
                donors = []
                for idx in order:
                    if np.isinf(distances[idx]):
                        break
                    value = self.train_[idx, j]
                    if not np.isnan(value):
                        donors.append(value)
                    if len(donors) == self.n_neighbors:
                        break
                X[i, j] = np.mean(donors) if donors else self.fallback_[j]
        return X


class IterativeImputer(TransformerMixin, BaseComponent):
    """Multiple-imputation-by-chained-equations style imputer.

    Each column with missing values is modeled as a linear function of the
    other columns; imputations are refined over ``max_iter`` rounds.  This
    is the "multiple imputation by chained equations" option named in paper
    Section III, restricted to a single chain for determinism.
    """

    def __init__(self, max_iter: int = 5, tol: float = 1e-3):
        if max_iter < 1:
            raise ValueError("max_iter must be >= 1")
        self.max_iter = max_iter
        self.tol = tol
        self.initial_: Optional[SimpleImputer] = None
        self.models_: Optional[dict] = None

    def fit(self, X: Any, y: Any = None) -> "IterativeImputer":
        from repro.ml.linear.linear_regression import RidgeRegression

        X = _as_float_with_nan(X)
        self.initial_ = SimpleImputer(strategy="mean").fit(X)
        filled = self.initial_.transform(X)
        nan_mask = np.isnan(X)
        target_cols = [j for j in range(X.shape[1]) if nan_mask[:, j].any()]
        models = {}
        for _ in range(self.max_iter):
            previous = filled.copy()
            for j in target_cols:
                others = np.delete(filled, j, axis=1)
                model = RidgeRegression(alpha=1e-3)
                observed = ~nan_mask[:, j]
                if observed.sum() < 2:
                    continue
                model.fit(others[observed], filled[observed, j])
                models[j] = model
                predicted = model.predict(others[nan_mask[:, j]])
                filled[nan_mask[:, j], j] = predicted
            shift = np.abs(filled - previous).max() if target_cols else 0.0
            if shift < self.tol:
                break
        self.models_ = models
        return self

    def transform(self, X: Any) -> np.ndarray:
        check_is_fitted(self, "models_")
        X = _as_float_with_nan(X)
        filled = self.initial_.transform(X)
        nan_mask = np.isnan(X)
        for _ in range(self.max_iter):
            for j, model in self.models_.items():
                if j >= X.shape[1] or not nan_mask[:, j].any():
                    continue
                others = np.delete(filled, j, axis=1)
                filled[nan_mask[:, j], j] = model.predict(
                    others[nan_mask[:, j]]
                )
        return filled


class MatrixFactorizationImputer(TransformerMixin, BaseComponent):
    """Low-rank matrix completion by alternating least squares.

    The "matrix factorization" imputation option of paper Section III:
    the (column-standardized) data matrix is approximated as ``U @ V.T``
    with rank ``n_factors``, fitting only the observed entries with an
    L2 penalty; missing entries are read off the reconstruction.
    Appropriate when columns are correlated — the low-rank structure
    transfers information across columns in a way per-column statistics
    cannot.
    """

    def __init__(
        self,
        n_factors: int = 3,
        max_iter: int = 30,
        regularization: float = 0.1,
        random_state: Optional[int] = None,
    ):
        if n_factors < 1:
            raise ValueError("n_factors must be >= 1")
        if max_iter < 1:
            raise ValueError("max_iter must be >= 1")
        if regularization < 0:
            raise ValueError("regularization must be >= 0")
        self.n_factors = n_factors
        self.max_iter = max_iter
        self.regularization = regularization
        self.random_state = random_state
        self.column_mean_: Optional[np.ndarray] = None
        self.column_std_: Optional[np.ndarray] = None
        self.item_factors_: Optional[np.ndarray] = None

    def _standardize(self, X: np.ndarray) -> np.ndarray:
        return (X - self.column_mean_) / self.column_std_

    def _als(
        self, X: np.ndarray, mask: np.ndarray, rng: np.random.Generator
    ) -> tuple:
        """Alternating least squares on observed entries of a
        standardized matrix with NaNs outside ``mask``."""
        n, d = X.shape
        k = min(self.n_factors, min(n, d))
        U = 0.1 * rng.normal(size=(n, k))
        V = 0.1 * rng.normal(size=(d, k))
        ridge = self.regularization * np.eye(k)
        filled = np.where(mask, X, 0.0)
        for _ in range(self.max_iter):
            for i in range(n):
                observed = mask[i]
                if not observed.any():
                    continue
                Vo = V[observed]
                U[i] = np.linalg.solve(
                    Vo.T @ Vo + ridge, Vo.T @ filled[i, observed]
                )
            for j in range(d):
                observed = mask[:, j]
                if not observed.any():
                    continue
                Uo = U[observed]
                V[j] = np.linalg.solve(
                    Uo.T @ Uo + ridge, Uo.T @ filled[observed, j]
                )
        return U, V

    def fit(self, X: Any, y: Any = None) -> "MatrixFactorizationImputer":
        X = _as_float_with_nan(X)
        with np.errstate(invalid="ignore"):
            mean = np.nanmean(X, axis=0)
            std = np.nanstd(X, axis=0)
        mean = np.where(np.isnan(mean), 0.0, mean)
        std = np.where(np.isnan(std) | (std == 0.0), 1.0, std)
        self.column_mean_ = mean
        self.column_std_ = std
        rng = np.random.default_rng(self.random_state)
        standardized = self._standardize(X)
        mask = ~np.isnan(X)
        _, V = self._als(standardized, mask, rng)
        self.item_factors_ = V
        return self

    def transform(self, X: Any) -> np.ndarray:
        check_is_fitted(self, "item_factors_")
        X = _as_float_with_nan(X)
        if X.shape[1] != self.item_factors_.shape[0]:
            raise ValueError(
                f"X has {X.shape[1]} features, imputer was fitted with "
                f"{self.item_factors_.shape[0]}"
            )
        standardized = self._standardize(X)
        mask = ~np.isnan(X)
        V = self.item_factors_
        k = V.shape[1]
        ridge = self.regularization * np.eye(k)
        out = X.copy()
        for i in range(X.shape[0]):
            observed = mask[i]
            if observed.all():
                continue
            if not observed.any():
                out[i] = self.column_mean_
                continue
            Vo = V[observed]
            u = np.linalg.solve(
                Vo.T @ Vo + ridge, Vo.T @ standardized[i, observed]
            )
            reconstruction = V @ u
            missing = ~observed
            out[i, missing] = (
                reconstruction[missing] * self.column_std_[missing]
                + self.column_mean_[missing]
            )
        return out
