"""From-scratch machine-learning substrate.

scikit-learn is not available in this environment, so every transformer
and estimator the paper's Transformer-Estimator Graphs reference is
implemented here on numpy, following the same ``fit``/``transform``/
``predict`` contracts and the ``name__param`` convention.
"""

from repro.ml.svm import LinearSVC, LinearSVR
from repro.ml.inspection import (
    PermutationImportance,
    partial_dependence,
    permutation_importance,
)
from repro.ml.base import (
    BaseComponent,
    ClassifierMixin,
    ClusterMixin,
    EstimatorMixin,
    NotFittedError,
    RegressorMixin,
    TransformerMixin,
    clone,
)

__all__ = [
    "BaseComponent",
    "TransformerMixin",
    "EstimatorMixin",
    "RegressorMixin",
    "ClassifierMixin",
    "ClusterMixin",
    "NotFittedError",
    "clone",
    "permutation_importance",
    "PermutationImportance",
    "partial_dependence",
    "LinearSVC",
    "LinearSVR",
]
