"""Cross-validated scoring of estimators and pipelines.

Implements the evaluation loop of paper Fig. 4: "we obtain K models and K
performance estimates.  Then, we take their average as the final
performance estimate."  Works with anything exposing ``fit``/``predict``
(bare estimators or :class:`repro.core.pipeline.Pipeline`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Union

import numpy as np

from repro.ml.base import as_1d_array, clone
from repro.ml.metrics.classification import (
    CLASSIFICATION_GREATER_IS_BETTER,
    CLASSIFICATION_METRICS,
)
from repro.ml.metrics.regression import (
    GREATER_IS_BETTER,
    REGRESSION_METRICS,
)
from repro.ml.model_selection.splits import KFold, resolve_splitter

__all__ = ["CrossValidationResult", "cross_validate", "resolve_metric"]


def resolve_metric(metric: Union[str, Callable]):
    """Resolve ``metric`` to ``(name, fn, greater_is_better)``.

    String names are looked up in the regression and classification
    registries; callables are assumed greater-is-better unless they carry
    a ``greater_is_better`` attribute.
    """
    if callable(metric):
        name = getattr(metric, "__name__", "custom")
        gib = bool(getattr(metric, "greater_is_better", True))
        return name, metric, gib
    if metric in REGRESSION_METRICS:
        return metric, REGRESSION_METRICS[metric], metric in GREATER_IS_BETTER
    if metric in CLASSIFICATION_METRICS:
        return (
            metric,
            CLASSIFICATION_METRICS[metric],
            metric in CLASSIFICATION_GREATER_IS_BETTER,
        )
    available = sorted(REGRESSION_METRICS) + sorted(CLASSIFICATION_METRICS)
    raise KeyError(f"unknown metric {metric!r}; available: {available}")


@dataclass
class CrossValidationResult:
    """Per-fold scores and their aggregate for one model on one dataset."""

    metric: str
    fold_scores: List[float]
    greater_is_better: bool
    fit_seconds: float = 0.0
    models: List[Any] = field(default_factory=list)

    @property
    def mean_score(self) -> float:
        """Average of the per-fold scores (Fig. 4's final estimate)."""
        return float(np.mean(self.fold_scores))

    @property
    def std_score(self) -> float:
        """Standard deviation of the per-fold scores."""
        return float(np.std(self.fold_scores))

    def better_than(self, other: Optional["CrossValidationResult"]) -> bool:
        """True if this result beats ``other`` under the shared metric."""
        if other is None:
            return True
        if self.metric != other.metric:
            raise ValueError(
                f"cannot compare {self.metric!r} with {other.metric!r}"
            )
        if self.greater_is_better:
            return self.mean_score > other.mean_score
        return self.mean_score < other.mean_score

    def summary(self) -> Dict[str, float]:
        """One-dict digest: metric, mean, std, fold count."""
        return {
            "metric": self.metric,
            "mean": self.mean_score,
            "std": self.std_score,
            "n_folds": len(self.fold_scores),
        }


def cross_validate(
    model: Any,
    X: Any,
    y: Any,
    cv: Any = None,
    metric: Union[str, Callable] = "rmse",
    keep_models: bool = False,
) -> CrossValidationResult:
    """Evaluate ``model`` with cross validation.

    Parameters
    ----------
    model:
        Anything with ``fit(X, y)`` and ``predict(X)``; it is cloned per
        fold (via :func:`repro.ml.base.clone`) so folds never share state.
    cv:
        A splitter instance, a splitter name, or ``None`` for 5-fold.
    metric:
        Metric name from the registries or a callable
        ``(y_true, y_pred) -> float``.
    keep_models:
        Retain the K fitted fold models on the result (costs memory; used
        by templates that inspect per-fold behaviour).
    """
    import time

    # Accept both tabular (2-D) and windowed time-series (3-D) inputs:
    # the splitters only index the leading sample axis.
    X = np.asarray(X, dtype=float)
    if X.ndim == 1:
        X = X.reshape(-1, 1)
    if X.ndim not in (2, 3):
        raise ValueError(f"X must be 1-D, 2-D or 3-D, got ndim={X.ndim}")
    y = as_1d_array(y)
    if len(X) != len(y):
        raise ValueError("X and y have inconsistent lengths")
    splitter = KFold(5) if cv is None else resolve_splitter(cv)
    name, fn, greater = resolve_metric(metric)
    scores: List[float] = []
    models: List[Any] = []
    started = time.perf_counter()
    for train_idx, test_idx in splitter.split(len(X)):
        fold_model = clone(model)
        fold_model.fit(X[train_idx], y[train_idx])
        predictions = fold_model.predict(X[test_idx])
        scores.append(float(fn(y[test_idx], predictions)))
        if keep_models:
            models.append(fold_model)
    elapsed = time.perf_counter() - started
    if not scores:
        raise ValueError("splitter produced no folds")
    return CrossValidationResult(
        metric=name,
        fold_scores=scores,
        greater_is_better=greater,
        fit_seconds=elapsed,
        models=models,
    )
