"""Nested K-fold cross validation (paper Section IV-B).

"Some examples of cross validations include K-fold, Nested K-fold, and
Monte-carlo."  And: "We can apply K-fold cross validation to either the
hyperparameter tuning, performance reporting, or both."  Nested CV is
the "both" case: an *outer* K-fold reports performance; within each
outer training fold an *inner* K-fold selects the hyper-parameter
setting, so the reported score is never contaminated by the tuning
choice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Union

import numpy as np

from repro.ml.base import as_1d_array, clone
from repro.ml.model_selection.cross_validate import (
    cross_validate,
    resolve_metric,
)
from repro.ml.model_selection.splits import KFold

__all__ = ["NestedCVResult", "nested_cross_validate"]


def _expand(grid: Mapping[str, Any]) -> List[Dict[str, Any]]:
    import itertools

    if not grid:
        return [{}]
    keys = sorted(grid)
    return [
        dict(zip(keys, values))
        for values in itertools.product(*(grid[k] for k in keys))
    ]


@dataclass
class NestedCVResult:
    """Outcome of one nested cross-validation run."""

    metric: str
    greater_is_better: bool
    outer_scores: List[float]
    chosen_params: List[Dict[str, Any]]

    @property
    def mean_score(self) -> float:
        """Average outer-fold score — the unbiased performance report."""
        return float(np.mean(self.outer_scores))

    @property
    def std_score(self) -> float:
        """Standard deviation of the outer-fold scores."""
        return float(np.std(self.outer_scores))

    def param_stability(self) -> Dict[str, int]:
        """How often each distinct setting won the inner tuning — an
        unstable choice across outer folds is itself a diagnostic."""
        counts: Dict[str, int] = {}
        for params in self.chosen_params:
            key = repr(sorted(params.items()))
            counts[key] = counts.get(key, 0) + 1
        return counts


def nested_cross_validate(
    model: Any,
    X: Any,
    y: Any,
    param_grid: Mapping[str, Any],
    outer_cv: Any = None,
    inner_cv: Any = None,
    metric: Union[str, Any] = "rmse",
) -> NestedCVResult:
    """Nested K-fold evaluation of ``model`` over ``param_grid``.

    Parameters
    ----------
    model:
        Estimator (or pipeline) template; parameters in ``param_grid``
        are applied with ``set_params``.  For pipelines use the
        ``name__param`` convention.
    param_grid:
        ``{param: [candidates]}``; the inner loop picks the best
        combination per outer fold.
    outer_cv, inner_cv:
        Splitters; default 5-fold outer / 3-fold inner.
    """
    X = np.asarray(X, dtype=float)
    if X.ndim == 1:
        X = X.reshape(-1, 1)
    y = as_1d_array(y)
    if len(X) != len(y):
        raise ValueError("X and y have inconsistent lengths")
    outer = outer_cv or KFold(5, random_state=0)
    inner = inner_cv or KFold(3, random_state=1)
    metric_name, metric_fn, greater = resolve_metric(metric)
    settings = _expand(param_grid)

    outer_scores: List[float] = []
    chosen: List[Dict[str, Any]] = []
    for train_idx, test_idx in outer.split(len(X)):
        X_train, y_train = X[train_idx], y[train_idx]
        best_setting: Optional[Dict[str, Any]] = None
        best_inner: Optional[float] = None
        for setting in settings:
            candidate = clone(model)
            if setting:
                candidate.set_params(**setting)
            inner_result = cross_validate(
                candidate, X_train, y_train, cv=inner, metric=metric
            )
            score = inner_result.mean_score
            better = (
                best_inner is None
                or (score > best_inner if greater else score < best_inner)
            )
            if better:
                best_inner = score
                best_setting = setting
        final = clone(model)
        if best_setting:
            final.set_params(**best_setting)
        final.fit(X_train, y_train)
        outer_scores.append(
            float(metric_fn(y[test_idx], final.predict(X[test_idx])))
        )
        chosen.append(dict(best_setting or {}))
    return NestedCVResult(
        metric=metric_name,
        greater_is_better=greater,
        outer_scores=outer_scores,
        chosen_params=chosen,
    )
