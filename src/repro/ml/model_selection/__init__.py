"""Cross-validation splitters and the cross_validate loop."""

from repro.ml.model_selection.cross_validate import (
    CrossValidationResult,
    cross_validate,
    resolve_metric,
)
from repro.ml.model_selection.nested import NestedCVResult, nested_cross_validate
from repro.ml.model_selection.splits import (
    AnchoredSlidingSplit,
    KFold,
    MonteCarloSplit,
    StratifiedKFold,
    TimeSeriesSlidingSplit,
    TrainTestSplit,
    resolve_splitter,
)

__all__ = [
    "KFold",
    "StratifiedKFold",
    "MonteCarloSplit",
    "TrainTestSplit",
    "TimeSeriesSlidingSplit",
    "AnchoredSlidingSplit",
    "resolve_splitter",
    "cross_validate",
    "CrossValidationResult",
    "resolve_metric",
    "nested_cross_validate",
    "NestedCVResult",
]
