"""Cross-validation splitters.

The paper names K-fold (Fig. 4), Monte-Carlo simulation (Table I),
Train-Test Split, and — for time series — the TimeSeriesSlidingSplit
(Fig. 12), which slides a train window, a buffer window, and a validation
window forward in time so that "the test data should have not any
information from the training data".
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

__all__ = [
    "KFold",
    "StratifiedKFold",
    "MonteCarloSplit",
    "TrainTestSplit",
    "TimeSeriesSlidingSplit",
    "AnchoredSlidingSplit",
    "resolve_splitter",
]

Split = Tuple[np.ndarray, np.ndarray]


class KFold:
    """K-fold cross validation (paper Fig. 4).

    "Input dataset D is randomly partitioned into K equally sized folds
    without replacement.  Next, the data from K-1 folds are used to train
    a given pipeline, and data from the remaining (single) fold is used to
    obtain predictions."
    """

    def __init__(
        self,
        n_splits: int = 5,
        shuffle: bool = True,
        random_state: Optional[int] = None,
    ):
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def get_n_splits(self, n_samples: Optional[int] = None) -> int:
        return self.n_splits

    def split(self, n_samples: int) -> Iterator[Split]:
        if n_samples < self.n_splits:
            raise ValueError(
                f"cannot split {n_samples} samples into {self.n_splits} folds"
            )
        indices = np.arange(n_samples)
        if self.shuffle:
            rng = np.random.default_rng(self.random_state)
            rng.shuffle(indices)
        fold_sizes = np.full(self.n_splits, n_samples // self.n_splits)
        fold_sizes[: n_samples % self.n_splits] += 1
        start = 0
        for size in fold_sizes:
            test = indices[start : start + size]
            train = np.concatenate(
                [indices[:start], indices[start + size :]]
            )
            yield train, test
            start += size


class StratifiedKFold:
    """K-fold preserving class proportions in every fold.

    Needed for the imbalanced failure-prediction data the paper motivates
    ("rare failure cases, but many successful cases", Section II): plain
    K-fold can produce folds with no positives at all.
    """

    def __init__(
        self,
        n_splits: int = 5,
        shuffle: bool = True,
        random_state: Optional[int] = None,
    ):
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def get_n_splits(self, n_samples: Optional[int] = None) -> int:
        return self.n_splits

    def split_labels(self, y: np.ndarray) -> Iterator[Split]:
        """Split by explicit labels (the generic ``split(n)`` API cannot
        stratify, so this splitter takes ``y``)."""
        y = np.asarray(y).ravel()
        rng = np.random.default_rng(self.random_state)
        fold_of = np.empty(len(y), dtype=int)
        for label in np.unique(y):
            members = np.flatnonzero(y == label)
            if self.shuffle:
                rng.shuffle(members)
            fold_of[members] = np.arange(len(members)) % self.n_splits
        all_idx = np.arange(len(y))
        for fold in range(self.n_splits):
            test = all_idx[fold_of == fold]
            train = all_idx[fold_of != fold]
            if len(test) == 0 or len(train) == 0:
                raise ValueError(
                    "stratified split produced an empty fold; decrease "
                    "n_splits"
                )
            yield train, test

    def split(self, n_samples: int) -> Iterator[Split]:
        # Without labels, degrade to plain KFold semantics.
        yield from KFold(
            self.n_splits, self.shuffle, self.random_state
        ).split(n_samples)


class MonteCarloSplit:
    """Repeated random train/test splits ("monte-carlo simulation" row of
    Table I; also known as ShuffleSplit).  Each iteration draws a fresh
    random ``test_size`` fraction without replacement."""

    def __init__(
        self,
        n_splits: int = 10,
        test_size: float = 0.2,
        random_state: Optional[int] = None,
    ):
        if n_splits < 1:
            raise ValueError("n_splits must be >= 1")
        if not 0.0 < test_size < 1.0:
            raise ValueError("test_size must be in (0, 1)")
        self.n_splits = n_splits
        self.test_size = test_size
        self.random_state = random_state

    def get_n_splits(self, n_samples: Optional[int] = None) -> int:
        return self.n_splits

    def split(self, n_samples: int) -> Iterator[Split]:
        n_test = max(1, int(round(self.test_size * n_samples)))
        if n_test >= n_samples:
            raise ValueError("test_size leaves no training data")
        rng = np.random.default_rng(self.random_state)
        for _ in range(self.n_splits):
            permutation = rng.permutation(n_samples)
            yield permutation[n_test:], permutation[:n_test]


class TrainTestSplit:
    """A single train/test split (the paper's "Train-Test Split"
    alternative).  With ``shuffle=False`` the head of the data trains and
    the tail tests, the usual choice for ordered data."""

    def __init__(
        self,
        test_size: float = 0.25,
        shuffle: bool = True,
        random_state: Optional[int] = None,
    ):
        if not 0.0 < test_size < 1.0:
            raise ValueError("test_size must be in (0, 1)")
        self.test_size = test_size
        self.shuffle = shuffle
        self.random_state = random_state

    def get_n_splits(self, n_samples: Optional[int] = None) -> int:
        return 1

    def split(self, n_samples: int) -> Iterator[Split]:
        n_test = max(1, int(round(self.test_size * n_samples)))
        if n_test >= n_samples:
            raise ValueError("test_size leaves no training data")
        indices = np.arange(n_samples)
        if self.shuffle:
            rng = np.random.default_rng(self.random_state)
            rng.shuffle(indices)
        yield indices[:-n_test], indices[-n_test:]


class TimeSeriesSlidingSplit:
    """Sliding train/buffer/validation windows over time (paper Fig. 12).

    "we use the size of a training and validation set with a buffer window
    between them ... The windows slide across time to include future data
    in the training and validation sets for k iterations."

    Window sizes may be given explicitly (in samples); when omitted they
    are derived from ``n_splits`` so that the k windows tile the series.
    Train indices always strictly precede the buffer, which strictly
    precedes validation — no leakage by construction.
    """

    def __init__(
        self,
        n_splits: int = 5,
        train_size: Optional[int] = None,
        val_size: Optional[int] = None,
        buffer_size: int = 0,
    ):
        if n_splits < 1:
            raise ValueError("n_splits must be >= 1")
        if buffer_size < 0:
            raise ValueError("buffer_size must be >= 0")
        self.n_splits = n_splits
        self.train_size = train_size
        self.val_size = val_size
        self.buffer_size = buffer_size

    def get_n_splits(self, n_samples: Optional[int] = None) -> int:
        return self.n_splits

    def split(self, n_samples: int) -> Iterator[Split]:
        val = self.val_size
        train = self.train_size
        if val is None:
            val = max(1, n_samples // (2 * (self.n_splits + 1)))
        if train is None:
            train = max(
                1,
                n_samples
                - self.buffer_size
                - val
                - (self.n_splits - 1) * val,
            )
        window = train + self.buffer_size + val
        if window > n_samples:
            raise ValueError(
                f"train({train}) + buffer({self.buffer_size}) + val({val}) "
                f"= {window} exceeds n_samples={n_samples}"
            )
        last_start = n_samples - window
        if self.n_splits == 1:
            starts = [last_start]
        else:
            starts = np.unique(
                np.linspace(0, last_start, self.n_splits).astype(int)
            )
        indices = np.arange(n_samples)
        for start in starts:
            train_idx = indices[start : start + train]
            val_start = start + train + self.buffer_size
            val_idx = indices[val_start : val_start + val]
            yield train_idx, val_idx


class AnchoredSlidingSplit:
    """Sliding/expanding windows anchored at absolute series positions.

    :class:`TimeSeriesSlidingSplit` derives its fold starts from
    ``n_samples``, so every fold *moves* when the series grows — appending
    one row changes every train/validation window and defeats incremental
    reuse.  This splitter anchors folds at fixed absolute positions
    instead: the folds produced at series length ``n1`` are a strict
    prefix of the folds produced at any length ``n2 > n1``, which is what
    lets :class:`repro.streaming.StreamingEvaluator` keep earlier fold
    scores and only compute the folds that newly fit.

    Two modes:

    * **expanding** (``train_size=None``): fold ``k`` trains on
      ``[0, initial_train_size + k*stride)`` and validates on the
      ``val_size`` rows after the buffer.  Each fold's train window
      extends the previous one from the same origin — the shape that
      ``partial_fit`` warm-starts exploit.
    * **sliding** (``train_size`` given): fold ``k`` trains on
      ``[k*stride, k*stride + train_size)``.  Train windows move, so new
      folds are cold, but old folds stay byte-stable.

    Train strictly precedes the buffer, which strictly precedes
    validation — no leakage, as in Fig. 12.
    """

    def __init__(
        self,
        val_size: int = 1,
        train_size: Optional[int] = None,
        initial_train_size: Optional[int] = None,
        buffer_size: int = 0,
        stride: Optional[int] = None,
    ):
        if val_size < 1:
            raise ValueError("val_size must be >= 1")
        if buffer_size < 0:
            raise ValueError("buffer_size must be >= 0")
        if stride is not None and stride < 1:
            raise ValueError("stride must be >= 1")
        if train_size is None and initial_train_size is None:
            raise ValueError(
                "expanding mode needs initial_train_size; sliding mode "
                "needs train_size"
            )
        if train_size is not None and train_size < 1:
            raise ValueError("train_size must be >= 1")
        if initial_train_size is not None and initial_train_size < 1:
            raise ValueError("initial_train_size must be >= 1")
        self.val_size = val_size
        self.train_size = train_size
        self.initial_train_size = initial_train_size
        self.buffer_size = buffer_size
        self.stride = stride

    @classmethod
    def from_sliding(
        cls, sliding: TimeSeriesSlidingSplit, n_samples: int
    ) -> "AnchoredSlidingSplit":
        """Freeze a :class:`TimeSeriesSlidingSplit`'s window sizes as
        derived at ``n_samples`` into an anchored splitter.

        Parameters
        ----------
        sliding:
            The splitter whose (possibly length-derived) train/val/buffer
            sizes to adopt.
        n_samples:
            The series length at which to evaluate the derived sizes.

        Returns
        -------
        A sliding-mode :class:`AnchoredSlidingSplit` with those frozen
        sizes and ``stride=val_size``, whose folds no longer move as the
        series grows.
        """
        val = sliding.val_size
        if val is None:
            val = max(1, n_samples // (2 * (sliding.n_splits + 1)))
        train = sliding.train_size
        if train is None:
            train = max(
                1,
                n_samples
                - sliding.buffer_size
                - val
                - (sliding.n_splits - 1) * val,
            )
        return cls(
            val_size=val,
            train_size=train,
            buffer_size=sliding.buffer_size,
            stride=val,
        )

    def _stride(self) -> int:
        return self.stride if self.stride is not None else self.val_size

    def fold_bounds(self, n_samples: int):
        """Absolute ``(train_start, train_end, val_start, val_end)`` of
        every fold that fits within ``n_samples``.

        Parameters
        ----------
        n_samples:
            Current series length.

        Returns
        -------
        A list of 4-tuples, oldest fold first — a prefix-stable function
        of ``n_samples``.
        """
        stride = self._stride()
        bounds = []
        k = 0
        while True:
            if self.train_size is None:
                train_start = 0
                train_end = self.initial_train_size + k * stride
            else:
                train_start = k * stride
                train_end = train_start + self.train_size
            val_start = train_end + self.buffer_size
            val_end = val_start + self.val_size
            if val_end > n_samples:
                break
            bounds.append((train_start, train_end, val_start, val_end))
            k += 1
        return bounds

    def get_n_splits(self, n_samples: Optional[int] = None) -> int:
        if n_samples is None:
            raise ValueError(
                "AnchoredSlidingSplit derives its fold count from the "
                "series length; pass n_samples"
            )
        return len(self.fold_bounds(n_samples))

    def split(self, n_samples: int) -> Iterator[Split]:
        bounds = self.fold_bounds(n_samples)
        if not bounds:
            raise ValueError(
                f"no anchored fold fits in n_samples={n_samples}"
            )
        for train_start, train_end, val_start, val_end in bounds:
            yield (
                np.arange(train_start, train_end),
                np.arange(val_start, val_end),
            )


_SPLITTERS = {
    "kfold": KFold,
    "stratified_kfold": StratifiedKFold,
    "monte_carlo": MonteCarloSplit,
    "train_test": TrainTestSplit,
    "time_series_sliding": TimeSeriesSlidingSplit,
    "anchored_sliding": AnchoredSlidingSplit,
}


def resolve_splitter(spec, **kwargs):
    """Resolve a splitter from a name (``"kfold"`` …) or pass an instance
    through unchanged.  Keyword arguments go to the named constructor."""
    if isinstance(spec, str):
        try:
            cls = _SPLITTERS[spec]
        except KeyError:
            raise KeyError(
                f"unknown splitter {spec!r}; available: {sorted(_SPLITTERS)}"
            ) from None
        return cls(**kwargs)
    if hasattr(spec, "split"):
        return spec
    raise TypeError(f"cannot interpret {spec!r} as a splitter")
