"""Linear support-vector machines.

Paper Section V credits scikit-learn with "support vector machines,
random forests, gradient boosting, k-means and DBSCAN", all usable by
the system; SVMs are the one family the substrate was missing.
:class:`LinearSVC` optimizes the L2-regularized hinge loss and
:class:`LinearSVR` the epsilon-insensitive loss, both with averaged
subgradient descent — the standard primal solvers at this scale.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.ml.base import (
    BaseComponent,
    ClassifierMixin,
    RegressorMixin,
    as_1d_array,
    as_2d_array,
    check_consistent_length,
    check_is_fitted,
)

__all__ = ["LinearSVC", "LinearSVR"]


class LinearSVC(ClassifierMixin, BaseComponent):
    """Binary linear SVM with hinge loss.

    Trained by full-batch subgradient descent with iterate averaging
    (the tail average stabilizes the non-smooth objective).

    Parameters
    ----------
    C:
        Inverse regularization strength (larger C = less regularization),
        matching the conventional SVM parameterization.
    """

    def __init__(
        self,
        C: float = 1.0,
        learning_rate: float = 0.05,
        max_iter: int = 400,
        tol: float = 1e-5,
    ):
        if C <= 0:
            raise ValueError("C must be positive")
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if max_iter < 1:
            raise ValueError("max_iter must be >= 1")
        self.C = C
        self.learning_rate = learning_rate
        self.max_iter = max_iter
        self.tol = tol
        self.classes_: Optional[np.ndarray] = None
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: Optional[float] = None

    def fit(self, X: Any, y: Any) -> "LinearSVC":
        X = as_2d_array(X)
        y = as_1d_array(y)
        check_consistent_length(X, y)
        self.classes_ = np.unique(y)
        if len(self.classes_) != 2:
            raise ValueError(
                f"LinearSVC is binary; got {len(self.classes_)} classes"
            )
        signs = np.where(y == self.classes_[1], 1.0, -1.0)
        n, d = X.shape
        w = np.zeros(d)
        b = 0.0
        w_sum = np.zeros(d)
        b_sum = 0.0
        averaged = 0
        lam = 1.0 / (self.C * n)
        for iteration in range(self.max_iter):
            margins = signs * (X @ w + b)
            violating = margins < 1.0
            grad_w = lam * w - (signs[violating, None] * X[violating]).sum(
                axis=0
            ) / n
            grad_b = -signs[violating].sum() / n
            step = self.learning_rate / (1.0 + 0.01 * iteration)
            w -= step * grad_w
            b -= step * grad_b
            if iteration >= self.max_iter // 2:
                w_sum += w
                b_sum += b
                averaged += 1
            if max(np.abs(grad_w).max(), abs(grad_b)) < self.tol:
                break
        if averaged:
            w = w_sum / averaged
            b = b_sum / averaged
        self.coef_ = w
        self.intercept_ = float(b)
        return self

    def decision_function(self, X: Any) -> np.ndarray:
        """Signed distance to the separating hyperplane (positive =
        ``classes_[1]``)."""
        check_is_fitted(self, "coef_")
        X = as_2d_array(X)
        if X.shape[1] != self.coef_.shape[0]:
            raise ValueError(
                f"X has {X.shape[1]} features, model was fitted with "
                f"{self.coef_.shape[0]}"
            )
        return X @ self.coef_ + self.intercept_

    def predict(self, X: Any) -> np.ndarray:
        scores = self.decision_function(X)
        return np.where(scores >= 0, self.classes_[1], self.classes_[0])


class LinearSVR(RegressorMixin, BaseComponent):
    """Linear support-vector regression with epsilon-insensitive loss."""

    def __init__(
        self,
        C: float = 1.0,
        epsilon: float = 0.1,
        learning_rate: float = 0.05,
        max_iter: int = 400,
        tol: float = 1e-5,
    ):
        if C <= 0:
            raise ValueError("C must be positive")
        if epsilon < 0:
            raise ValueError("epsilon must be >= 0")
        if max_iter < 1:
            raise ValueError("max_iter must be >= 1")
        self.C = C
        self.epsilon = epsilon
        self.learning_rate = learning_rate
        self.max_iter = max_iter
        self.tol = tol
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: Optional[float] = None

    def fit(self, X: Any, y: Any) -> "LinearSVR":
        X = as_2d_array(X)
        y = as_1d_array(y).astype(float)
        check_consistent_length(X, y)
        n, d = X.shape
        w = np.zeros(d)
        b = float(y.mean())
        w_sum = np.zeros(d)
        b_sum = 0.0
        averaged = 0
        lam = 1.0 / (self.C * n)
        for iteration in range(self.max_iter):
            residual = X @ w + b - y
            outside = np.abs(residual) > self.epsilon
            direction = np.sign(residual) * outside
            grad_w = lam * w + (direction[:, None] * X).sum(axis=0) / n
            grad_b = direction.sum() / n
            step = self.learning_rate / (1.0 + 0.01 * iteration)
            w -= step * grad_w
            b -= step * grad_b
            if iteration >= self.max_iter // 2:
                w_sum += w
                b_sum += b
                averaged += 1
            if max(np.abs(grad_w).max(), abs(grad_b)) < self.tol:
                break
        if averaged:
            w = w_sum / averaged
            b = b_sum / averaged
        self.coef_ = w
        self.intercept_ = float(b)
        return self

    def predict(self, X: Any) -> np.ndarray:
        check_is_fitted(self, "coef_")
        X = as_2d_array(X)
        if X.shape[1] != self.coef_.shape[0]:
            raise ValueError(
                f"X has {X.shape[1]} features, model was fitted with "
                f"{self.coef_.shape[0]}"
            )
        return X @ self.coef_ + self.intercept_
