"""Sharded, replicated DARR: the cooperation tier at scale.

The paper promises the repository is "replicated across multiple
geographic areas for high availability and disaster recovery" (Section
III).  A single :class:`~repro.darr.repository.DataAnalyticsResultsRepository`
is the cooperation bottleneck and a single point of failure; this module
scales it out:

* :class:`HashRing` — a consistent-hash ring with virtual nodes.  Keys
  hash onto the ring; each key's *preference order* is the sequence of
  distinct shards encountered walking clockwise from its point.  Adding
  or removing one shard changes ownership only for the ranges that
  shard gains or loses — the property that keeps rebalancing traffic
  proportional to ``1/N`` of the data instead of all of it.
* :class:`ShardedDarr` — fronts N independent repository shards.  A
  publish lands on the key's primary (first live shard in preference
  order) and propagates to ``replication_factor - 1`` followers,
  synchronously or lazily (the
  :class:`~repro.distributed.replication.ReplicatedDataStore` model
  applied to the results plane).  Claims route shard-aware to the
  primary, expire per shard on the shared clock, and migrate at
  shard-handoff boundaries.  Reads fall back to followers when a
  primary is down, under ``strong`` / ``monotonic`` / ``eventual``
  consistency levels.
* **Crash-driven rebalancing** — :meth:`ShardedDarr.crash_shard`
  fail-stops a shard (its volatile results and claims are gone) and
  re-replicates every under-replicated range from the surviving
  copies; :meth:`ShardedDarr.add_shard` joins a shard and migrates only
  its owed ranges (records *and* live claims); bytes moved and routing
  hops are accounted throughout.

The fabric is a drop-in for the single repository: it duck-types the
full DARR surface (``publish`` / ``fetch`` / ``has`` / ``claim_job`` /
``release_claim`` / ``query`` / ``best`` / ...), so
:class:`~repro.darr.coordinator.CooperativeEvaluator`, the
:class:`~repro.store.layered.DarrStore` tier and
:class:`~repro.serve.service.AnalyticsService` work against it
unchanged — and degrade exactly as before when a whole range is down
(:class:`~repro.faults.ServiceUnavailable`).

Chaos hooks (for :class:`~repro.faults.FaultInjector`): a ``crash``
fault at ``sharded.route`` fail-stops the shard about to be contacted
(mid-publish / mid-claim / mid-fetch); at ``sharded.replicate`` it
fail-stops the follower receiving a replica; at ``sharded.rebalance``
it fail-stops the shard receiving a migrated record (mid-rebalance).
``unavailable`` faults at ``sharded.route`` make the whole fabric
unreachable for that call; at ``sharded.replicate`` they defer the
copy to the pending queue (drained by :meth:`ShardedDarr.propagate`).
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.darr.records import AnalyticsResult
from repro.darr.repository import (
    ClaimOutcome,
    DataAnalyticsResultsRepository,
)
from repro.distributed.cluster import SimClock, SimulatedNetwork
from repro.faults import NodeCrashed, ServiceUnavailable
from repro.obs import resolve_telemetry

__all__ = ["HashRing", "ShardedDarr", "CONSISTENCY_LEVELS"]

#: Read consistency levels, mirroring
#: :data:`repro.distributed.replication.CONSISTENCY_LEVELS`.
CONSISTENCY_LEVELS = ("strong", "monotonic", "eventual")


def _hash_point(data: str) -> int:
    """64-bit ring position of ``data`` (stable across processes)."""
    digest = hashlib.sha256(data.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent-hash ring with virtual nodes.

    Each member contributes ``virtual_nodes`` points on a 64-bit ring;
    a key belongs to the first member clockwise from its own point.
    With ``V`` virtual nodes per member the expected share of each
    member is ``1/N`` with variance shrinking as ``V`` grows, and
    adding or removing a member moves only the ranges between its
    points and their predecessors.

    Parameters
    ----------
    members:
        Initial member names.
    virtual_nodes:
        Points per member on the ring (>= 1); more points give a
        smoother key distribution at slightly larger ring size.
    """

    def __init__(self, members: Iterable[str] = (), virtual_nodes: int = 64):
        if virtual_nodes < 1:
            raise ValueError(
                f"virtual_nodes must be >= 1, got {virtual_nodes}"
            )
        self.virtual_nodes = virtual_nodes
        self._members: List[str] = []
        self._points: List[int] = []
        self._names: List[str] = []
        for name in members:
            self.add(name)

    @property
    def members(self) -> List[str]:
        """Member names in insertion order."""
        return list(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, name: str) -> bool:
        return name in self._members

    def add(self, name: str) -> None:
        """Join one member (``virtual_nodes`` ring points).

        Parameters
        ----------
        name:
            Member name; must be new and non-empty.
        """
        if not name:
            raise ValueError("member name must be non-empty")
        if name in self._members:
            raise ValueError(f"member {name!r} already on the ring")
        self._members.append(name)
        points = [
            (_hash_point(f"{name}#{i}"), name)
            for i in range(self.virtual_nodes)
        ]
        merged = sorted(zip(self._points, self._names))
        merged.extend(points)
        merged.sort()
        self._points = [p for p, _ in merged]
        self._names = [n for _, n in merged]

    def remove(self, name: str) -> None:
        """Leave the ring, freeing the member's ranges.

        Parameters
        ----------
        name:
            Member to remove; must be on the ring.
        """
        if name not in self._members:
            raise KeyError(f"member {name!r} not on the ring")
        self._members.remove(name)
        kept = [
            (p, n)
            for p, n in zip(self._points, self._names)
            if n != name
        ]
        self._points = [p for p, _ in kept]
        self._names = [n for _, n in kept]

    def iter_preference(self, key: str) -> Iterator[str]:
        """Distinct members in preference order for ``key``.

        Walks the ring clockwise from the key's point, yielding each
        member the first time one of its virtual nodes is met.  The
        first yielded member is the key's primary; the next ``R - 1``
        are its replica set under replication factor ``R``; members
        after that step in when earlier ones crash.

        Parameters
        ----------
        key:
            The key to place.

        Returns
        -------
        A lazy iterator over distinct member names (all members are
        eventually yielded).
        """
        n_points = len(self._points)
        if n_points == 0:
            return
        start = bisect_right(self._points, _hash_point(key)) % n_points
        yielded: set = set()
        n_members = len(self._members)
        for step in range(n_points):
            name = self._names[(start + step) % n_points]
            if name in yielded:
                continue
            yielded.add(name)
            yield name
            if len(yielded) == n_members:
                return

    def owners(self, key: str, n: int) -> List[str]:
        """The first ``n`` members in ``key``'s preference order.

        Parameters
        ----------
        key:
            The key to place.
        n:
            How many distinct owners to return (capped at the member
            count).

        Returns
        -------
        Up to ``n`` member names, primary first.
        """
        out: List[str] = []
        for name in self.iter_preference(key):
            out.append(name)
            if len(out) >= n:
                break
        return out


class ShardedDarr:
    """Consistent-hash sharded, replicated results repository.

    A drop-in for
    :class:`~repro.darr.repository.DataAnalyticsResultsRepository`
    that spreads records over N shards with ``replication_factor``
    copies each.  See the module docstring for the routing,
    replication, failover and rebalancing semantics.

    Parameters
    ----------
    n_shards:
        How many shards to build when ``shards`` is not given.
    replication_factor:
        Copies kept of every record (1 = no replication; capped at the
        shard count).  Publishes land on the primary and propagate to
        ``replication_factor - 1`` followers.
    shards:
        Pre-built repository shards to adopt instead of building
        ``n_shards`` fresh ones (names must be unique).
    name:
        Fabric name; also prefixes generated shard names.
    network:
        Optional :class:`~repro.distributed.cluster.SimulatedNetwork`;
        when given, client traffic, replication and rebalance transfers
        are accounted on it and its clock drives claim expiry.
    claim_duration:
        Per-shard claim TTL in seconds (see the single repository).
    sync_replication:
        When True (default) every publish propagates to its followers
        before returning; when False follower copies queue until
        :meth:`propagate` (lazy replication — followers lag, which the
        ``strong`` read level refuses to hide).
    virtual_nodes:
        Ring points per shard (see :class:`HashRing`).
    clock:
        Optional :class:`~repro.distributed.cluster.SimClock` used for
        claim expiry when no network is attached; a private clock is
        created when both are absent.
    telemetry:
        ``None`` or a :class:`~repro.obs.Telemetry` handle; sharding
        counters land under ``darr.shard_*`` / ``darr.rebalance_*``
        and are pushed down to every shard.
    """

    def __init__(
        self,
        n_shards: int = 8,
        replication_factor: int = 2,
        shards: Optional[List[DataAnalyticsResultsRepository]] = None,
        name: str = "darr",
        network: Optional[SimulatedNetwork] = None,
        claim_duration: float = 300.0,
        sync_replication: bool = True,
        virtual_nodes: int = 64,
        clock: Optional[SimClock] = None,
        telemetry: Any = None,
    ):
        self.name = name
        self.network = network
        self.claim_duration = claim_duration
        self.sync_replication = sync_replication
        self._clock = (
            network.clock if network is not None else (clock or SimClock())
        )
        if shards is None:
            if n_shards < 1:
                raise ValueError(f"n_shards must be >= 1, got {n_shards}")
            shards = [
                DataAnalyticsResultsRepository(
                    f"{name}-s{i:02d}",
                    network=network,
                    claim_duration=claim_duration,
                    clock=None if network is not None else self._clock,
                )
                for i in range(n_shards)
            ]
        if not shards:
            raise ValueError("need at least one shard")
        names = [shard.name for shard in shards]
        if len(set(names)) != len(names):
            raise ValueError(f"shard names must be unique, got {names}")
        if not 1 <= replication_factor <= len(shards):
            raise ValueError(
                f"replication_factor must be in [1, {len(shards)}], got "
                f"{replication_factor}"
            )
        self.replication_factor = replication_factor
        self.shards: Dict[str, DataAnalyticsResultsRepository] = {
            shard.name: shard for shard in shards
        }
        for shard in shards:
            if shard.network is None and shard.clock is None:
                shard.clock = self._clock
        self.ring = HashRing(names, virtual_nodes=virtual_nodes)
        self._alive: Dict[str, bool] = {n: True for n in names}
        #: Per-shard queues of (source, record) copies awaiting lazy
        #: propagation; a shard with a non-empty queue is not caught up
        #: and cannot serve ``strong`` reads.
        self._pending: Dict[str, List[Tuple[str, AnalyticsResult]]] = {}
        #: Monotonic-read session state: client -> keys it has seen.
        self._sessions: Dict[str, set] = {}
        self._needs_repair: set = set()
        self._repairing = False
        self._fault_injector: Optional[Any] = None
        self._tel = resolve_telemetry(telemetry)
        self.stats = {
            "publishes": 0,
            "duplicate_publishes": 0,
            "replications": 0,
            "replication_bytes": 0,
            "replications_deferred": 0,
            "routing_hops": 0,
            "claim_routing_hops": 0,
            "failovers": 0,
            "shard_crashes": 0,
            "shards_added": 0,
            "shard_recoveries": 0,
            "rebalances": 0,
            "rebalance_records_moved": 0,
            "rebalance_bytes_moved": 0,
            "rebalance_records_dropped": 0,
            "claims_migrated": 0,
            "claims_lost_to_crash": 0,
        }

    # -- attribute plumbing -------------------------------------------------
    @property
    def fault_injector(self) -> Optional[Any]:
        """Attached :class:`~repro.faults.FaultInjector` (``None`` in
        production).  Assigning one arms both the fabric-level hooks
        (``sharded.route`` / ``sharded.replicate`` /
        ``sharded.rebalance``) and every shard's single-repository
        hooks (``darr.fetch`` / ``darr.claim`` / ``darr.publish``)."""
        return self._fault_injector

    @fault_injector.setter
    def fault_injector(self, injector: Optional[Any]) -> None:
        self._fault_injector = injector
        for shard in self.shards.values():
            shard.fault_injector = injector

    @property
    def telemetry(self):
        """The fabric's :class:`~repro.obs.Telemetry` handle; assigning
        one propagates it to every shard so per-shard ``darr.*``
        counters and fabric ``darr.shard_*`` counters share a sink."""
        return self._tel

    @telemetry.setter
    def telemetry(self, value: Any) -> None:
        self._tel = resolve_telemetry(value)
        for shard in self.shards.values():
            shard.telemetry = self._tel

    # -- internals ----------------------------------------------------------
    def _now(self) -> float:
        return self._clock.now

    def _check(self, site: str, **attrs: Any) -> None:
        injector = self._fault_injector
        if injector is not None:
            injector.check(site, **attrs)

    def _mark_crashed(self, name: str) -> None:
        """Fail-stop bookkeeping: wipe volatile state, queue repair."""
        if not self._alive.get(name, False):
            return
        self._alive[name] = False
        shard = self.shards[name]
        lost = shard.claim_count()
        shard.wipe()
        self._pending.pop(name, None)
        self._needs_repair.add(name)
        self.stats["shard_crashes"] += 1
        self.stats["claims_lost_to_crash"] += lost
        self._tel.count("darr.shard_crashes")
        if lost:
            self._tel.count("darr.claims_lost_to_crash", lost)

    def _route(self, key: str, op: str) -> List[str]:
        """Live replica set for ``key`` in preference order.

        Fires the ``sharded.route`` hook once per candidate shard; a
        ``crash`` fault fail-stops that candidate and routing hops to
        the next preference (every skipped shard — dead or crashing —
        counts one routing hop).  Raises
        :class:`~repro.faults.ServiceUnavailable` when no live shard
        owns the key's range.
        """
        owners: List[str] = []
        hops = 0
        failover = False
        for candidate in self.ring.iter_preference(key):
            if len(owners) >= self.replication_factor:
                break
            if not self._alive[candidate]:
                hops += 1
                if not owners:
                    failover = True
                continue
            try:
                self._check(
                    "sharded.route", key=key, shard=candidate, op=op
                )
            except NodeCrashed:
                self._mark_crashed(candidate)
                hops += 1
                if not owners:
                    failover = True
                continue
            owners.append(candidate)
        if hops:
            self.stats["routing_hops"] += hops
            if op == "claim":
                self.stats["claim_routing_hops"] += hops
            self._tel.count("darr.shard_routing_hops", hops)
        if not owners:
            raise ServiceUnavailable(
                f"no live shard owns the range of key {key!r} (op={op})"
            )
        if failover:
            self.stats["failovers"] += 1
            self._tel.count("darr.shard_failovers")
        return owners

    def _replicate(
        self,
        record: AnalyticsResult,
        source: str,
        target: str,
        tag: str,
    ) -> bool:
        """Copy one record shard-to-shard with byte accounting."""
        if not self.shards[target].ingest(record):
            return False
        self.stats["replications"] += 1
        self.stats["replication_bytes"] += record.wire_size
        self._tel.count("darr.shard_replications")
        if self.network is not None:
            self.network.transfer(
                source, target, record.wire_size, tag=tag
            )
        return True

    def _live_owner_names(self, key: str) -> List[str]:
        """First ``replication_factor`` *live* shards for ``key`` (pure
        ring lookup: no hooks, no accounting)."""
        out: List[str] = []
        for candidate in self.ring.iter_preference(key):
            if self._alive[candidate]:
                out.append(candidate)
                if len(out) >= self.replication_factor:
                    break
        return out

    def _live_shard_names(self) -> List[str]:
        return [n for n in self.shards if self._alive[n]]

    def _maybe_repair(self) -> None:
        """Run crash-driven rebalancing if a crash was observed inside
        the current operation (hook-triggered fail-stops)."""
        if self._needs_repair and not self._repairing:
            self._rebalance(tag="darr-rebalance")

    # -- result lifecycle ---------------------------------------------------
    def publish(self, result: AnalyticsResult, client: str) -> bool:
        """Store a completed result on its replica set.

        The record lands on the key's primary shard (first-write-wins,
        exactly as the single repository) and propagates to
        ``replication_factor - 1`` followers — immediately under
        synchronous replication, else onto the pending queues drained
        by :meth:`propagate`.  A primary that fail-stops mid-publish is
        skipped and the next replica becomes the write target; a
        follower that fail-stops is skipped and its ranges are repaired
        by the crash-driven rebalance.

        Parameters
        ----------
        result:
            The completed :class:`~repro.darr.records.AnalyticsResult`.
        client:
            Publishing client (network accounting, provenance).

        Returns
        -------
        False when the key already existed on the primary, True for a
        first write.
        """
        owners = self._route(result.key, "publish")
        fresh: Optional[bool] = None
        primary_index = 0
        for index, owner in enumerate(owners):
            try:
                fresh = self.shards[owner].publish(result, client)
            except NodeCrashed:
                self._mark_crashed(owner)
                self.stats["routing_hops"] += 1
                continue
            primary_index = index
            break
        if fresh is None:
            self._maybe_repair()
            raise ServiceUnavailable(
                f"no live shard accepted the publish of {result.key!r}"
            )
        primary = owners[primary_index]
        self.stats["publishes"] += 1
        if not fresh:
            self.stats["duplicate_publishes"] += 1
        self._tel.count("darr.shard_publishes")
        for follower in owners[primary_index + 1 :]:
            try:
                self._check(
                    "sharded.replicate",
                    key=result.key,
                    source=primary,
                    target=follower,
                )
            except NodeCrashed:
                self._mark_crashed(follower)
                continue
            except ServiceUnavailable:
                self._pending.setdefault(follower, []).append(
                    (primary, result)
                )
                self.stats["replications_deferred"] += 1
                continue
            if self.sync_replication:
                self._replicate(
                    result, primary, follower, tag="darr-replicate"
                )
            else:
                self._pending.setdefault(follower, []).append(
                    (primary, result)
                )
                self.stats["replications_deferred"] += 1
        self._maybe_repair()
        return fresh

    def propagate(self) -> int:
        """Drain the pending replication queues (lazy mode / deferred
        copies), bringing every live follower up to date.

        The queue is the fabric's replication log: each entry carries
        the record itself, so a queued copy survives even its source
        shard's crash — draining it restores the replica without any
        live holder to copy from (no network transfer is accounted in
        that case; the bytes moved when the copy was queued).

        Returns
        -------
        The number of records applied to followers.
        """
        applied = 0
        for target in list(self._pending):
            if not self._alive.get(target, False):
                continue
            queue, self._pending[target] = self._pending[target], []
            for source, record in queue:
                src = source if self._alive.get(source, False) else None
                if src is None:
                    holders = [
                        n
                        for n in self._live_shard_names()
                        if self.shards[n].holds(record.key)
                    ]
                    src = holders[0] if holders else None
                if src is not None:
                    if self._replicate(
                        record, src, target, tag="darr-replicate"
                    ):
                        applied += 1
                elif self.shards[target].ingest(record):
                    # the queued copy was the last surviving replica
                    self.stats["replications"] += 1
                    self.stats["replication_bytes"] += record.wire_size
                    self._tel.count("darr.shard_replications")
                    applied += 1
            if not self._pending[target]:
                del self._pending[target]
        return applied

    def fetch(
        self,
        key: str,
        client: str,
        consistency: str = "strong",
    ) -> Optional[AnalyticsResult]:
        """Retrieve a result, falling back to followers on failover.

        Consistency levels (records are immutable and first-write-wins,
        so levels differ in *which replica may answer*, not in value):

        * ``"strong"`` — only a live, fully caught-up replica (no
          pending lazy copies queued for it; while a crash repair is
          outstanding, only an owner actually holding the record) may
          answer; raises :class:`~repro.faults.ServiceUnavailable`
          when none exists.
        * ``"monotonic"`` — session guarantee: once this client has
          seen a key, only replicas holding it may answer (a client
          never un-sees a result); first read may hit any live replica.
        * ``"eventual"`` — any live replica answers; a lagging
          follower's miss is an honest miss.

        Parameters
        ----------
        key:
            Spec key of the computation.
        client:
            Fetching client (network accounting, session identity).
        consistency:
            One of ``"strong"`` / ``"monotonic"`` / ``"eventual"``.

        Returns
        -------
        The :class:`~repro.darr.records.AnalyticsResult`, or ``None``
        on a miss.
        """
        if consistency not in CONSISTENCY_LEVELS:
            raise ValueError(
                f"consistency must be one of {CONSISTENCY_LEVELS}, got "
                f"{consistency!r}"
            )
        owners = self._route(key, "fetch")
        if consistency == "strong":
            candidates = [n for n in owners if not self._pending.get(n)]
            if self._needs_repair:
                # a crash repair is outstanding: an owner that stepped
                # into the set but was not caught up yet could serve a
                # false miss -- only trust owners holding the record
                candidates = [
                    n for n in candidates if self.shards[n].holds(key)
                ]
            if not candidates:
                raise ServiceUnavailable(
                    f"no caught-up replica can serve a strong read of "
                    f"{key!r}"
                )
        elif consistency == "monotonic":
            if key in self._sessions.get(client, ()):
                candidates = [
                    n for n in owners if self.shards[n].holds(key)
                ]
                if not candidates:
                    raise ServiceUnavailable(
                        f"monotonic session floor for {key!r} cannot be "
                        f"met by any live replica"
                    )
            else:
                candidates = owners
        else:
            candidates = owners
        record = self.shards[candidates[0]].fetch(key, client)
        if record is not None and consistency == "monotonic":
            self._sessions.setdefault(client, set()).add(key)
        self._maybe_repair()
        return record

    def has(self, key: str, client: Optional[str] = None) -> bool:
        """Check whether a calculation is stored on any live replica.

        Parameters
        ----------
        key:
            Spec key of the computation.
        client:
            Optional client name for network accounting on the primary.

        Returns
        -------
        True when a live replica of the key's range holds the record.
        """
        owners = self._route(key, "fetch")
        primary = self.shards[owners[0]]
        found = primary.has(key, client)
        if found:
            return True
        return any(self.shards[n].holds(key) for n in owners[1:])

    # -- claims -------------------------------------------------------------
    def claim_job(self, key: str, client: str) -> ClaimOutcome:
        """Claim in-flight work on ``key`` at its primary shard.

        Routing is shard-aware: the claim lands on the key's first
        *live* owner.  Claims are per-shard volatile state — they are
        **not** replicated; when a primary crashes its claims die with
        it, and the next claimant on the surviving replica simply wins
        (the survivors' reclaim path, complementing per-shard TTL
        expiry on the shared clock).

        Parameters
        ----------
        key:
            Spec key of the computation.
        client:
            The claiming client's name.

        Returns
        -------
        The primary shard's
        :class:`~repro.darr.repository.ClaimOutcome`.
        """
        owners = self._route(key, "claim")
        outcome = self.shards[owners[0]].claim_job(key, client)
        self._maybe_repair()
        return outcome

    def claim(self, key: str, client: str) -> bool:
        """Boolean shorthand for :meth:`claim_job`.

        Parameters
        ----------
        key:
            Spec key of the computation.
        client:
            The claiming client's name.

        Returns
        -------
        True when the claim was granted.
        """
        return self.claim_job(key, client).granted

    def release_claim(self, key: str, client: str) -> None:
        """Drop a claim without publishing (failed/abandoned work).

        Released on every live owner, so a claim that migrated at a
        shard-handoff boundary is found wherever it lives now.

        Parameters
        ----------
        key:
            Claimed spec key.
        client:
            The claim holder.
        """
        try:
            owners = self._route(key, "claim")
        except ServiceUnavailable:
            return
        for owner in owners:
            self.shards[owner].release_claim(key, client)
        self._maybe_repair()

    def claim_holder(self, key: str) -> Optional[str]:
        """Client holding a live claim on ``key`` at its primary.

        Parameters
        ----------
        key:
            Spec key of the computation.

        Returns
        -------
        The holder's name, or ``None`` when unclaimed, expired, or the
        range is unreachable.
        """
        try:
            owners = self._route(key, "claim")
        except ServiceUnavailable:
            return None
        return self.shards[owners[0]].claim_holder(key)

    # -- membership ---------------------------------------------------------
    def alive(self, name: str) -> bool:
        """Whether shard ``name`` is currently live.

        Parameters
        ----------
        name:
            Shard name.

        Returns
        -------
        True while the shard serves traffic.
        """
        return self._alive.get(name, False)

    def live_shards(self) -> List[str]:
        """Names of all currently live shards, in membership order.

        Returns
        -------
        The live shard names.
        """
        return self._live_shard_names()

    def shard_for(self, key: str) -> str:
        """The key's current primary shard (first live owner).

        Parameters
        ----------
        key:
            The key to place.

        Returns
        -------
        The primary shard's name.
        """
        owners = self._live_owner_names(key)
        if not owners:
            raise ServiceUnavailable(
                f"no live shard owns the range of key {key!r}"
            )
        return owners[0]

    def add_shard(
        self,
        shard: Optional[DataAnalyticsResultsRepository] = None,
        name: Optional[str] = None,
    ) -> str:
        """Join a shard and migrate only its owed key ranges onto it.

        Ring insertion hands the new shard ``~1/N`` of every range;
        the rebalance copies exactly the records whose owner set now
        includes it, migrates live claims whose primary moved (claim
        handoff preserves holder and original expiry), and drops
        records from shards that are no longer among the owners —
        bytes moved are accounted in ``stats`` and on the network.

        Parameters
        ----------
        shard:
            Pre-built repository to adopt; built fresh when ``None``.
        name:
            Name for a freshly built shard (auto-generated when
            omitted).

        Returns
        -------
        The joined shard's name.
        """
        if shard is None:
            if name is None:
                index = len(self.shards)
                while f"{self.name}-s{index:02d}" in self.shards:
                    index += 1
                name = f"{self.name}-s{index:02d}"
            shard = DataAnalyticsResultsRepository(
                name,
                network=self.network,
                claim_duration=self.claim_duration,
                clock=None if self.network is not None else self._clock,
            )
        name = shard.name
        if name in self.shards:
            raise ValueError(f"shard {name!r} already joined")
        if shard.network is None and shard.clock is None:
            shard.clock = self._clock
        self.shards[name] = shard
        self._alive[name] = True
        self.ring.add(name)
        shard.fault_injector = self._fault_injector
        shard.telemetry = self._tel
        self.stats["shards_added"] += 1
        self._tel.count("darr.shards_added")
        self._rebalance(tag="darr-rebalance")
        return name

    def crash_shard(self, name: str, repair: bool = True) -> int:
        """Fail-stop one shard (volatile results and claims are lost).

        With ``repair`` (default) the crash immediately drives a
        rebalance: every range the dead shard owned is re-replicated
        from its surviving copies onto the shards that step into the
        owner set, restoring ``replication_factor`` live copies.  A
        range loses data only when *all* of its replicas crash before
        repair completes.

        Parameters
        ----------
        name:
            Shard to crash; must be a member.
        repair:
            Run crash-driven rebalancing now (pass False to model a
            detection delay, then call :meth:`repair`).

        Returns
        -------
        The number of records re-replicated by the repair (0 when
        ``repair`` is False or nothing was under-replicated).
        """
        if name not in self.shards:
            raise KeyError(f"unknown shard {name!r}")
        self._mark_crashed(name)
        if repair:
            return self.repair()
        return 0

    def recover_shard(self, name: str) -> int:
        """Bring a crashed shard back and catch it up from live peers.

        The recovered shard rejoins the owner sets it is owed by ring
        position; records for those ranges are copied back from the
        current holders and the stand-in shards that covered for it
        drop their now-excess copies.

        Parameters
        ----------
        name:
            Shard to recover; must be a member.

        Returns
        -------
        The number of records copied during catch-up.
        """
        if name not in self.shards:
            raise KeyError(f"unknown shard {name!r}")
        if self._alive[name]:
            return 0
        self._alive[name] = True
        self.stats["shard_recoveries"] += 1
        self._tel.count("darr.shard_recoveries")
        before = self.stats["rebalance_records_moved"]
        self._rebalance(tag="darr-recovery")
        return self.stats["rebalance_records_moved"] - before

    def repair(self) -> int:
        """Re-replicate every under-replicated range (crash cleanup).

        Returns
        -------
        The number of records copied.
        """
        before = self.stats["rebalance_records_moved"]
        self._rebalance(tag="darr-rebalance")
        return self.stats["rebalance_records_moved"] - before

    def _rebalance(self, tag: str) -> int:
        """Stabilize placement: every record on exactly its live owner
        set, live claims on their current primaries.  Loops until a
        full pass completes without a new crash (a ``crash`` fault at
        ``sharded.rebalance`` fail-stops the migration target and the
        pass restarts over the shrunken membership)."""
        if self._repairing:
            return 0
        self._repairing = True
        moved = 0
        try:
            while True:
                self._needs_repair.clear()
                moved += self._rebalance_pass(tag)
                self._migrate_claims()
                if not self._needs_repair:
                    break
            self.stats["rebalances"] += 1
            self._tel.count("darr.rebalances")
        finally:
            self._repairing = False
        return moved

    def _rebalance_pass(self, tag: str) -> int:
        """One placement pass: plan every owed move over the live
        shards, then execute most-endangered ranges first (fewest
        surviving copies), so a crash mid-rebalance has the smallest
        possible loss window.  Excess copies on non-owners are dropped
        only after a pass with no new crash, and only once every live
        owner of the key holds it."""
        moved = 0
        # Plan: key -> (record, live holders in membership order).
        placements: Dict[str, Tuple[AnalyticsResult, List[str]]] = {}
        for name in self._live_shard_names():
            for key, record in self.shards[name].iter_records():
                entry = placements.get(key)
                if entry is None:
                    placements[key] = (record, [name])
                else:
                    entry[1].append(name)
        moves: List[Tuple[int, str, AnalyticsResult, str, str]] = []
        drops: List[Tuple[str, str]] = []
        for key, (record, holders) in placements.items():
            owners = self._live_owner_names(key)
            missing = [t for t in owners if t not in holders]
            for target in missing:
                moves.append(
                    (len(holders), key, record, holders[0], target)
                )
            for extra in holders:
                if extra not in owners:
                    drops.append((key, extra))
        moves.sort(key=lambda m: (m[0], m[1], m[4]))
        for _, key, record, source, target in moves:
            if not self._alive.get(target, False):
                continue  # crashed since planning; outer loop replans
            if not (
                self._alive.get(source, False)
                and self.shards[source].holds(key)
            ):
                continue  # source gone; outer loop replans
            try:
                self._check(
                    "sharded.rebalance",
                    key=key,
                    source=source,
                    target=target,
                )
            except NodeCrashed:
                self._mark_crashed(target)
                continue
            if self._replicate(record, source, target, tag=tag):
                moved += 1
                self.stats["rebalance_records_moved"] += 1
                self.stats["rebalance_bytes_moved"] += record.wire_size
                self._tel.count("darr.rebalance_records_moved")
                self._tel.count(
                    "darr.rebalance_bytes_moved", record.wire_size
                )
        if not self._needs_repair:
            for key, extra in drops:
                if not self._alive.get(extra, False):
                    continue
                owners = self._live_owner_names(key)
                if extra in owners:
                    continue
                if all(self.shards[t].holds(key) for t in owners):
                    if self.shards[extra].drop(key) is not None:
                        self.stats["rebalance_records_dropped"] += 1
        return moved

    def _migrate_claims(self) -> int:
        """Move live claims to their current primary shards (the
        shard-handoff boundary: a claim taken on the old primary stays
        valid — same holder, same expiry — on the new one)."""
        migrated = 0
        for name in self._live_shard_names():
            shard = self.shards[name]
            for key, (client, expires_at) in list(
                shard.live_claims().items()
            ):
                owners = self._live_owner_names(key)
                if not owners or owners[0] == name:
                    continue
                self.shards[owners[0]].adopt_claim(
                    key, client, expires_at
                )
                shard.release_claim(key, client)
                migrated += 1
                self.stats["claims_migrated"] += 1
        if migrated:
            self._tel.count("darr.claims_migrated", migrated)
        return migrated

    # -- queries ------------------------------------------------------------
    def __len__(self) -> int:
        seen: set = set()
        for name in self._live_shard_names():
            for key, _ in self.shards[name].iter_records():
                seen.add(key)
        return len(seen)

    def completed_keys(self, dataset: Optional[str] = None) -> List[str]:
        """Keys of completed calculations across all live shards.

        Parameters
        ----------
        dataset:
            Optional dataset fingerprint filter.

        Returns
        -------
        Sorted distinct keys (replicas deduplicated).
        """
        seen: set = set()
        for name in self._live_shard_names():
            for key, record in self.shards[name].iter_records():
                if dataset is None or record.dataset == dataset:
                    seen.add(key)
        return sorted(seen)

    def query(
        self,
        dataset: Optional[str] = None,
        metric: Optional[str] = None,
        path_contains: Optional[str] = None,
    ) -> List[AnalyticsResult]:
        """Filter results across all live shards (deduplicated).

        Parameters
        ----------
        dataset:
            Optional dataset fingerprint filter.
        metric:
            Optional metric-name filter.
        path_contains:
            Optional path-substring filter.

        Returns
        -------
        Matching records sorted by key, one per distinct key.
        """
        by_key: Dict[str, AnalyticsResult] = {}
        for name in self._live_shard_names():
            for record in self.shards[name].query(
                dataset=dataset,
                metric=metric,
                path_contains=path_contains,
            ):
                by_key.setdefault(record.key, record)
        return [by_key[key] for key in sorted(by_key)]

    def best(
        self, dataset: Optional[str] = None, metric: Optional[str] = None
    ) -> Optional[AnalyticsResult]:
        """Best stored result across shards, under its metric direction.

        Parameters
        ----------
        dataset:
            Optional dataset fingerprint filter.
        metric:
            Optional metric-name filter.

        Returns
        -------
        The best record, or ``None`` when nothing matches.
        """
        candidates = self.query(dataset=dataset, metric=metric)
        if not candidates:
            return None
        directions = {r.greater_is_better for r in candidates}
        if len(directions) > 1:
            raise ValueError(
                "cannot rank results with mixed metric directions; "
                "filter by metric first"
            )
        if directions.pop():
            return max(candidates, key=lambda r: r.score)
        return min(candidates, key=lambda r: r.score)

    def aggregate_stats(self) -> Dict[str, Any]:
        """Fabric and per-shard accounting in one document.

        Returns
        -------
        Dict with the fabric ``sharded`` counters, per-shard ``shards``
        counter dicts, a ``totals`` sum over shard counters, and the
        current ``alive`` map.
        """
        totals: Dict[str, int] = {}
        per_shard: Dict[str, Dict[str, int]] = {}
        for name, shard in self.shards.items():
            per_shard[name] = dict(shard.stats)
            for counter, value in shard.stats.items():
                totals[counter] = totals.get(counter, 0) + value
        return {
            "sharded": dict(self.stats),
            "shards": per_shard,
            "totals": totals,
            "alive": dict(self._alive),
        }

    # -- persistence --------------------------------------------------------
    def _save_document(self) -> Dict[str, Any]:
        """Schema-v3 dump document (see
        :func:`~repro.darr.repository.save_repository`)."""
        from repro.darr.repository import REPOSITORY_SCHEMA_VERSION

        by_key: Dict[str, AnalyticsResult] = {}
        for name in self._live_shard_names():
            for key, record in self.shards[name].iter_records():
                by_key.setdefault(key, record)
        return {
            "schema": REPOSITORY_SCHEMA_VERSION,
            "claim_duration": self.claim_duration,
            "records": [by_key[key] for key in sorted(by_key)],
            "claims": {},
            "stats": dict(self.stats),
            "sharding": {
                "name": self.name,
                "virtual_nodes": self.ring.virtual_nodes,
                "replication_factor": self.replication_factor,
                "sync_replication": self.sync_replication,
                "shards": list(self.shards),
                "alive": dict(self._alive),
                "claims": {
                    name: {
                        key: list(entry)
                        for key, entry in self.shards[name]
                        .live_claims()
                        .items()
                    }
                    for name in self._live_shard_names()
                },
                "shard_stats": {
                    name: dict(shard.stats)
                    for name, shard in self.shards.items()
                },
            },
        }

    @classmethod
    def _from_document(
        cls, document: Dict[str, Any], network=None
    ) -> "ShardedDarr":
        """Rebuild a fabric from a schema-v3 dump (see
        :func:`~repro.darr.repository.load_repository`)."""
        meta = document["sharding"]
        claim_duration = document.get("claim_duration", 300.0)
        shards = [
            DataAnalyticsResultsRepository(
                shard_name,
                network=network,
                claim_duration=claim_duration,
            )
            for shard_name in meta["shards"]
        ]
        fabric = cls(
            shards=shards,
            replication_factor=meta["replication_factor"],
            name=meta.get("name", "darr"),
            network=network,
            claim_duration=claim_duration,
            sync_replication=meta.get("sync_replication", True),
            virtual_nodes=meta.get("virtual_nodes", 64),
        )
        for shard_name, live in meta.get("alive", {}).items():
            if shard_name in fabric._alive:
                fabric._alive[shard_name] = bool(live)
        for record in document.get("records", []):
            for owner in fabric._live_owner_names(record.key):
                fabric.shards[owner].ingest(record)
        for shard_name, claims in meta.get("claims", {}).items():
            shard = fabric.shards.get(shard_name)
            if shard is None:
                continue
            for key, entry in claims.items():
                shard.adopt_claim(key, entry[0], float(entry[1]))
        saved_stats = document.get("stats")
        if saved_stats:
            for counter in fabric.stats:
                fabric.stats[counter] = saved_stats.get(
                    counter, fabric.stats[counter]
                )
        for shard_name, stats in meta.get("shard_stats", {}).items():
            shard = fabric.shards.get(shard_name)
            if shard is None:
                continue
            for counter in shard.stats:
                shard.stats[counter] = stats.get(
                    counter, shard.stats[counter]
                )
        return fabric
