"""Cooperative analytics: the Data Analytics Results Repository and the
client coordination built on it (paper Section III, Fig. 2)."""

from repro.core.spec import dataset_fingerprint
from repro.darr.coordinator import (
    CooperativeEvaluator,
    CooperativeStats,
    rebuild_best_pipeline,
    run_cooperative_session,
)
from repro.darr.records import AnalyticsResult
from repro.darr.repository import (
    DARR,
    ClaimOutcome,
    DataAnalyticsResultsRepository,
    load_repository,
    save_repository,
)
from repro.darr.sharded import CONSISTENCY_LEVELS, HashRing, ShardedDarr

__all__ = [
    "DataAnalyticsResultsRepository",
    "DARR",
    "ClaimOutcome",
    "ShardedDarr",
    "HashRing",
    "CONSISTENCY_LEVELS",
    "AnalyticsResult",
    "CooperativeEvaluator",
    "CooperativeStats",
    "run_cooperative_session",
    "rebuild_best_pipeline",
    "save_repository",
    "load_repository",
    "dataset_fingerprint",
]
