"""The Data Analytics Results Repository (paper Section III, Fig. 2).

"The DARR can be accessed and written to by multiple clients, allowing
them to both store and retrieve analytics information ...  the DARR can
keep track of all analytics calculations that have been run for a
particular data set ...  Users can determine from the DARR which
calculations have been run for a certain data set.  Clients can then use
previous results stored in the DARR.  They can also perform additional
calculations which do not overlap with those already stored in the DARR."

Beyond completed results, the repository supports *claims*: a client
announces it is computing a key, so concurrent clients neither duplicate
in-flight work nor deadlock (claims expire).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.darr.records import AnalyticsResult
from repro.distributed.cluster import SimulatedNetwork
from repro.obs import resolve_telemetry

__all__ = ["ClaimOutcome", "DataAnalyticsResultsRepository", "DARR"]

# Modeled wire sizes for small control messages.
_QUERY_SIZE = 48
_CLAIM_SIZE = 48


@dataclass
class _Claim:
    client: str
    expires_at: float


@dataclass(frozen=True)
class ClaimOutcome:
    """Detailed answer to one claim attempt.

    ``reclaimed`` is True when the grant took over a *stale* claim — a
    claim whose TTL elapsed on the simulated clock because its holder
    crashed or hung, the lease-style recovery the paper prescribes for
    push subscriptions.  ``holder`` names the client whose claim was
    taken over (on reclaim) or that blocked the grant (on denial).
    """

    granted: bool
    reclaimed: bool = False
    holder: Optional[str] = None


class DataAnalyticsResultsRepository:
    """Cloud-resident shared store of analytics results.

    Parameters
    ----------
    name:
        Network identity.
    network:
        Shared simulated network; all repository traffic is accounted on
        it (queries, claims, publishes, fetches).
    claim_duration:
        Seconds before an unfinished claim expires and another client may
        take the job over.
    telemetry:
        ``None`` (default) or a :class:`~repro.obs.Telemetry` handle.
        When enabled, every publish / lookup / claim increments the
        ``darr.*`` counters, so one handle shows the repository's
        traffic next to the engine and scheduler numbers.  A handle
        attached to a :class:`~repro.darr.coordinator.CooperativeEvaluator`'s
        inner evaluator is propagated here automatically.
    """

    def __init__(
        self,
        name: str = "darr",
        network: Optional[SimulatedNetwork] = None,
        claim_duration: float = 300.0,
        telemetry: object = None,
    ):
        if claim_duration <= 0:
            raise ValueError("claim_duration must be positive")
        self.name = name
        self.network = network
        if network is not None:
            network.register(name, self)
        self.claim_duration = claim_duration
        self.telemetry = resolve_telemetry(telemetry)
        #: Hook point for :class:`repro.faults.FaultInjector` (sites
        #: ``darr.fetch`` / ``darr.claim`` / ``darr.publish``); ``None``
        #: in production.
        self.fault_injector: Optional[Any] = None
        self._results: Dict[str, AnalyticsResult] = {}
        self._claims: Dict[str, _Claim] = {}
        self.stats = {
            "publishes": 0,
            "duplicate_publishes": 0,
            "fetch_hits": 0,
            "fetch_misses": 0,
            "claims_granted": 0,
            "claims_denied": 0,
            "claims_expired": 0,
            "claims_reclaimed": 0,
        }

    # -- internals --------------------------------------------------------
    def _now(self) -> float:
        return self.network.clock.now if self.network is not None else 0.0

    def _account(self, client: str, n_bytes: int, tag: str, inbound: bool) -> None:
        if self.network is None or client == self.name:
            return
        if inbound:
            self.network.transfer(client, self.name, n_bytes, tag=tag)
        else:
            self.network.transfer(self.name, client, n_bytes, tag=tag)

    # -- result lifecycle ----------------------------------------------------
    def publish(self, result: AnalyticsResult, client: str) -> bool:
        """Store a completed result; returns False if the key already
        existed (first write wins — the computations are deterministic
        replicas)."""
        if self.fault_injector is not None:
            self.fault_injector.check(
                "darr.publish", key=result.key, client=client
            )
        self._account(client, result.wire_size, "darr-publish", inbound=True)
        self._claims.pop(result.key, None)
        if result.key in self._results:
            self.stats["duplicate_publishes"] += 1
            self.telemetry.count("darr.publish_duplicate")
            return False
        self._results[result.key] = result
        self.stats["publishes"] += 1
        self.telemetry.count("darr.publish")
        return True

    def has(self, key: str, client: Optional[str] = None) -> bool:
        """Check whether a calculation has already been done."""
        if client is not None:
            self._account(client, _QUERY_SIZE, "darr-query", inbound=True)
        return key in self._results

    def fetch(self, key: str, client: str) -> Optional[AnalyticsResult]:
        """Retrieve a result (network-accounted); None on miss."""
        if self.fault_injector is not None:
            self.fault_injector.check("darr.fetch", key=key, client=client)
        self._account(client, _QUERY_SIZE, "darr-query", inbound=True)
        result = self._results.get(key)
        if result is None:
            self.stats["fetch_misses"] += 1
            self.telemetry.count("darr.lookup_miss")
            return None
        self.stats["fetch_hits"] += 1
        self.telemetry.count("darr.lookup_hit")
        self._account(client, result.wire_size, "darr-fetch", inbound=False)
        return result

    def claim_job(self, key: str, client: str) -> ClaimOutcome:
        """Try to claim in-flight work on ``key``, with full detail.

        The client may compute the job when no result exists yet and no
        *live* claim by someone else is held.  A claim whose TTL
        (:attr:`claim_duration` seconds on the simulated clock) has
        elapsed is stale — its holder crashed or hung — and is taken
        over (``reclaimed=True``), so a dead client never starves a job
        key.  Re-claiming one's own key renews it.

        Parameters
        ----------
        key:
            Spec key of the computation.
        client:
            The claiming client's name.

        Returns
        -------
        A :class:`ClaimOutcome` (``granted`` / ``reclaimed`` /
        ``holder``).
        """
        if self.fault_injector is not None:
            self.fault_injector.check("darr.claim", key=key, client=client)
        self._account(client, _CLAIM_SIZE, "darr-claim", inbound=True)
        if key in self._results:
            self.stats["claims_denied"] += 1
            self.telemetry.count("darr.claim_denied")
            return ClaimOutcome(granted=False)
        now = self._now()
        existing = self._claims.get(key)
        stale_holder: Optional[str] = None
        if existing is not None and existing.client != client:
            if existing.expires_at > now:
                self.stats["claims_denied"] += 1
                self.telemetry.count("darr.claim_denied")
                return ClaimOutcome(granted=False, holder=existing.client)
            stale_holder = existing.client
            self.stats["claims_expired"] += 1
            self.stats["claims_reclaimed"] += 1
            self.telemetry.count("darr.claims_expired")
        self._claims[key] = _Claim(client, now + self.claim_duration)
        self.stats["claims_granted"] += 1
        self.telemetry.count("darr.claim_granted")
        return ClaimOutcome(
            granted=True,
            reclaimed=stale_holder is not None,
            holder=stale_holder,
        )

    def claim(self, key: str, client: str) -> bool:
        """Boolean shorthand for :meth:`claim_job` (True = granted)."""
        return self.claim_job(key, client).granted

    def release_claim(self, key: str, client: str) -> None:
        """Drop a claim without publishing (failed/abandoned work)."""
        existing = self._claims.get(key)
        if existing is not None and existing.client == client:
            del self._claims[key]

    def claim_holder(self, key: str) -> Optional[str]:
        """Client currently holding a *live* claim on ``key`` (``None``
        when unclaimed, expired, or already published)."""
        existing = self._claims.get(key)
        if existing is None or existing.expires_at <= self._now():
            return None
        return existing.client

    # -- queries -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._results)

    def completed_keys(self, dataset: Optional[str] = None) -> List[str]:
        """Keys of completed calculations, optionally for one dataset."""
        return sorted(
            key
            for key, result in self._results.items()
            if dataset is None or result.dataset == dataset
        )

    def query(
        self,
        dataset: Optional[str] = None,
        metric: Optional[str] = None,
        path_contains: Optional[str] = None,
    ) -> List[AnalyticsResult]:
        """Filter results by dataset fingerprint, metric and/or path
        substring."""
        out = []
        for result in self._results.values():
            if dataset is not None and result.dataset != dataset:
                continue
            if metric is not None and result.metric != metric:
                continue
            if path_contains is not None and path_contains not in result.path:
                continue
            out.append(result)
        return sorted(out, key=lambda r: r.key)

    def best(
        self, dataset: Optional[str] = None, metric: Optional[str] = None
    ) -> Optional[AnalyticsResult]:
        """Best stored result under its own metric direction."""
        candidates = self.query(dataset=dataset, metric=metric)
        if not candidates:
            return None
        directions = {r.greater_is_better for r in candidates}
        if len(directions) > 1:
            raise ValueError(
                "cannot rank results with mixed metric directions; filter "
                "by metric first"
            )
        if directions.pop():
            return max(candidates, key=lambda r: r.score)
        return min(candidates, key=lambda r: r.score)


#: Short alias used throughout the paper's text.
DARR = DataAnalyticsResultsRepository


#: Current on-disk schema of :func:`save_repository` dumps.  Version 1
#: (a bare pickled list of records) predates the header and is still
#: accepted by :func:`load_repository`.
REPOSITORY_SCHEMA_VERSION = 2


def save_repository(
    repository: DataAnalyticsResultsRepository, path
) -> int:
    """Persist a repository's full state to ``path`` (schema v2).

    The DARR is cloud-resident in the paper; persistence gives it the
    durability a real deployment needs (and lets sessions resume without
    recomputing).  Besides the completed results, the dump round-trips
    live claim/expiry state (so in-flight work is not silently
    re-claimable after a restart inside the claim TTL) and the
    repository's traffic accounting (:attr:`stats`).

    Parameters
    ----------
    repository:
        The repository whose state is saved.
    path:
        Destination file path.

    Returns
    -------
    The number of completed records written.
    """
    from repro.distributed.objects import encode_payload

    records = [repository._results[k] for k in repository.completed_keys()]
    document = {
        "schema": REPOSITORY_SCHEMA_VERSION,
        "claim_duration": repository.claim_duration,
        "records": records,
        "claims": {
            key: (claim.client, claim.expires_at)
            for key, claim in repository._claims.items()
        },
        "stats": dict(repository.stats),
    }
    with open(path, "wb") as handle:
        handle.write(encode_payload(document))
    return len(records)


def load_repository(
    path,
    name: str = "darr",
    network=None,
) -> DataAnalyticsResultsRepository:
    """Load a repository previously written by :func:`save_repository`.

    Both schema versions load: a v2 dump restores records, claims (with
    their original expiry timestamps) and traffic stats; a legacy v1
    dump — a bare pickled record list — restores records only.

    Parameters
    ----------
    path:
        File written by :func:`save_repository`.
    name:
        Name for the rebuilt repository.
    network:
        Optional network model attached to the new instance.

    Returns
    -------
    A fresh :class:`DataAnalyticsResultsRepository` holding the saved
    state.
    """
    from repro.distributed.objects import decode_payload

    with open(path, "rb") as handle:
        document = decode_payload(handle.read())
    if isinstance(document, list):  # legacy schema 1: records only
        document = {"schema": 1, "records": document}
    schema = document.get("schema")
    if schema not in (1, REPOSITORY_SCHEMA_VERSION):
        raise ValueError(
            f"unsupported repository dump schema {schema!r} in {path}"
        )
    repository = DataAnalyticsResultsRepository(
        name=name,
        network=network,
        claim_duration=document.get("claim_duration", 300.0),
    )
    for record in document["records"]:
        repository._results[record.key] = record
    for key, (client, expires_at) in document.get("claims", {}).items():
        repository._claims[key] = _Claim(client, expires_at)
    saved_stats = document.get("stats")
    if saved_stats:
        for counter in repository.stats:
            repository.stats[counter] = saved_stats.get(
                counter, repository.stats[counter]
            )
    return repository
