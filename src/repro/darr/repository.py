"""The Data Analytics Results Repository (paper Section III, Fig. 2).

"The DARR can be accessed and written to by multiple clients, allowing
them to both store and retrieve analytics information ...  the DARR can
keep track of all analytics calculations that have been run for a
particular data set ...  Users can determine from the DARR which
calculations have been run for a certain data set.  Clients can then use
previous results stored in the DARR.  They can also perform additional
calculations which do not overlap with those already stored in the DARR."

Beyond completed results, the repository supports *claims*: a client
announces it is computing a key, so concurrent clients neither duplicate
in-flight work nor deadlock (claims expire).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.darr.records import AnalyticsResult
from repro.distributed.cluster import SimulatedNetwork
from repro.obs import resolve_telemetry

__all__ = ["ClaimOutcome", "DataAnalyticsResultsRepository", "DARR"]

# Modeled wire sizes for small control messages.
_QUERY_SIZE = 48
_CLAIM_SIZE = 48


@dataclass
class _Claim:
    client: str
    expires_at: float


@dataclass(frozen=True)
class ClaimOutcome:
    """Detailed answer to one claim attempt.

    ``reclaimed`` is True when the grant took over a *stale* claim — a
    claim whose TTL elapsed on the simulated clock because its holder
    crashed or hung, the lease-style recovery the paper prescribes for
    push subscriptions.  ``holder`` names the client whose claim was
    taken over (on reclaim) or that blocked the grant (on denial).
    """

    granted: bool
    reclaimed: bool = False
    holder: Optional[str] = None


class DataAnalyticsResultsRepository:
    """Cloud-resident shared store of analytics results.

    Parameters
    ----------
    name:
        Network identity.
    network:
        Shared simulated network; all repository traffic is accounted on
        it (queries, claims, publishes, fetches).
    claim_duration:
        Seconds before an unfinished claim expires and another client may
        take the job over.
    clock:
        Optional :class:`~repro.distributed.cluster.SimClock` driving
        claim expiry when no ``network`` is attached (a
        :class:`~repro.darr.sharded.ShardedDarr` shares one clock
        across its shards).  With a network, the network's clock wins.
    telemetry:
        ``None`` (default) or a :class:`~repro.obs.Telemetry` handle.
        When enabled, every publish / lookup / claim increments the
        ``darr.*`` counters, so one handle shows the repository's
        traffic next to the engine and scheduler numbers.  A handle
        attached to a :class:`~repro.darr.coordinator.CooperativeEvaluator`'s
        inner evaluator is propagated here automatically.
    """

    def __init__(
        self,
        name: str = "darr",
        network: Optional[SimulatedNetwork] = None,
        claim_duration: float = 300.0,
        clock: object = None,
        telemetry: object = None,
    ):
        if claim_duration <= 0:
            raise ValueError("claim_duration must be positive")
        self.name = name
        self.network = network
        self.clock = clock
        if network is not None:
            network.register(name, self)
        self.claim_duration = claim_duration
        self.telemetry = resolve_telemetry(telemetry)
        #: Hook point for :class:`repro.faults.FaultInjector` (sites
        #: ``darr.fetch`` / ``darr.claim`` / ``darr.publish``); ``None``
        #: in production.
        self.fault_injector: Optional[Any] = None
        self._results: Dict[str, AnalyticsResult] = {}
        self._claims: Dict[str, _Claim] = {}
        self.stats = {
            "publishes": 0,
            "duplicate_publishes": 0,
            "fetch_hits": 0,
            "fetch_misses": 0,
            "claims_granted": 0,
            "claims_denied": 0,
            "claims_expired": 0,
            "claims_reclaimed": 0,
        }

    # -- internals --------------------------------------------------------
    def _now(self) -> float:
        if self.network is not None:
            return self.network.clock.now
        if self.clock is not None:
            return self.clock.now
        return 0.0

    def _account(self, client: str, n_bytes: int, tag: str, inbound: bool) -> None:
        if self.network is None or client == self.name:
            return
        if inbound:
            self.network.transfer(client, self.name, n_bytes, tag=tag)
        else:
            self.network.transfer(self.name, client, n_bytes, tag=tag)

    # -- result lifecycle ----------------------------------------------------
    def publish(self, result: AnalyticsResult, client: str) -> bool:
        """Store a completed result; returns False if the key already
        existed (first write wins — the computations are deterministic
        replicas)."""
        if self.fault_injector is not None:
            self.fault_injector.check(
                "darr.publish", key=result.key, client=client
            )
        self._account(client, result.wire_size, "darr-publish", inbound=True)
        self._claims.pop(result.key, None)
        if result.key in self._results:
            self.stats["duplicate_publishes"] += 1
            self.telemetry.count("darr.publish_duplicate")
            return False
        self._results[result.key] = result
        self.stats["publishes"] += 1
        self.telemetry.count("darr.publish")
        return True

    def has(self, key: str, client: Optional[str] = None) -> bool:
        """Check whether a calculation has already been done."""
        if client is not None:
            self._account(client, _QUERY_SIZE, "darr-query", inbound=True)
        return key in self._results

    def fetch(self, key: str, client: str) -> Optional[AnalyticsResult]:
        """Retrieve a result (network-accounted); None on miss."""
        if self.fault_injector is not None:
            self.fault_injector.check("darr.fetch", key=key, client=client)
        self._account(client, _QUERY_SIZE, "darr-query", inbound=True)
        result = self._results.get(key)
        if result is None:
            self.stats["fetch_misses"] += 1
            self.telemetry.count("darr.lookup_miss")
            return None
        self.stats["fetch_hits"] += 1
        self.telemetry.count("darr.lookup_hit")
        self._account(client, result.wire_size, "darr-fetch", inbound=False)
        return result

    # -- peer replication primitives --------------------------------------
    def holds(self, key: str) -> bool:
        """Whether this shard holds a completed record for ``key``.

        Unlike :meth:`has` this is a local state probe — no network
        accounting, no fault hook — used by the sharded fabric when
        planning replication and rebalance moves.

        Parameters
        ----------
        key:
            Canonical spec key.

        Returns
        -------
        True when a completed record for ``key`` is stored here.
        """
        return key in self._results

    def ingest(self, result: AnalyticsResult) -> bool:
        """Apply a record replicated or migrated from a peer shard.

        First-write-wins like :meth:`publish`, but without client
        network accounting or publish counters — the caller (the
        :class:`~repro.darr.sharded.ShardedDarr` fabric) accounts the
        shard-to-shard transfer itself.  Any claim on the key is
        cleared: the work is done.

        Parameters
        ----------
        result:
            The replicated :class:`~repro.darr.records.AnalyticsResult`.

        Returns
        -------
        True when the record was new here, False when this shard
        already held it.
        """
        self._claims.pop(result.key, None)
        if result.key in self._results:
            return False
        self._results[result.key] = result
        return True

    def drop(self, key: str) -> Optional[AnalyticsResult]:
        """Remove a record this shard no longer owns after a rebalance.

        Parameters
        ----------
        key:
            Canonical spec key to drop.

        Returns
        -------
        The removed record, or ``None`` when the shard did not hold it.
        """
        return self._results.pop(key, None)

    def live_claims(self) -> Dict[str, Any]:
        """Snapshot of unexpired claims for shard-handoff migration.

        Returns
        -------
        Mapping of key to ``(client, expires_at)`` for every claim
        whose TTL has not yet elapsed on the shard clock.
        """
        now = self._now()
        return {
            key: (claim.client, claim.expires_at)
            for key, claim in self._claims.items()
            if claim.expires_at > now
        }

    def adopt_claim(self, key: str, client: str, expires_at: float) -> None:
        """Install a claim migrated from another shard at handoff.

        The original expiry timestamp is preserved (all shards share
        one clock), so migration never extends a claim's TTL.  A key
        already completed or claimed here is left untouched — the
        local state is newer than the migrated one.

        Parameters
        ----------
        key:
            Claimed spec key.
        client:
            Holder of the migrated claim.
        expires_at:
            Original absolute expiry time of the claim.
        """
        if key in self._results or key in self._claims:
            return
        self._claims[key] = _Claim(client, expires_at)

    def claim_count(self) -> int:
        """Number of claims currently recorded on this shard (live and
        expired-but-unreclaimed alike).

        Returns
        -------
        The claim-table size.
        """
        return len(self._claims)

    def iter_records(self):
        """Iterate over ``(key, record)`` pairs held on this shard.

        A local, accounting-free view used by the sharded fabric for
        rebalance planning and union queries; do not mutate the
        repository while iterating.

        Returns
        -------
        An iterator of ``(key, AnalyticsResult)`` pairs.
        """
        return iter(self._results.items())

    def wipe(self) -> None:
        """Discard all volatile state — results *and* claims.

        Models a fail-stop crash of the shard process: everything held
        in memory is gone, and survivors must re-replicate the ranges
        it owned and reclaim the jobs it was arbitrating.
        """
        self._results.clear()
        self._claims.clear()

    def claim_job(self, key: str, client: str) -> ClaimOutcome:
        """Try to claim in-flight work on ``key``, with full detail.

        The client may compute the job when no result exists yet and no
        *live* claim by someone else is held.  A claim whose TTL
        (:attr:`claim_duration` seconds on the simulated clock) has
        elapsed is stale — its holder crashed or hung — and is taken
        over (``reclaimed=True``), so a dead client never starves a job
        key.  Re-claiming one's own key renews it.

        Parameters
        ----------
        key:
            Spec key of the computation.
        client:
            The claiming client's name.

        Returns
        -------
        A :class:`ClaimOutcome` (``granted`` / ``reclaimed`` /
        ``holder``).
        """
        if self.fault_injector is not None:
            self.fault_injector.check("darr.claim", key=key, client=client)
        self._account(client, _CLAIM_SIZE, "darr-claim", inbound=True)
        if key in self._results:
            self.stats["claims_denied"] += 1
            self.telemetry.count("darr.claim_denied")
            return ClaimOutcome(granted=False)
        now = self._now()
        existing = self._claims.get(key)
        stale_holder: Optional[str] = None
        if existing is not None and existing.client != client:
            if existing.expires_at > now:
                self.stats["claims_denied"] += 1
                self.telemetry.count("darr.claim_denied")
                return ClaimOutcome(granted=False, holder=existing.client)
            stale_holder = existing.client
            self.stats["claims_expired"] += 1
            self.stats["claims_reclaimed"] += 1
            self.telemetry.count("darr.claims_expired")
        self._claims[key] = _Claim(client, now + self.claim_duration)
        self.stats["claims_granted"] += 1
        self.telemetry.count("darr.claim_granted")
        return ClaimOutcome(
            granted=True,
            reclaimed=stale_holder is not None,
            holder=stale_holder,
        )

    def claim(self, key: str, client: str) -> bool:
        """Boolean shorthand for :meth:`claim_job` (True = granted)."""
        return self.claim_job(key, client).granted

    def release_claim(self, key: str, client: str) -> None:
        """Drop a claim without publishing (failed/abandoned work)."""
        existing = self._claims.get(key)
        if existing is not None and existing.client == client:
            del self._claims[key]

    def claim_holder(self, key: str) -> Optional[str]:
        """Client currently holding a *live* claim on ``key`` (``None``
        when unclaimed, expired, or already published)."""
        existing = self._claims.get(key)
        if existing is None or existing.expires_at <= self._now():
            return None
        return existing.client

    # -- queries -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._results)

    def completed_keys(self, dataset: Optional[str] = None) -> List[str]:
        """Keys of completed calculations, optionally for one dataset."""
        return sorted(
            key
            for key, result in self._results.items()
            if dataset is None or result.dataset == dataset
        )

    def query(
        self,
        dataset: Optional[str] = None,
        metric: Optional[str] = None,
        path_contains: Optional[str] = None,
    ) -> List[AnalyticsResult]:
        """Filter results by dataset fingerprint, metric and/or path
        substring."""
        out = []
        for result in self._results.values():
            if dataset is not None and result.dataset != dataset:
                continue
            if metric is not None and result.metric != metric:
                continue
            if path_contains is not None and path_contains not in result.path:
                continue
            out.append(result)
        return sorted(out, key=lambda r: r.key)

    def best(
        self, dataset: Optional[str] = None, metric: Optional[str] = None
    ) -> Optional[AnalyticsResult]:
        """Best stored result under its own metric direction."""
        candidates = self.query(dataset=dataset, metric=metric)
        if not candidates:
            return None
        directions = {r.greater_is_better for r in candidates}
        if len(directions) > 1:
            raise ValueError(
                "cannot rank results with mixed metric directions; filter "
                "by metric first"
            )
        if directions.pop():
            return max(candidates, key=lambda r: r.score)
        return min(candidates, key=lambda r: r.score)


#: Short alias used throughout the paper's text.
DARR = DataAnalyticsResultsRepository


#: Current on-disk schema of :func:`save_repository` dumps.  Version 4
#: records carry the provenance sidecar
#: (:attr:`~repro.darr.records.AnalyticsResult.provenance`); the dump
#: layout is otherwise that of version 3, which added the ``sharding``
#: section (consistent-hash ring membership + replication metadata for
#: :class:`~repro.darr.sharded.ShardedDarr` dumps; ``None`` for
#: single-repository dumps).  Version 2 added the claims/stats header;
#: version 1 (a bare pickled list of records) predates the header.  All
#: four load (legacy records rehydrate with ``provenance=None`` via
#: ``AnalyticsResult.__setstate__``).
REPOSITORY_SCHEMA_VERSION = 4


def save_repository(repository, path) -> int:
    """Persist a repository's full state to ``path`` (schema v4).

    The DARR is cloud-resident in the paper; persistence gives it the
    durability a real deployment needs (and lets sessions resume without
    recomputing).  Besides the completed results, the dump round-trips
    live claim/expiry state (so in-flight work is not silently
    re-claimable after a restart inside the claim TTL) and the
    repository's traffic accounting (:attr:`stats`).

    Both repository shapes save: a single
    :class:`DataAnalyticsResultsRepository` writes ``sharding: None``;
    a :class:`~repro.darr.sharded.ShardedDarr` writes its ring
    membership, replication factor, liveness map and per-shard claim
    tables, so :func:`load_repository` can rebuild the sharded fabric
    with records re-placed on their owning shards.

    Parameters
    ----------
    repository:
        The :class:`DataAnalyticsResultsRepository` or
        :class:`~repro.darr.sharded.ShardedDarr` whose state is saved.
    path:
        Destination file path.

    Returns
    -------
    The number of distinct completed records written.
    """
    from repro.distributed.objects import encode_payload

    if hasattr(repository, "shards"):  # ShardedDarr duck-check
        document = repository._save_document()
    else:
        records = [
            repository._results[k] for k in repository.completed_keys()
        ]
        document = {
            "schema": REPOSITORY_SCHEMA_VERSION,
            "claim_duration": repository.claim_duration,
            "records": records,
            "claims": {
                key: (claim.client, claim.expires_at)
                for key, claim in repository._claims.items()
            },
            "stats": dict(repository.stats),
            "sharding": None,
        }
    with open(path, "wb") as handle:
        handle.write(encode_payload(document))
    return len(document["records"])


def load_repository(path, name: str = "darr", network=None):
    """Load a repository previously written by :func:`save_repository`.

    All schema versions load: a v3/v4 dump with a ``sharding`` section
    rebuilds a :class:`~repro.darr.sharded.ShardedDarr` (ring
    membership, replication factor, shard liveness, per-shard claims,
    records re-placed on their owning shards); a v3 dump without one —
    or a v2 dump — restores a single repository with records, claims
    (original expiry timestamps) and traffic stats; a legacy v1 dump —
    a bare pickled record list — restores records only.

    Parameters
    ----------
    path:
        File written by :func:`save_repository`.
    name:
        Name for the rebuilt repository (ignored for sharded dumps,
        which carry their own name).
    network:
        Optional network model attached to the new instance.

    Returns
    -------
    A fresh :class:`DataAnalyticsResultsRepository` — or
    :class:`~repro.darr.sharded.ShardedDarr` for sharded dumps —
    holding the saved state.
    """
    from repro.distributed.objects import decode_payload

    with open(path, "rb") as handle:
        document = decode_payload(handle.read())
    if isinstance(document, list):  # legacy schema 1: records only
        document = {"schema": 1, "records": document}
    schema = document.get("schema")
    if schema not in (1, 2, 3, REPOSITORY_SCHEMA_VERSION):
        raise ValueError(
            f"unsupported repository dump schema {schema!r} in {path}"
        )
    if document.get("sharding"):
        from repro.darr.sharded import ShardedDarr

        return ShardedDarr._from_document(document, network=network)
    repository = DataAnalyticsResultsRepository(
        name=name,
        network=network,
        claim_duration=document.get("claim_duration", 300.0),
    )
    for record in document["records"]:
        repository._results[record.key] = record
    for key, entry in document.get("claims", {}).items():
        client, expires_at = entry[0], entry[1]
        repository._claims[key] = _Claim(client, expires_at)
    saved_stats = document.get("stats")
    if saved_stats:
        for counter in repository.stats:
            repository.stats[counter] = saved_stats.get(
                counter, repository.stats[counter]
            )
    return repository
