"""Cooperative graph evaluation through the DARR.

"Our system allows multiple clients to cooperate on performing data
analytics calculations on common data sets.  That way, the clients can
share the results with each other and not have to repeat calculations"
(paper Section III).

:class:`CooperativeEvaluator` wraps a
:class:`~repro.core.evaluation.GraphEvaluator` for one client: for every
evaluation job it first consults the DARR (reuse), then claims the key
(so concurrent clients skip it), computes, and publishes.
:func:`run_cooperative_session` interleaves several clients over the same
graph/dataset job-by-job — the deterministic stand-in for concurrent
clients that the Fig. 2 benchmark measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.core.engine import AllJobsFailed
from repro.core.evaluation import (
    EvaluationJob,
    EvaluationReport,
    GraphEvaluator,
    PipelineResult,
)
from repro.darr.records import AnalyticsResult
from repro.darr.repository import DataAnalyticsResultsRepository
from repro.faults import ServiceUnavailable
from repro.provenance import ANONYMOUS, ContributionLedger, as_client

__all__ = ["CooperativeStats", "CooperativeEvaluator", "run_cooperative_session"]


@dataclass
class CooperativeStats:
    """Per-client work accounting for one cooperative evaluation.

    ``claims_expired`` counts stale foreign claims this client observed
    (their TTL had elapsed on the simulated clock); ``claims_reclaimed``
    counts the ones it then took over — a crashed peer's job picked up
    by a survivor.  ``darr_unavailable`` counts repository calls that
    failed because the DARR itself was unreachable; the client degrades
    to uncoordinated local computation rather than aborting.
    """

    computed: int = 0
    reused: int = 0
    skipped_claimed: int = 0
    claims_expired: int = 0
    claims_reclaimed: int = 0
    darr_unavailable: int = 0
    #: The client's :class:`~repro.provenance.ContributionLedger`
    #: (shared with the engine), attributing each reuse/skip event's
    #: saved work to the clients whose published artifacts enabled it.
    ledger: Optional[ContributionLedger] = None

    @property
    def leaderboard(self) -> List[Dict[str, Any]]:
        """Per-client cooperative contributions, most valuable first
        (empty when no ledger is attached)."""
        return self.ledger.leaderboard() if self.ledger is not None else []

    @property
    def total_jobs(self) -> int:
        """Jobs this client handled (computed + reused + skipped)."""
        return self.computed + self.reused + self.skipped_claimed

    @property
    def redundancy_avoided(self) -> float:
        """Fraction of this client's jobs it did not have to compute."""
        if self.total_jobs == 0:
            return 0.0
        return (self.reused + self.skipped_claimed) / self.total_jobs


class CooperativeEvaluator:
    """DARR-aware evaluation for one client.

    Parameters
    ----------
    evaluator:
        The local :class:`GraphEvaluator` (graph + CV + metric).
    darr:
        The shared repository.
    client:
        This client's name (used for claims, publication provenance and
        network accounting).
    store:
        Optional local artifact store (an
        :class:`~repro.store.base.ArtifactStore` or a spec string like
        ``"disk:<root>"``).  When given, the engine is rewired onto a
        :class:`~repro.store.layered.LayeredStore` of the local tiers
        with a :class:`~repro.store.layered.DarrStore` tier appended —
        a locally cached result and a DARR record become the same
        artifact at different tiers: engine lookups fall through memory
        → disk → DARR, and results reused from *any* tier are published
        back so peers see them.
    """

    def __init__(
        self,
        evaluator: GraphEvaluator,
        darr: DataAnalyticsResultsRepository,
        client: str,
        store: Any = None,
    ):
        self.evaluator = evaluator
        self.darr = darr
        self.client = as_client(client)
        engine = evaluator.engine
        # The engine stamps provenance with its own identity; an engine
        # that was never given one inherits this client's name so every
        # artifact the cooperative run writes names its real producer.
        if getattr(engine, "client", ANONYMOUS) == ANONYMOUS:
            engine.client = self.client
        if store is not None:
            from repro.store import DarrStore, LayeredStore, resolve_store

            base = resolve_store(store)
            darr_tier = DarrStore(darr, client=self.client)
            tiers = (
                list(base.tiers) + [darr_tier]
                if isinstance(base, LayeredStore)
                else [base, darr_tier]
            )
            engine.store = LayeredStore(tiers)
            # The rewired stack must keep feeding the engine's registry
            # (the DARR tier teaches it fetched records' lineage too).
            if getattr(engine, "provenance", None) is not None:
                engine.store.attach_registry(engine.provenance)
        #: Shared with the engine so store-tier reuse and DARR-protocol
        #: reuse/skips land in one attribution ledger.
        self.ledger: Optional[ContributionLedger] = getattr(
            engine, "ledger", None
        )
        self.stats = CooperativeStats(ledger=self.ledger)
        self.telemetry = evaluator.telemetry
        # One handle on the evaluator observes the whole cooperative
        # loop: push it down to the repository so DARR publish / claim /
        # lookup traffic lands on the same counters.
        if self.telemetry.enabled and not getattr(
            darr.telemetry, "enabled", False
        ):
            darr.telemetry = self.telemetry

    # -- degraded-mode repository access ---------------------------------
    def _observe_unavailable(self) -> None:
        self.stats.darr_unavailable += 1
        if self.telemetry.enabled:
            self.telemetry.count("darr.unavailable")

    def _fetch(self, key: str):
        """DARR fetch that treats an unreachable repository as a miss."""
        try:
            return self.darr.fetch(key, self.client)
        except ServiceUnavailable:
            self._observe_unavailable()
            return None

    def _claim(self, key: str):
        """Claim ``key``; accounts reclaims of expired foreign claims.

        Returns the :class:`~repro.darr.repository.ClaimOutcome`
        (``granted`` False means someone else holds a live claim, with
        ``holder`` naming them) or ``None`` when the repository was
        unreachable, in which case the caller computes locally without
        coordination.
        """
        try:
            outcome = self.darr.claim_job(key, self.client)
        except ServiceUnavailable:
            self._observe_unavailable()
            return None
        if outcome.reclaimed:
            self.stats.claims_expired += 1
            self.stats.claims_reclaimed += 1
            if self.telemetry.enabled:
                self.telemetry.count("darr.claims_reclaimed")
        return outcome

    # -- contribution accounting -----------------------------------------
    def _credit_record(self, record: AnalyticsResult) -> None:
        """Credit one DARR-fetch reuse to the clients that enabled it:
        the record's provenance producer when known, else its
        publisher.  Value = the fold fits not run + the record's wire
        size not recomputed."""
        if self.ledger is None:
            return
        producers: List[Any] = []
        doc = getattr(record, "provenance", None)
        if doc and doc.get("producer"):
            producers.append(doc["producer"])
        if getattr(record, "client", None):
            producers.append(record.client)
        self.ledger.credit(
            producers,
            fits_saved=len(record.fold_scores),
            bytes_saved=record.wire_size,
        )

    def _credit_skip(self, holder: Optional[str], job: EvaluationJob) -> None:
        """Credit one skip-while-claimed event to the claim holder —
        their in-flight computation is what spares this client the
        job's fold fits."""
        if self.ledger is None:
            return
        spec = job.spec if isinstance(job.spec, Mapping) else {}
        cv = spec.get("cv")
        params = cv.get("params", {}) if isinstance(cv, Mapping) else {}
        fits = int(params.get("n_splits") or params.get("k") or 0)
        self.ledger.credit(
            [holder] if holder else [], fits_saved=fits
        )

    def _provenance_doc(
        self, result: PipelineResult, spec: Dict[str, Any]
    ) -> Optional[Dict[str, Any]]:
        """The provenance document to publish with ``result`` — what
        the engine's registry recorded when the result artifact was
        written (``None`` when tracking is off or nothing is known)."""
        engine = self.evaluator.engine
        registry = getattr(engine, "provenance", None)
        if registry is None:
            return None
        from repro.store import KIND_RESULT

        key = engine._artifact_key(
            KIND_RESULT, result.key, dataset=spec.get("dataset") or ""
        )
        rec = registry.get(key.digest)
        if rec is None:
            return None
        doc = dict(rec.as_dict())
        doc["digest"] = key.digest
        return doc

    def _publish_record(self, result: PipelineResult, spec: Dict[str, Any]) -> bool:
        """Best-effort publish; on an unreachable repository the claim
        is released so another client can eventually take the job."""
        record = AnalyticsResult.from_pipeline_result(
            result,
            client=self.client,
            spec=spec,
            timestamp=self.darr._now(),
            provenance=self._provenance_doc(result, spec),
        )
        try:
            self.darr.publish(record, self.client)
            return True
        except ServiceUnavailable:
            self._observe_unavailable()
            self.darr.release_claim(result.key, self.client)
            return False

    def process_job(
        self, job: EvaluationJob, X: Any, y: Any
    ) -> Optional[PipelineResult]:
        """Handle one job cooperatively.

        Returns the result (fresh or reused) or ``None`` when another
        client holds the claim (the result will appear in the DARR
        later) or the evaluator's failure policy skipped the job.
        """
        cached = self._fetch(job.key)
        if cached is not None:
            self._observe_reused()
            self._credit_record(cached)
            return cached.to_pipeline_result()
        claim = self._claim(job.key)
        if claim is not None and not claim.granted:
            # Either someone published between fetch and claim (rare in
            # the simulation) or another client is computing it.
            cached = self._fetch(job.key)
            if cached is not None:
                self._observe_reused()
                self._credit_record(cached)
                return cached.to_pipeline_result()
            self.stats.skipped_claimed += 1
            self._credit_skip(claim.holder, job)
            if self.telemetry.enabled:
                self.telemetry.count("darr.jobs_skipped_claimed")
                self.telemetry.count("darr.redundant_computations_avoided")
            return None
        try:
            result = self.evaluator.run_job(job, X, y)
        except Exception:
            self.darr.release_claim(job.key, self.client)
            raise
        if result is None:
            # The engine's failure policy skipped the job; free the
            # claim so another client may try it.
            self.darr.release_claim(job.key, self.client)
            return None
        if getattr(result, "from_cache", False):
            # The engine served the result from a store tier (warm
            # local disk, or the DARR tier itself) instead of
            # computing.  Publish so peers see it — publication clears
            # our claim, and a record that originated in the DARR
            # lands as a counted duplicate, never a conflict.
            self._observe_reused()
            self._publish_record(result, job.spec)
            return result
        self.stats.computed += 1
        self.telemetry.count("darr.jobs_computed")
        self._publish_record(result, job.spec)
        return result

    def _observe_reused(self) -> None:
        """Account one job whose result was fetched instead of computed
        — the paper's redundant-computation-avoided event."""
        self.stats.reused += 1
        if self.telemetry.enabled:
            self.telemetry.count("darr.jobs_reused")
            self.telemetry.count("darr.redundant_computations_avoided")

    def evaluate(
        self,
        X: Any,
        y: Any,
        param_grid: Optional[Mapping[str, Any]] = None,
        refit_best: bool = True,
    ) -> EvaluationReport:
        """Full cooperative sweep: DARR-check every job, batch the
        unclaimed remainder through the evaluator's
        :class:`~repro.core.engine.ExecutionEngine` (publishing each
        fresh result via the engine's result hook), and merge all
        completed results (including other clients') into the
        selection."""
        import time

        started = time.perf_counter()
        report = EvaluationReport(
            metric=self.evaluator.metric_name,
            greater_is_better=self.evaluator.greater_is_better,
        )
        jobs_by_key: Dict[str, EvaluationJob] = {}
        dataset = None
        to_compute: list = []
        for job in self.evaluator.iter_jobs(X, y, param_grid):
            jobs_by_key[job.key] = job
            dataset = job.spec.get("dataset")
            cached = self._fetch(job.key)
            if cached is not None:
                self._observe_reused()
                self._credit_record(cached)
                report.results.append(cached.to_pipeline_result())
                continue
            claim = self._claim(job.key)
            if claim is not None and not claim.granted:
                cached = self._fetch(job.key)
                if cached is not None:
                    self._observe_reused()
                    self._credit_record(cached)
                    report.results.append(cached.to_pipeline_result())
                else:
                    self.stats.skipped_claimed += 1
                    self._credit_skip(claim.holder, job)
                    if self.telemetry.enabled:
                        self.telemetry.count("darr.jobs_skipped_claimed")
                        self.telemetry.count(
                            "darr.redundant_computations_avoided"
                        )
                continue
            to_compute.append(job)

        # Keys whose computation finished (published or, under an
        # unreachable DARR, released): their claims need no cleanup.
        settled: set = set()

        def publish(result: PipelineResult) -> None:
            if self.evaluator.result_hook is not None:
                self.evaluator.result_hook(result)
            self.stats.computed += 1
            self.telemetry.count("darr.jobs_computed")
            self._publish_record(result, jobs_by_key[result.key].spec)
            settled.add(result.key)

        def reuse(result: PipelineResult) -> None:
            # The engine found the result in a store tier (warm local
            # disk, or the DARR tier itself) and skipped the fold fits.
            # Count it as cooperative reuse and publish it back so
            # peers see it: publication clears this client's claim,
            # and a record that originated in the DARR lands as a
            # counted duplicate, never a conflict.
            self._observe_reused()
            self._publish_record(result, jobs_by_key[result.key].spec)
            settled.add(result.key)

        def release_claim(job: EvaluationJob, exc: BaseException) -> None:
            self.darr.release_claim(job.key, self.client)
            settled.add(job.key)

        def release_unsettled() -> None:
            # Abort path: free every claim this client still holds for
            # work it will not finish, so peers are not locked out until
            # the TTL expires.  Releasing a key we no longer hold is a
            # no-op.
            for job in to_compute:
                if job.key not in settled:
                    self.darr.release_claim(job.key, self.client)

        try:
            report.results.extend(
                self.evaluator.engine.execute(
                    to_compute,
                    X,
                    y,
                    cv=self.evaluator.cv,
                    metric=self.evaluator.metric,
                    result_hook=publish,
                    reuse_hook=reuse,
                    error_hook=release_claim,
                )
            )
        except AllJobsFailed:
            # Every local computation failed, but results reused from
            # the DARR may still decide the sweep; abort only when there
            # is nothing at all to select from.
            release_unsettled()
            if not report.results:
                raise
        except BaseException:
            release_unsettled()
            raise
        # Pick up results other clients published for jobs we skipped.
        seen = {result.key for result in report.results}
        if dataset is not None:
            for key in self.darr.completed_keys(dataset):
                if key in jobs_by_key and key not in seen:
                    cached = self.darr.fetch(key, self.client)
                    if cached is not None:
                        report.results.append(cached.to_pipeline_result())
                        seen.add(key)
        best = report.best_result()
        if best is not None:
            report.best_path = best.path
            report.best_params = dict(best.params)
            if refit_best and best.key in jobs_by_key:
                import numpy as np

                model = jobs_by_key[best.key].configured_pipeline()
                model.fit(np.asarray(X), np.asarray(y))
                report.best_model = model
        report.elapsed_seconds = time.perf_counter() - started
        report.stats = {
            "cache": self.evaluator.engine.cache_stats(),
            "cooperative": {
                "computed": self.stats.computed,
                "reused": self.stats.reused,
                "skipped_claimed": self.stats.skipped_claimed,
                "redundancy_avoided": self.stats.redundancy_avoided,
                "claims_expired": self.stats.claims_expired,
                "claims_reclaimed": self.stats.claims_reclaimed,
                "darr_unavailable": self.stats.darr_unavailable,
                "leaderboard": self.stats.leaderboard,
            },
            "failures": [
                failure.as_dict()
                for failure in self.evaluator.engine.last_failures
            ],
        }
        return report


def run_cooperative_session(
    evaluators: Sequence[CooperativeEvaluator],
    X: Any,
    y: Any,
    param_grid: Optional[Mapping[str, Any]] = None,
) -> List[List[Optional[PipelineResult]]]:
    """Interleave several clients over the same job stream.

    Each client enumerates its own jobs (identical keys since graph,
    CV, metric and data agree); processing alternates client-by-client,
    modeling concurrent clients racing on the DARR.

    Parameters
    ----------
    evaluators:
        The participating :class:`CooperativeEvaluator` clients.
    X, y:
        The shared dataset.
    param_grid:
        Optional grid every client expands identically.

    Returns
    -------
    Per-client lists of :class:`PipelineResult` (``None`` entries mark
    jobs skipped because another client held the claim).
    """
    if not evaluators:
        raise ValueError("need at least one cooperative evaluator")
    job_streams = [
        list(coop.evaluator.iter_jobs(X, y, param_grid))
        for coop in evaluators
    ]
    lengths = {len(stream) for stream in job_streams}
    if len(lengths) != 1:
        raise ValueError(
            "clients disagree on the job set; graphs/CV/metric must match"
        )
    n_jobs = lengths.pop()
    outputs: List[List[Optional[PipelineResult]]] = [
        [] for _ in evaluators
    ]
    for index in range(n_jobs):
        for c, coop in enumerate(evaluators):
            outputs[c].append(
                coop.process_job(job_streams[c][index], X, y)
            )
    return outputs


def rebuild_best_pipeline(
    darr: DataAnalyticsResultsRepository,
    dataset: Optional[str] = None,
    metric: Optional[str] = None,
):
    """Reconstruct the best shared pipeline from its DARR spec.

    Parameters
    ----------
    darr:
        The repository to query.
    dataset:
        Optional dataset fingerprint filter.
    metric:
        Optional metric-name filter.

    Returns
    -------
    An *unfitted* :class:`repro.core.pipeline.Pipeline` built via the
    component registry, with the stored parameter setting applied — a
    consuming client fits it on its own copy of the data.  Raises
    ``LookupError`` when the repository has no matching results.
    """
    best = darr.best(dataset=dataset, metric=metric)
    if best is None:
        raise LookupError("no results in the repository match the query")
    if not best.spec or "pipeline" not in best.spec:
        raise LookupError(
            f"result {best.key} carries no pipeline spec to rebuild from"
        )
    from repro.core.registry import pipeline_from_spec

    pipeline = pipeline_from_spec(best.spec)
    if best.params:
        pipeline.set_params(**best.params)
    return pipeline
