"""Analytics result records stored in the DARR.

"Clients can place their data analytics results, along with an
explanation of how the results were achieved, in a data analytics results
repository (DARR) in the cloud" (paper Section III, Fig. 2).

A record carries the full computation spec (pipeline, parameters, CV,
metric, dataset fingerprint), the scores, the producing client and a
human-readable explanation — enough for another client to trust, reuse
or reproduce the calculation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, MISSING
from typing import Any, Dict, List, Optional

from repro.core.evaluation import PipelineResult
from repro.distributed.objects import encode_payload

__all__ = ["AnalyticsResult"]


@dataclass(frozen=True)
class AnalyticsResult:
    """One completed analytics calculation.

    ``key`` is the canonical spec key from
    :func:`repro.core.spec.spec_key`; two clients computing the same
    pipeline with the same parameters, CV and metric on the same data
    produce the same key — which is what lets the DARR deduplicate work.
    """

    key: str
    dataset: Optional[str]
    path: str
    params: Dict[str, Any]
    metric: str
    score: float
    std: float
    fold_scores: List[float]
    greater_is_better: bool
    client: str
    explanation: str
    timestamp: float = 0.0
    spec: Dict[str, Any] = field(default_factory=dict)
    #: Provenance sidecar (a
    #: :meth:`repro.provenance.ProvenanceRecord.as_dict` document plus
    #: the producing artifact's ``digest``); rides inside the record,
    #: so repository dumps, shard replication and crash rebalancing
    #: preserve lineage for free.  ``None`` for legacy records.
    provenance: Optional[Dict[str, Any]] = None

    def __setstate__(self, state: Dict[str, Any]) -> None:
        # Records pickled by older schema versions (v1–v3 repository
        # dumps) predate newer fields; restore declared defaults for
        # whatever the pickle lacks so legacy dumps keep loading.
        for f in fields(self):
            if f.name in state:
                continue
            if f.default is not MISSING:
                state[f.name] = f.default
            elif f.default_factory is not MISSING:  # type: ignore[misc]
                state[f.name] = f.default_factory()  # type: ignore[misc]
        object.__setattr__(self, "__dict__", state)

    @classmethod
    def from_pipeline_result(
        cls,
        result: PipelineResult,
        client: str,
        spec: Optional[Dict[str, Any]] = None,
        timestamp: float = 0.0,
        provenance: Optional[Dict[str, Any]] = None,
    ) -> "AnalyticsResult":
        """Package a local :class:`PipelineResult` for publication."""
        spec = spec or {}
        cv = result.cv_result
        explanation = (
            f"pipeline [{result.path}] with params {result.params or '{}'} "
            f"evaluated by {client} using "
            f"{len(cv.fold_scores)}-fold cross-validation on metric "
            f"{cv.metric}: mean={cv.mean_score:.6f} std={cv.std_score:.6f}"
        )
        return cls(
            key=result.key,
            dataset=spec.get("dataset"),
            path=result.path,
            params=dict(result.params),
            metric=cv.metric,
            score=cv.mean_score,
            std=cv.std_score,
            fold_scores=list(cv.fold_scores),
            greater_is_better=cv.greater_is_better,
            client=client,
            explanation=explanation,
            timestamp=timestamp,
            spec=spec,
            provenance=provenance,
        )

    @classmethod
    def from_artifact_value(
        cls,
        key: str,
        value: Dict[str, Any],
        client: str = "store",
        timestamp: float = 0.0,
        provenance: Optional[Dict[str, Any]] = None,
    ) -> "AnalyticsResult":
        """Build a record from a store artifact payload (the inverse of
        :meth:`artifact_value`) — how a locally cached result becomes a
        publishable DARR record."""
        from repro.ml.model_selection.cross_validate import (
            CrossValidationResult,
        )

        result = PipelineResult(
            path=value["path"],
            params=dict(value["params"]),
            cv_result=CrossValidationResult(
                metric=value["metric"],
                fold_scores=list(value["fold_scores"]),
                greater_is_better=value["greater"],
                fit_seconds=float(value.get("fit_seconds", 0.0)),
            ),
            key=key,
        )
        return cls.from_pipeline_result(
            result, client=client, timestamp=timestamp, provenance=provenance
        )

    def artifact_value(self) -> Dict[str, Any]:
        """This record as the canonical ``result`` artifact payload the
        :class:`~repro.store.base.ArtifactStore` tiers exchange — the
        same dict the execution engine caches, so a DARR record and a
        locally cached result are one artifact at different tiers."""
        return {
            "path": self.path,
            "params": dict(self.params),
            "metric": self.metric,
            "fold_scores": list(self.fold_scores),
            "greater": self.greater_is_better,
            "fit_seconds": 0.0,
        }

    def to_pipeline_result(self) -> PipelineResult:
        """Rehydrate as a :class:`PipelineResult` flagged ``from_cache``
        so it can merge into a local evaluation report."""
        from repro.ml.model_selection.cross_validate import (
            CrossValidationResult,
        )

        return PipelineResult(
            path=self.path,
            params=dict(self.params),
            cv_result=CrossValidationResult(
                metric=self.metric,
                fold_scores=list(self.fold_scores),
                greater_is_better=self.greater_is_better,
            ),
            key=self.key,
            from_cache=True,
        )

    @property
    def wire_size(self) -> int:
        """Serialized size, for network accounting."""
        return len(encode_payload(self))
