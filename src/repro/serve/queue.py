"""Admission control and weighted-fair scheduling for the front door.

The queue is the load-shedding boundary of the serving layer.  Two
decisions happen here:

* **Admission** — a bounded global queue plus a per-tenant queued cap.
  When either is full, :meth:`FairAdmissionQueue.offer` rejects the
  request with a ``retry_after`` hint derived from an exponential
  moving average of recent service times, so clients back off in
  proportion to actual load instead of hammering a fixed interval.
* **Scheduling** — stride scheduling over tenants.  Each tenant
  carries a virtual time that advances by ``1 / weight`` per claimed
  job; workers always claim from the eligible tenant with the lowest
  virtual time (deterministic name tie-break).  A tenant with weight 2
  gets twice the claims of a weight-1 tenant under contention, and a
  starved tenant's low virtual time guarantees it is scheduled as soon
  as it becomes eligible — no tenant waits forever behind a flood.
  ``max_inflight`` caps how many of a tenant's jobs run at once, so one
  tenant cannot occupy every worker.

The queue itself is synchronous and lock-protected; the asyncio
service wraps it with its own wakeup signalling.  Keeping it
synchronous makes admission decisions deterministic and directly
testable without an event loop.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

__all__ = [
    "TenantQuota",
    "AdmissionDecision",
    "AdmissionRejected",
    "FairAdmissionQueue",
]


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant resource limits and scheduling weight.

    Parameters
    ----------
    weight:
        Fair-share weight (> 0).  Under contention a tenant receives
        claims in proportion to its weight: weight 2 is scheduled
        twice as often as weight 1.
    max_inflight:
        Most jobs of this tenant that may be claimed-or-running at
        once (>= 1).  Excess jobs wait in the tenant's queue even when
        workers are idle.
    max_queued:
        Most jobs of this tenant that may wait in the queue (>= 1);
        submissions beyond it are rejected with reason
        ``"tenant_queue_full"``.
    """

    weight: float = 1.0
    max_inflight: int = 2
    max_queued: int = 8

    def __post_init__(self):
        if self.weight <= 0:
            raise ValueError(f"weight must be > 0, got {self.weight}")
        if self.max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1, got {self.max_inflight}"
            )
        if self.max_queued < 1:
            raise ValueError(
                f"max_queued must be >= 1, got {self.max_queued}"
            )


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of offering one request to the admission queue.

    Attributes: ``admitted`` (bool), ``reason`` (``"admitted"``,
    ``"queue_full"`` or ``"tenant_queue_full"``) and ``retry_after``
    (seconds the client should wait before retrying; ``0.0`` when
    admitted).
    """

    admitted: bool
    reason: str = "admitted"
    retry_after: float = 0.0


class AdmissionRejected(RuntimeError):
    """Raised by the service when admission control sheds a request.

    Carries ``reason`` (``"queue_full"`` / ``"tenant_queue_full"`` /
    ``"darr_unavailable"`` during a cooperative-repository outage)
    and ``retry_after`` — the backpressure hint in seconds that
    well-behaved clients (e.g. the bundled
    :class:`~repro.serve.loadgen.LoadGenerator`) sleep before
    resubmitting.

    Parameters
    ----------
    reason:
        Which limit rejected the request.
    retry_after:
        Suggested client back-off in seconds.
    """

    def __init__(self, reason: str, retry_after: float):
        super().__init__(
            f"admission rejected ({reason}); retry after "
            f"{retry_after:.3f}s"
        )
        self.reason = reason
        self.retry_after = retry_after


class FairAdmissionQueue:
    """Bounded, weighted-fair, multi-tenant admission queue.

    Synchronous and thread-safe; see the module docstring for the
    admission and stride-scheduling semantics.

    Parameters
    ----------
    max_depth:
        Global bound on queued (not yet claimed) requests (>= 1).
    default_quota:
        :class:`TenantQuota` applied to tenants absent from
        ``quotas``; defaults to ``TenantQuota()``.
    quotas:
        Optional mapping of tenant name to :class:`TenantQuota`.
    concurrency_hint:
        How many workers drain the queue; scales the ``retry_after``
        estimate (a 4-worker service drains a 12-deep queue ~4x
        faster than a 1-worker one).
    min_retry_after:
        Floor for ``retry_after`` hints in seconds, so rejected
        clients never busy-spin even when the service looks idle.
    clock:
        Monotonic clock used for the service-time EWMA (injectable in
        tests).
    """

    def __init__(
        self,
        max_depth: int = 64,
        default_quota: Optional[TenantQuota] = None,
        quotas: Optional[Mapping[str, TenantQuota]] = None,
        concurrency_hint: int = 1,
        min_retry_after: float = 0.05,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        if concurrency_hint < 1:
            raise ValueError(
                f"concurrency_hint must be >= 1, got {concurrency_hint}"
            )
        self.max_depth = max_depth
        self.default_quota = default_quota or TenantQuota()
        self.quotas: Dict[str, TenantQuota] = dict(quotas or {})
        self.concurrency_hint = concurrency_hint
        self.min_retry_after = min_retry_after
        self._clock = clock
        self._lock = threading.Lock()
        self._queues: Dict[str, List[Any]] = {}
        self._inflight: Dict[str, int] = {}
        self._vtimes: Dict[str, float] = {}
        self._vclock = 0.0
        #: EWMA of observed per-job service seconds (retry_after basis).
        self._ewma_service: Optional[float] = None
        self.peak_depth = 0
        self.total_admitted = 0
        self.total_rejected = 0

    def quota(self, tenant: str) -> TenantQuota:
        """The effective :class:`TenantQuota` for ``tenant``.

        Parameters
        ----------
        tenant:
            Tenant name.

        Returns
        -------
        The configured quota, or ``default_quota`` when none is set.
        """
        return self.quotas.get(tenant, self.default_quota)

    def depth(self) -> int:
        """Total queued (unclaimed) requests across all tenants."""
        with self._lock:
            return sum(len(q) for q in self._queues.values())

    def queued(self, tenant: str) -> int:
        """Queued request count for one tenant.

        Parameters
        ----------
        tenant:
            Tenant name.

        Returns
        -------
        Number of this tenant's requests waiting to be claimed.
        """
        with self._lock:
            return len(self._queues.get(tenant, ()))

    def inflight(self, tenant: str) -> int:
        """Claimed-but-unreleased request count for one tenant.

        Parameters
        ----------
        tenant:
            Tenant name.

        Returns
        -------
        Number of this tenant's requests currently claimed/running.
        """
        with self._lock:
            return self._inflight.get(tenant, 0)

    def retry_after(self) -> float:
        """Current backpressure hint in seconds.

        Estimates how long until a queue slot frees: roughly one
        queue-drain interval, ``(depth / concurrency + 1) * EWMA`` of
        recent service times, floored at ``min_retry_after``.

        Returns
        -------
        Suggested client back-off in seconds.
        """
        with self._lock:
            return self._retry_after_locked()

    def _retry_after_locked(self) -> float:
        depth = sum(len(q) for q in self._queues.values())
        ewma = self._ewma_service
        if ewma is None:
            return self.min_retry_after
        estimate = (depth / self.concurrency_hint + 1.0) * ewma
        return max(self.min_retry_after, estimate)

    def offer(self, tenant: str, item: Any) -> AdmissionDecision:
        """Offer one request for admission.

        Parameters
        ----------
        tenant:
            Submitting tenant.
        item:
            Opaque payload to queue (the service passes its job
            record).

        Returns
        -------
        An :class:`AdmissionDecision`; when ``admitted`` is False the
        item was **not** enqueued and ``retry_after`` carries the
        back-off hint.
        """
        quota = self.quota(tenant)
        with self._lock:
            depth = sum(len(q) for q in self._queues.values())
            if depth >= self.max_depth:
                self.total_rejected += 1
                return AdmissionDecision(
                    False, "queue_full", self._retry_after_locked()
                )
            if len(self._queues.get(tenant, ())) >= quota.max_queued:
                self.total_rejected += 1
                return AdmissionDecision(
                    False, "tenant_queue_full", self._retry_after_locked()
                )
            self._queues.setdefault(tenant, []).append(item)
            if tenant not in self._vtimes:
                # joiners start at the virtual clock, not zero, so a
                # new tenant cannot monopolise workers to "catch up"
                self._vtimes[tenant] = self._vclock
            self.total_admitted += 1
            self.peak_depth = max(self.peak_depth, depth + 1)
            return AdmissionDecision(True)

    def claim(self) -> Optional[Tuple[str, Any]]:
        """Claim the next request under weighted-fair scheduling.

        Picks the eligible tenant (non-empty queue, inflight below its
        ``max_inflight``) with the lowest virtual time, advances that
        tenant's virtual time by ``1 / weight``, and marks one job
        inflight.

        Returns
        -------
        ``(tenant, item)`` for the claimed request, or ``None`` when
        no tenant is eligible (empty queues or all at their inflight
        caps).
        """
        with self._lock:
            best: Optional[str] = None
            for tenant, queue in self._queues.items():
                if not queue:
                    continue
                quota = self.quota(tenant)
                if self._inflight.get(tenant, 0) >= quota.max_inflight:
                    continue
                if best is None or (
                    self._vtimes[tenant],
                    tenant,
                ) < (self._vtimes[best], best):
                    best = tenant
            if best is None:
                return None
            item = self._queues[best].pop(0)
            quota = self.quota(best)
            self._vtimes[best] += 1.0 / quota.weight
            self._vclock = max(self._vclock, self._vtimes[best])
            self._inflight[best] = self._inflight.get(best, 0) + 1
            return best, item

    def release(self, tenant: str) -> None:
        """Return one inflight slot after a claimed job finishes.

        Parameters
        ----------
        tenant:
            Tenant whose job reached a terminal state.
        """
        with self._lock:
            current = self._inflight.get(tenant, 0)
            if current > 0:
                self._inflight[tenant] = current - 1

    def observe(self, service_seconds: float) -> None:
        """Feed one observed job service time into the EWMA.

        Parameters
        ----------
        service_seconds:
            Wall seconds one job spent from claim to terminal state;
            drives the ``retry_after`` backpressure estimate.
        """
        if service_seconds < 0:
            return
        with self._lock:
            if self._ewma_service is None:
                self._ewma_service = service_seconds
            else:
                self._ewma_service = (
                    0.7 * self._ewma_service + 0.3 * service_seconds
                )

    def remove(self, predicate: Callable[[Any], bool]) -> List[Any]:
        """Remove queued items matching a predicate (for cancellation).

        Parameters
        ----------
        predicate:
            Called with each queued item; truthy means remove it.

        Returns
        -------
        The removed items, in queue order.
        """
        removed: List[Any] = []
        with self._lock:
            for tenant, queue in self._queues.items():
                keep = []
                for item in queue:
                    if predicate(item):
                        removed.append(item)
                    else:
                        keep.append(item)
                self._queues[tenant] = keep
        return removed

    def snapshot(self) -> Dict[str, Any]:
        """Point-in-time queue statistics.

        Returns
        -------
        Dict with ``depth``, ``peak_depth``, ``admitted``,
        ``rejected``, ``retry_after`` and per-tenant
        ``{queued, inflight, vtime}`` under ``"tenants"``.
        """
        with self._lock:
            return {
                "depth": sum(len(q) for q in self._queues.values()),
                "peak_depth": self.peak_depth,
                "admitted": self.total_admitted,
                "rejected": self.total_rejected,
                "retry_after": self._retry_after_locked(),
                "tenants": {
                    tenant: {
                        "queued": len(self._queues.get(tenant, ())),
                        "inflight": self._inflight.get(tenant, 0),
                        "vtime": self._vtimes.get(tenant, 0.0),
                    }
                    for tenant in sorted(
                        set(self._queues) | set(self._inflight)
                    )
                },
            }
