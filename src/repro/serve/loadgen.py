"""Simulated multi-tenant load generator for the serving front door.

Drives an :class:`~repro.serve.service.AnalyticsService` with many
concurrent asyncio client tasks, each submitting analytics requests,
honouring admission-control back-pressure (sleeping the suggested
``retry_after`` before resubmitting) and awaiting terminal results.
The benchmark (``benchmarks/test_bench_serving.py``) and the CI smoke
leg both run through this module, and its :class:`LoadReport` is the
source of the ``BENCH_serving.json`` numbers: p50/p99 latency,
sustained jobs/sec, admission-reject rate and the lost-job invariant
(every admitted job must reach a terminal state).
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from .jobs import JobState, percentile
from .queue import AdmissionRejected

__all__ = ["LoadGenerator", "LoadReport"]


@dataclass
class LoadReport:
    """Aggregate outcome of one load-generation run.

    ``lost`` is the invariant the benchmark gates on: admitted jobs
    that never reached a terminal state (must be zero — admission may
    shed load, but it may never drop work it accepted).
    """

    n_clients: int = 0
    submitted: int = 0
    admitted: int = 0
    rejected: int = 0
    retries: int = 0
    gave_up: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    elapsed_seconds: float = 0.0
    latencies: List[float] = field(default_factory=list)
    queue_waits: List[float] = field(default_factory=list)

    @property
    def terminal(self) -> int:
        """Admitted jobs that reached any terminal state."""
        return self.completed + self.failed + self.cancelled

    @property
    def lost(self) -> int:
        """Admitted jobs that never reached a terminal state (must be
        zero)."""
        return self.admitted - self.terminal

    @property
    def reject_rate(self) -> float:
        """Rejected submissions over all submissions."""
        if self.submitted == 0:
            return 0.0
        return self.rejected / self.submitted

    @property
    def jobs_per_second(self) -> float:
        """Sustained terminal-job throughput over the run."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.terminal / self.elapsed_seconds

    def p50_latency(self) -> Optional[float]:
        """Median submit-to-terminal latency in seconds.

        Returns
        -------
        The p50 latency, or ``None`` when no job finished.
        """
        return percentile(self.latencies, 50) if self.latencies else None

    def p99_latency(self) -> Optional[float]:
        """Tail (p99) submit-to-terminal latency in seconds.

        Returns
        -------
        The p99 latency, or ``None`` when no job finished.
        """
        return percentile(self.latencies, 99) if self.latencies else None

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready summary (the ``BENCH_serving.json`` payload).

        Returns
        -------
        Dict of counts, rates and rounded latency percentiles.
        """
        p50 = self.p50_latency()
        p99 = self.p99_latency()
        mean_wait = (
            sum(self.queue_waits) / len(self.queue_waits)
            if self.queue_waits
            else None
        )
        return {
            "n_clients": self.n_clients,
            "submitted": self.submitted,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "retries": self.retries,
            "gave_up": self.gave_up,
            "completed": self.completed,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "lost": self.lost,
            "reject_rate": round(self.reject_rate, 4),
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "jobs_per_second": round(self.jobs_per_second, 4),
            "p50_latency_seconds": None if p50 is None else round(p50, 6),
            "p99_latency_seconds": None if p99 is None else round(p99, 6),
            "mean_queue_wait_seconds": (
                None if mean_wait is None else round(mean_wait, 6)
            ),
        }


class LoadGenerator:
    """Spawn N concurrent simulated tenants against a service.

    Each client task draws workloads from a seeded RNG, submits them
    under its tenant name, backs off per the service's ``retry_after``
    hints when rejected, and awaits every admitted job's terminal
    state.

    Parameters
    ----------
    service:
        The running :class:`~repro.serve.service.AnalyticsService`.
    workloads:
        Non-empty sequence of zero-argument callables, each returning
        a :class:`~repro.serve.jobs.JobRequest` (callables so heavy
        requests can be built lazily / shared).
    n_clients:
        Number of concurrent client tasks.
    jobs_per_client:
        Jobs each client submits sequentially.
    n_tenants:
        Distinct tenant names to spread clients over (client *i* is
        ``tenant-{i % n_tenants}``).
    seed:
        Base RNG seed; client *i* uses a deterministic derivation, so
        a run's submission pattern replays exactly.
    max_retries:
        Resubmission budget per job after admission rejections; a job
        that exhausts it counts as ``gave_up``.
    retry_cap:
        Upper bound in seconds applied to any single back-off sleep.
    """

    def __init__(
        self,
        service: Any,
        workloads: Sequence[Any],
        n_clients: int = 200,
        jobs_per_client: int = 1,
        n_tenants: int = 4,
        seed: int = 0,
        max_retries: int = 50,
        retry_cap: float = 0.5,
    ):
        if not workloads:
            raise ValueError("workloads must be a non-empty sequence")
        if n_clients < 1:
            raise ValueError(f"n_clients must be >= 1, got {n_clients}")
        if n_tenants < 1:
            raise ValueError(f"n_tenants must be >= 1, got {n_tenants}")
        self.service = service
        self.workloads = list(workloads)
        self.n_clients = n_clients
        self.jobs_per_client = jobs_per_client
        self.n_tenants = n_tenants
        self.seed = seed
        self.max_retries = max_retries
        self.retry_cap = retry_cap

    async def run(self) -> LoadReport:
        """Run every client to completion and aggregate the outcome.

        Returns
        -------
        The populated :class:`LoadReport` (latencies, counts, rates).
        """
        report = LoadReport(n_clients=self.n_clients)
        lock = asyncio.Lock()
        started = time.perf_counter()
        tasks = [
            asyncio.ensure_future(self._client(i, report, lock))
            for i in range(self.n_clients)
        ]
        await asyncio.gather(*tasks)
        report.elapsed_seconds = time.perf_counter() - started
        return report

    async def _client(
        self, index: int, report: LoadReport, lock: asyncio.Lock
    ) -> None:
        """One simulated tenant client: submit, back off, await."""
        rng = random.Random(self.seed * 1_000_003 + index)
        tenant = f"tenant-{index % self.n_tenants}"
        for _ in range(self.jobs_per_client):
            request = rng.choice(self.workloads)()
            status = None
            retries = 0
            while True:
                async with lock:
                    report.submitted += 1
                try:
                    status = await self.service.submit(request, tenant=tenant)
                    break
                except AdmissionRejected as rejection:
                    async with lock:
                        report.rejected += 1
                    if retries >= self.max_retries:
                        async with lock:
                            report.gave_up += 1
                        status = None
                        break
                    retries += 1
                    async with lock:
                        report.retries += 1
                    # jittered back-off around the service's hint so
                    # rejected clients don't resubmit in lock-step
                    delay = min(
                        self.retry_cap,
                        rejection.retry_after * (0.5 + rng.random()),
                    )
                    await asyncio.sleep(delay)
            if status is None:
                continue
            async with lock:
                report.admitted += 1
            final = await self.service.result(status.job_id)
            async with lock:
                if final.state == JobState.PUBLISHED:
                    report.completed += 1
                elif final.state == JobState.FAILED:
                    report.failed += 1
                elif final.state == JobState.CANCELLED:
                    report.cancelled += 1
                if final.latency_seconds is not None:
                    report.latencies.append(final.latency_seconds)
                if final.queue_seconds is not None:
                    report.queue_waits.append(final.queue_seconds)
