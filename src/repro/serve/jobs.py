"""Job lifecycle for the serving front door.

A served analytics job moves through an explicit state machine:

``submitted → claimed → running → published``, with ``failed`` and
``cancelled`` as the other terminal states.  ``submitted`` means the
job passed admission control and sits in the fair queue; ``claimed``
means a worker took it (and, in cooperative mode, is about to claim
its spec keys in the DARR); ``running`` means the
:class:`~repro.core.engine.ExecutionEngine` is evaluating its plan;
``published`` means every result landed in the
:class:`~repro.store.base.ArtifactStore` and the best path was
selected.  Transitions are validated — an illegal hop raises
:class:`InvalidTransition` — so the progress API can never observe an
impossible history.

The module also carries the request/status value objects
(:class:`JobRequest`, :class:`JobStatus`) and the small
:func:`percentile` helper the service and the load generator share for
latency reporting.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

__all__ = [
    "JobState",
    "JobRequest",
    "JobStatus",
    "InvalidTransition",
    "percentile",
]


class JobState:
    """The lifecycle states of a served analytics job.

    The class is a namespace of string constants plus the transition
    table; it is never instantiated.  States:

    * :data:`SUBMITTED` — admitted, waiting in the fair queue.
    * :data:`CLAIMED` — a worker took the job off the queue.
    * :data:`RUNNING` — the execution engine is evaluating the plan.
    * :data:`PUBLISHED` — terminal: all results stored, best selected.
    * :data:`FAILED` — terminal: nothing completed (or the failure
      policy aborted the job).
    * :data:`CANCELLED` — terminal: cancelled while queued or running.
    """

    SUBMITTED = "submitted"
    CLAIMED = "claimed"
    RUNNING = "running"
    PUBLISHED = "published"
    FAILED = "failed"
    CANCELLED = "cancelled"

    #: Every valid state, in lifecycle order.
    ALL = (SUBMITTED, CLAIMED, RUNNING, PUBLISHED, FAILED, CANCELLED)

    #: States a job can never leave.
    TERMINAL = frozenset({PUBLISHED, FAILED, CANCELLED})

    #: Legal ``current → next`` hops of the state machine.
    TRANSITIONS = {
        SUBMITTED: frozenset({CLAIMED, CANCELLED}),
        CLAIMED: frozenset({RUNNING, CANCELLED, FAILED}),
        RUNNING: frozenset({PUBLISHED, FAILED, CANCELLED}),
        PUBLISHED: frozenset(),
        FAILED: frozenset(),
        CANCELLED: frozenset(),
    }

    @classmethod
    def can_transition(cls, current: str, new: str) -> bool:
        """Whether ``current → new`` is a legal lifecycle hop.

        Parameters
        ----------
        current:
            The state the job is in now.
        new:
            The state being requested.

        Returns
        -------
        True when the hop is in the transition table.
        """
        return new in cls.TRANSITIONS.get(current, frozenset())


class InvalidTransition(RuntimeError):
    """An illegal lifecycle hop was requested (e.g. ``published →
    running``); the job is left in its current state."""


@dataclass
class JobRequest:
    """One analytics request: evaluate a Transformer-Estimator Graph.

    This is the unit tenants submit to
    :class:`~repro.serve.service.AnalyticsService` — the serving-layer
    twin of calling :class:`~repro.core.evaluation.GraphEvaluator`
    directly.  The service enumerates the graph's evaluation jobs,
    executes them through its shared engine (prefix group by prefix
    group, so progress and cancellation have natural checkpoints), and
    publishes the per-path results into the artifact store.
    """

    #: The :class:`~repro.core.graph.TransformerEstimatorGraph` to sweep.
    graph: Any
    #: Feature matrix (anything the engine accepts).
    X: Any
    #: Target vector.
    y: Any
    #: CV splitter instance, or ``None`` for the evaluator default.
    cv: Any = None
    #: Metric name or callable (see :mod:`repro.ml.metrics`).
    metric: Any = "rmse"
    #: Optional parameter grid mapping.
    param_grid: Optional[Mapping[str, Any]] = None
    #: Free-form label echoed on statuses (workload name, trace id...).
    label: str = ""


@dataclass
class JobStatus:
    """Immutable progress snapshot of one served job.

    Returned by :meth:`~repro.serve.service.AnalyticsService.submit` /
    ``status`` / ``result``; all timestamps are ``time.monotonic``
    readings from the service's clock (``None`` until reached).
    """

    job_id: str
    tenant: str
    state: str
    label: str = ""
    #: ``{"groups_done", "groups_total", "jobs_done", "jobs_total"}``.
    progress: Dict[str, int] = field(default_factory=dict)
    #: Completed per-path results so far (fresh + reused).
    n_results: int = 0
    #: Results served from a store tier / the DARR instead of computed.
    n_reused: int = 0
    #: Summary of the winning path once published (path/params/score).
    best: Optional[Dict[str, Any]] = None
    #: Structured per-job failure records (key/path/attempts/error).
    failures: List[Dict[str, Any]] = field(default_factory=list)
    #: Terminal error description when the whole job failed.
    error: Optional[str] = None
    submitted_at: Optional[float] = None
    claimed_at: Optional[float] = None
    started_at: Optional[float] = None
    finished_at: Optional[float] = None

    @property
    def done(self) -> bool:
        """Whether the job reached a terminal state."""
        return self.state in JobState.TERMINAL

    @property
    def queue_seconds(self) -> Optional[float]:
        """Time spent waiting in the queue (``None`` until claimed)."""
        if self.submitted_at is None or self.claimed_at is None:
            return None
        return self.claimed_at - self.submitted_at

    @property
    def latency_seconds(self) -> Optional[float]:
        """Submit-to-terminal wall time (``None`` until finished)."""
        if self.submitted_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at


class ServeJob:
    """Internal mutable record of one admitted job.

    Owned by the service; tenants only ever see :class:`JobStatus`
    snapshots.  All mutation happens under the record's lock because
    the execution hooks fire from worker threads while the event loop
    reads snapshots.

    Parameters
    ----------
    job_id:
        Unique id assigned at admission.
    tenant:
        Submitting tenant's name.
    request:
        The :class:`JobRequest` to evaluate.
    clock:
        Monotonic clock used for all timestamps (injectable in tests).
    """

    def __init__(
        self,
        job_id: str,
        tenant: str,
        request: JobRequest,
        clock=time.monotonic,
    ):
        self.job_id = job_id
        self.tenant = tenant
        self.request = request
        self._clock = clock
        self._lock = threading.Lock()
        self.state = JobState.SUBMITTED
        #: Monotonically increasing change counter; waiters poll it.
        self.version = 0
        self.cancel_event = threading.Event()
        self.progress: Dict[str, int] = {
            "groups_done": 0,
            "groups_total": 0,
            "jobs_done": 0,
            "jobs_total": 0,
        }
        #: ``(artifact_key_or_None, payload, reused)`` per result, in
        #: completion order — the stream API reads these.
        self.results: List[Any] = []
        self.n_reused = 0
        self.failures: List[Dict[str, Any]] = []
        self.best: Optional[Dict[str, Any]] = None
        self.error: Optional[str] = None
        #: Spec keys this job holds live DARR claims on (cooperative
        #: mode); released on cancellation/failure.
        self.claimed_keys: set = set()
        self.submitted_at = clock()
        self.claimed_at: Optional[float] = None
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None

    def transition(self, new_state: str) -> None:
        """Move to ``new_state``, validating against the lifecycle table.

        Parameters
        ----------
        new_state:
            Target state; must be a legal hop from the current state.

        Raises
        ------
        InvalidTransition
            When the hop is not in :data:`JobState.TRANSITIONS`.
        """
        with self._lock:
            if not JobState.can_transition(self.state, new_state):
                raise InvalidTransition(
                    f"job {self.job_id}: illegal transition "
                    f"{self.state!r} -> {new_state!r}"
                )
            self.state = new_state
            now = self._clock()
            if new_state == JobState.CLAIMED:
                self.claimed_at = now
            elif new_state == JobState.RUNNING:
                self.started_at = now
            elif new_state in JobState.TERMINAL:
                self.finished_at = now
            self.version += 1

    def record_result(self, key, payload, reused: bool) -> None:
        """Append one completed per-path result (hook-thread safe)."""
        with self._lock:
            self.results.append((key, payload, reused))
            if reused:
                self.n_reused += 1
            self.progress["jobs_done"] += 1
            self.version += 1

    def record_failure(self, failure: Dict[str, Any]) -> None:
        """Append one structured job-failure record."""
        with self._lock:
            self.failures.append(dict(failure))
            self.progress["jobs_done"] += 1
            self.version += 1

    def update_progress(self, **fields: int) -> None:
        """Merge progress counters (groups done, totals...)."""
        with self._lock:
            self.progress.update(fields)
            self.version += 1

    def results_snapshot(self) -> List[Any]:
        """A consistent copy of the per-result records so far."""
        with self._lock:
            return list(self.results)

    def status(self) -> JobStatus:
        """A consistent :class:`JobStatus` snapshot of this record."""
        with self._lock:
            return JobStatus(
                job_id=self.job_id,
                tenant=self.tenant,
                state=self.state,
                label=self.request.label,
                progress=dict(self.progress),
                n_results=len(self.results),
                n_reused=self.n_reused,
                best=dict(self.best) if self.best else None,
                failures=[dict(f) for f in self.failures],
                error=self.error,
                submitted_at=self.submitted_at,
                claimed_at=self.claimed_at,
                started_at=self.started_at,
                finished_at=self.finished_at,
            )


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile of a sample.

    Parameters
    ----------
    values:
        Sample values (need not be sorted; must be non-empty).
    q:
        Percentile in ``[0, 100]`` (e.g. ``50`` for the median,
        ``99`` for the tail).

    Returns
    -------
    The interpolated percentile value.
    """
    if not values:
        raise ValueError("percentile of an empty sample is undefined")
    if not 0 <= q <= 100:
        raise ValueError("q must be in [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return float(ordered[low])
    weight = rank - low
    return float(ordered[low] * (1 - weight) + ordered[high] * weight)
