"""The asyncio serving front door: ``AnalyticsService``.

This is the layer that turns the library (engine + store + DARR) into a
*service*: many concurrent tenants submit
:class:`~repro.serve.jobs.JobRequest` objects; admission control bounds
the queue and sheds overload with ``retry_after`` hints; a weighted-fair
scheduler decides whose job runs next; worker tasks execute each job
through a shared :class:`~repro.core.engine.ExecutionEngine` (plan
compilation, prefix caching and store-based result reuse all apply
unchanged); and the lifecycle / progress / streaming APIs let tenants
follow a job from ``submitted`` to ``published`` without polling the
engine directly.

Design notes:

* The service owns **one** engine.  That is the point — reuse: two
  tenants submitting the same computation share fold transforms through
  the prefix cache and completed results through the artifact store, so
  the second submission is nearly free (the paper's redundancy-avoidance
  argument, applied at the serving layer).
* Execution happens in worker threads (``asyncio.to_thread``) so the
  event loop stays responsive for submissions, cancellations and
  progress reads while NumPy crunches.
* In cooperative mode (``darr=...``) the engine's store gains a
  :class:`~repro.store.layered.DarrStore` outermost tier and the service
  claims each job's spec keys before computing them — a served job
  *becomes* a set of DARR claims, published on completion and released
  on cancellation or failure (see ``docs/cooperative-protocol.md``).
"""

from __future__ import annotations

import asyncio
import itertools
import threading
import time
from typing import Any, AsyncIterator, Dict, List, Mapping, Optional

from repro.core.engine import AllJobsFailed, ExecutionEngine, FailurePolicy
from repro.core.evaluation import GraphEvaluator
from repro.obs import resolve_telemetry
from repro.provenance import ANONYMOUS, as_client
from repro.store import KIND_RESULT, LayeredStore, resolve_store
from repro.store.layered import DarrStore

from .jobs import JobRequest, JobState, JobStatus, ServeJob, percentile
from .queue import AdmissionRejected, FairAdmissionQueue, TenantQuota

__all__ = ["AnalyticsService"]


class AnalyticsService:
    """Async multi-tenant front door over the analytics engine.

    Tenants :meth:`submit` requests, then :meth:`status`-poll,
    :meth:`result`-await or :meth:`stream` them; operators size the
    queue, set per-tenant quotas and read :meth:`stats`.  See
    ``docs/serving.md`` for the operational guide.

    Parameters
    ----------
    engine:
        :class:`~repro.core.engine.ExecutionEngine` shared by all
        served jobs, or ``None`` to build the serving default: the
        cost-aware auto executor, plan compilation on, a memory-backed
        artifact store for result reuse, and a skip failure policy so
        one bad pipeline path degrades that path, not the whole job.
    darr:
        Optional
        :class:`~repro.darr.repository.DataAnalyticsResultsRepository`.
        When given, the engine's store gains a DARR tier and every
        served job claims its spec keys before computing (cooperative
        mode).
    client:
        Client name used for DARR claims/publishes and network
        accounting.
    max_queue:
        Global admission bound: most jobs queued (not yet claimed) at
        once; submissions beyond it raise
        :class:`~repro.serve.queue.AdmissionRejected`.
    concurrency:
        Worker-task count — how many jobs execute at once.
    default_quota:
        :class:`~repro.serve.queue.TenantQuota` for tenants not listed
        in ``quotas``.
    quotas:
        Mapping of tenant name to
        :class:`~repro.serve.queue.TenantQuota`.
    telemetry:
        Telemetry spec (see :func:`repro.obs.resolve_telemetry`);
        ``serve.*`` counters and the ``serve.job`` span flow through
        it.
    failure_policy:
        Overrides the engine's failure policy when given
        (``"skip"``/``"retry"``/``"raise"`` or a
        :class:`~repro.core.engine.FailurePolicy`).
    clock:
        Monotonic clock for timestamps/latency (injectable in tests).
    darr_retry_after:
        Seconds of admission backpressure after the repository reports
        :class:`~repro.faults.ServiceUnavailable`.  Inside that window
        new submissions are rejected with reason ``darr_unavailable``
        and a ``retry_after`` hint instead of silently degrading every
        tenant's job to an uncooperative local sweep; the window
        re-opens on its own (the next claim attempt probes the
        repository again).
    """

    def __init__(
        self,
        engine: Optional[ExecutionEngine] = None,
        darr: Any = None,
        client: str = "serve",
        max_queue: int = 64,
        concurrency: int = 2,
        default_quota: Optional[TenantQuota] = None,
        quotas: Optional[Mapping[str, TenantQuota]] = None,
        telemetry: Any = None,
        failure_policy: Any = None,
        clock=time.monotonic,
        darr_retry_after: float = 5.0,
    ):
        if engine is None:
            # cache_size sizes both the prefix cache and the memory
            # store; the serving default must hold many tenants' sweep
            # results, not one sweep's (32 entries would evict every
            # result before the next tenant's identical job arrives)
            engine = ExecutionEngine(
                executor="auto",
                compile="auto",
                store="memory",
                failure_policy="skip",
                cache_size=4096,
                telemetry=telemetry,
            )
        if failure_policy is not None:
            engine.failure_policy = FailurePolicy.resolve(failure_policy)
        self.engine = engine
        self.darr = darr
        self.client = as_client(client)
        # An engine without its own identity publishes under the
        # service's name; per-request provenance still carries the
        # submitting tenant (see ``_execute``).
        if getattr(engine, "client", ANONYMOUS) == ANONYMOUS:
            engine.client = self.client
        if darr is not None:
            self._stack_darr_tier()
        if quotas:
            quotas = {str(as_client(k)): v for k, v in quotas.items()}
        self._clock = clock
        self._tel = resolve_telemetry(telemetry)
        self._queue = FairAdmissionQueue(
            max_depth=max_queue,
            default_quota=default_quota,
            quotas=quotas,
            concurrency_hint=concurrency,
            clock=clock,
        )
        self.concurrency = concurrency
        self._jobs: Dict[str, ServeJob] = {}
        self._ids = itertools.count(1)
        self._workers: List[asyncio.Task] = []
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        #: Monitor event, replaced on every state change; waiters grab
        #: the current one and await it (classic monitor pattern, safe
        #: because replacement happens on the loop thread only).
        self._change: Optional[asyncio.Event] = None
        self._stopping = False
        self._started = False
        self._latencies: List[float] = []
        self._queue_waits: List[float] = []
        self._counts = {
            "submitted": 0,
            "admitted": 0,
            "rejected": 0,
            "completed": 0,
            "failed": 0,
            "cancelled": 0,
            "results_fresh": 0,
            "results_reused": 0,
            "claims_granted": 0,
            "claims_released": 0,
            "darr_unavailable": 0,
        }
        self.darr_retry_after = darr_retry_after
        self._darr_outage_until = 0.0
        self._tenant_jobs: Dict[str, int] = {}
        self._lock = threading.Lock()

    # -- construction helpers ----------------------------------------------
    def _stack_darr_tier(self) -> None:
        """Append a DarrStore tier to the engine's store stack (the
        CooperativeEvaluator wiring, applied at the serving layer)."""
        base = self.engine.store
        if base is None:
            base = resolve_store("memory")
        darr_tier = DarrStore(self.darr, client=self.client)
        if isinstance(base, LayeredStore):
            tiers = list(base.tiers) + [darr_tier]
        else:
            tiers = [base, darr_tier]
        self.engine.store = LayeredStore(tiers)
        # The rewired stack must keep feeding the engine's provenance
        # registry (and the DARR tier teaches it fetched lineage).
        if getattr(self.engine, "provenance", None) is not None:
            self.engine.store.attach_registry(self.engine.provenance)

    # -- lifecycle ----------------------------------------------------------
    async def start(self) -> None:
        """Start the worker tasks on the running event loop.

        Safe to call once; submissions made before ``start`` stay
        queued and are picked up as soon as workers exist.

        Returns
        -------
        None.
        """
        if self._started:
            return
        self._loop = asyncio.get_running_loop()
        self._change = asyncio.Event()
        self._stopping = False
        self._started = True
        self._workers = [
            asyncio.ensure_future(self._worker(i))
            for i in range(self.concurrency)
        ]

    async def stop(self, drain: bool = True) -> None:
        """Stop the service.

        Parameters
        ----------
        drain:
            When True (default), wait for queued and running jobs to
            reach terminal states first; when False, cancel the
            workers immediately (running jobs get their cancel flag
            set and queued jobs are cancelled).

        Returns
        -------
        None.
        """
        if not self._started:
            return
        if not drain:
            for job in self._queue.remove(lambda item: True):
                try:
                    job.transition(JobState.CANCELLED)
                except Exception:
                    pass
                self._on_terminal(job)
            for job in self._jobs.values():
                if job.state not in JobState.TERMINAL:
                    job.cancel_event.set()
        self._stopping = True
        self._notify()
        await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []
        self._started = False

    # -- tenant API ---------------------------------------------------------
    async def submit(
        self, request: JobRequest, tenant: str = "default"
    ) -> JobStatus:
        """Submit one analytics request through admission control.

        Parameters
        ----------
        request:
            The :class:`~repro.serve.jobs.JobRequest` to evaluate.
        tenant:
            Submitting tenant's name (drives quotas and fair
            scheduling).

        Returns
        -------
        The job's initial :class:`~repro.serve.jobs.JobStatus`
        (state ``submitted``); use its ``job_id`` with
        :meth:`status` / :meth:`result` / :meth:`stream` /
        :meth:`cancel`.

        Raises
        ------
        AdmissionRejected
            When the global queue or the tenant's queued quota is
            full — or the cooperative repository is inside a
            ``darr_unavailable`` backpressure window; either way the
            exception carries the ``retry_after`` back-off hint.
        """
        tenant = str(as_client(tenant))
        tel = self._tel
        with self._lock:
            self._counts["submitted"] += 1
        tel.count("serve.jobs_submitted")
        with self._lock:
            outage_left = self._darr_outage_until - self._clock()
        if outage_left > 0:
            with self._lock:
                self._counts["rejected"] += 1
            tel.count("serve.jobs_rejected")
            tel.count("serve.rejections", key="darr_unavailable")
            raise AdmissionRejected("darr_unavailable", outage_left)
        job_id = f"job-{next(self._ids):06d}"
        job = ServeJob(job_id, tenant, request, clock=self._clock)
        decision = self._queue.offer(tenant, job)
        if not decision.admitted:
            with self._lock:
                self._counts["rejected"] += 1
            tel.count("serve.jobs_rejected")
            tel.count("serve.rejections", key=decision.reason)
            raise AdmissionRejected(decision.reason, decision.retry_after)
        self._jobs[job_id] = job
        with self._lock:
            self._counts["admitted"] += 1
            self._tenant_jobs[tenant] = self._tenant_jobs.get(tenant, 0) + 1
        tel.count("serve.jobs_admitted")
        tel.count("serve.tenant_jobs", key=tenant)
        if tel.enabled:
            tel.record(
                "serve.queue_depth",
                depth=self._queue.depth(),
                tenant=tenant,
            )
        self._notify()
        return job.status()

    def status(self, job_id: str) -> JobStatus:
        """Current progress snapshot of one job.

        Parameters
        ----------
        job_id:
            Id returned by :meth:`submit`.

        Returns
        -------
        The job's :class:`~repro.serve.jobs.JobStatus`.

        Raises
        ------
        KeyError
            For an unknown ``job_id``.
        """
        return self._jobs[job_id].status()

    async def result(
        self, job_id: str, timeout: Optional[float] = None
    ) -> JobStatus:
        """Wait until a job reaches a terminal state.

        Parameters
        ----------
        job_id:
            Id returned by :meth:`submit`.
        timeout:
            Optional overall wait bound in seconds.

        Returns
        -------
        The terminal :class:`~repro.serve.jobs.JobStatus`
        (``published``, ``failed`` or ``cancelled``).

        Raises
        ------
        KeyError
            For an unknown ``job_id``.
        asyncio.TimeoutError
            When ``timeout`` elapses first.
        """
        job = self._jobs[job_id]

        async def _wait() -> JobStatus:
            while job.state not in JobState.TERMINAL:
                await self._wait_change()
            return job.status()

        if timeout is None:
            return await _wait()
        return await asyncio.wait_for(_wait(), timeout)

    async def stream(self, job_id: str) -> AsyncIterator[Dict[str, Any]]:
        """Follow one job as an async event stream.

        Yields ``{"event": "state", "state": ...}`` on every lifecycle
        hop, ``{"event": "result", "payload": ..., "reused": ...,
        "key": ...}`` for each per-path result — the payload is read
        back from the engine's :class:`~repro.store.base.ArtifactStore`
        when the artifact is stored (falling back to the in-memory
        copy) — and finally ``{"event": "done", "status": JobStatus}``.

        Parameters
        ----------
        job_id:
            Id returned by :meth:`submit`.

        Returns
        -------
        An async iterator of event dicts, ending with the ``done``
        event.

        Raises
        ------
        KeyError
            For an unknown ``job_id``.
        """
        job = self._jobs[job_id]
        last_state = None
        sent_results = 0
        while True:
            state = job.state
            if state != last_state:
                last_state = state
                yield {"event": "state", "state": state}
            results = job.results_snapshot()
            while sent_results < len(results):
                key, payload, reused = results[sent_results]
                sent_results += 1
                stored = None
                if key is not None and self.engine.store is not None:
                    stored = self.engine.store.get(key)
                yield {
                    "event": "result",
                    "key": None if key is None else str(key),
                    "payload": stored if stored is not None else payload,
                    "reused": reused,
                }
            if state in JobState.TERMINAL:
                yield {"event": "done", "status": job.status()}
                return
            await self._wait_change()

    async def cancel(self, job_id: str) -> JobStatus:
        """Cancel a job.

        A still-queued job is removed and cancelled immediately; a
        running job gets its cancel flag set and stops at the next
        prefix-group boundary, releasing any DARR claims it still
        holds.  Cancelling a terminal job is a no-op.

        Parameters
        ----------
        job_id:
            Id returned by :meth:`submit`.

        Returns
        -------
        The job's :class:`~repro.serve.jobs.JobStatus` after the
        cancellation request (may still be ``running`` briefly).

        Raises
        ------
        KeyError
            For an unknown ``job_id``.
        """
        job = self._jobs[job_id]
        if job.state in JobState.TERMINAL:
            return job.status()
        removed = self._queue.remove(lambda item: item is job)
        if removed:
            job.transition(JobState.CANCELLED)
            self._on_terminal(job)
            self._notify()
            return job.status()
        job.cancel_event.set()
        self._notify()
        return job.status()

    # -- operator API -------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Service-level accounting for operators.

        Returns
        -------
        Dict with lifecycle ``counts`` (submitted/admitted/rejected/
        completed/failed/cancelled, fresh vs reused results, claim
        accounting), the admission ``queue`` snapshot (depth, peak,
        per-tenant inflight/vtime), per-tenant admitted-job counts
        under ``tenants``, ``latency`` p50/p99 seconds over terminal
        jobs plus mean queue wait, and ``provenance`` (registry record
        count plus the per-client contribution ``leaderboard``).
        """
        with self._lock:
            counts = dict(self._counts)
            tenants = dict(self._tenant_jobs)
            latencies = list(self._latencies)
            waits = list(self._queue_waits)
        latency: Dict[str, Any] = {"n": len(latencies)}
        if latencies:
            latency["p50_seconds"] = percentile(latencies, 50)
            latency["p99_seconds"] = percentile(latencies, 99)
        if waits:
            latency["mean_queue_wait_seconds"] = sum(waits) / len(waits)
        registry = getattr(self.engine, "provenance", None)
        ledger = getattr(self.engine, "ledger", None)
        provenance: Dict[str, Any] = {
            "records": len(registry) if registry is not None else 0,
        }
        if ledger is not None:
            provenance["leaderboard"] = ledger.leaderboard()
        return {
            "counts": counts,
            "queue": self._queue.snapshot(),
            "tenants": tenants,
            "latency": latency,
            "provenance": provenance,
        }

    @property
    def queue(self) -> FairAdmissionQueue:
        """The admission queue (operator introspection / tests)."""
        return self._queue

    # -- internals ----------------------------------------------------------
    def _notify(self) -> None:
        """Wake every waiter (loop-thread only): replace-and-set the
        monitor event."""
        if self._change is None:
            return
        event, self._change = self._change, asyncio.Event()
        event.set()

    def _notify_threadsafe(self) -> None:
        """Wake waiters from a worker thread."""
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        try:
            loop.call_soon_threadsafe(self._notify)
        except RuntimeError:
            pass  # loop shut down mid-call

    async def _wait_change(self) -> None:
        """Await the next state-change notification (with a small
        timeout safety net so shutdown can never strand a waiter)."""
        if self._change is None:
            await asyncio.sleep(0.01)
            return
        event = self._change
        try:
            await asyncio.wait_for(event.wait(), timeout=0.1)
        except asyncio.TimeoutError:
            pass

    async def _worker(self, index: int) -> None:
        """One worker task: claim fairly, execute, release."""
        while True:
            claimed = self._queue.claim()
            if claimed is None:
                if self._stopping:
                    if self._queue.depth() == 0:
                        return
                await self._wait_change()
                continue
            tenant, job = claimed
            if job.cancel_event.is_set():
                job.transition(JobState.CANCELLED)
                self._queue.release(tenant)
                self._on_terminal(job)
                self._notify()
                continue
            job.transition(JobState.CLAIMED)
            wait = job.claimed_at - job.submitted_at
            self._tel.count("serve.queue_wait_seconds", wait)
            with self._lock:
                self._queue_waits.append(wait)
            job.transition(JobState.RUNNING)
            self._notify()
            started = self._clock()
            try:
                await asyncio.to_thread(self._execute, job)
            except Exception as exc:  # defensive: _execute catches its own
                job.error = repr(exc)
                if job.state not in JobState.TERMINAL:
                    job.transition(JobState.FAILED)
            finally:
                self._queue.release(tenant)
                self._queue.observe(self._clock() - started)
                self._on_terminal(job)
                self._notify()

    def _on_terminal(self, job: ServeJob) -> None:
        """Book-keeping once a job reaches a terminal state."""
        if job.state not in JobState.TERMINAL:
            return
        outcome = {
            JobState.PUBLISHED: "completed",
            JobState.FAILED: "failed",
            JobState.CANCELLED: "cancelled",
        }[job.state]
        with self._lock:
            self._counts[outcome] += 1
            status = job.status()
            if status.latency_seconds is not None:
                self._latencies.append(status.latency_seconds)
        self._tel.count(f"serve.jobs_{outcome}")

    def _execute(self, job: ServeJob) -> None:
        """Run one job to a terminal state (worker thread).

        Executes the request's plan prefix-group by prefix-group so
        cancellation and progress have natural checkpoints; each group
        goes through the shared engine with per-job hooks feeding the
        job record (results, reuse, structured failures).
        """
        request = job.request
        tel = self._tel
        try:
            with tel.span("serve.job", tenant=job.tenant, job=job.job_id):
                evaluator = GraphEvaluator(
                    request.graph,
                    cv=request.cv,
                    metric=request.metric,
                    engine=self.engine,
                )
                plan = evaluator.plan(request.X, request.y, request.param_grid)
                groups = plan.groups()
                jobs_total = sum(len(g) for g in groups.values())
                job.update_progress(
                    groups_total=len(groups), jobs_total=jobs_total
                )
                key_to_spec = {
                    ejob.key: ejob.spec
                    for group in groups.values()
                    for ejob in group
                }
                results: List[Any] = []
                cancelled = False

                def artifact_key(result_key: str):
                    spec = key_to_spec.get(result_key) or {}
                    return self.engine._artifact_key(
                        KIND_RESULT,
                        result_key,
                        dataset=spec.get("dataset", ""),
                    )

                def on_result(result: Any) -> None:
                    results.append(result)
                    payload = ExecutionEngine._result_artifact(result)
                    job.record_result(
                        artifact_key(result.key), payload, reused=False
                    )
                    with self._lock:
                        self._counts["results_fresh"] += 1
                    tel.count("serve.results_fresh")
                    self._notify_threadsafe()

                def on_reuse(result: Any) -> None:
                    results.append(result)
                    payload = ExecutionEngine._result_artifact(result)
                    job.record_result(
                        artifact_key(result.key), payload, reused=True
                    )
                    with self._lock:
                        self._counts["results_reused"] += 1
                    tel.count("serve.results_reused")
                    self._notify_threadsafe()

                def on_error(ejob: Any, exc: BaseException) -> None:
                    job.record_failure(
                        {
                            "key": ejob.key,
                            "path": ejob.path,
                            "error": repr(exc),
                        }
                    )
                    self._release_claim(job, ejob.key)
                    self._notify_threadsafe()

                self._claim_jobs(
                    job,
                    [ejob for group in groups.values() for ejob in group],
                )
                for prefix, group in groups.items():
                    if job.cancel_event.is_set():
                        cancelled = True
                        break
                    try:
                        self.engine.execute(
                            list(group),
                            request.X,
                            request.y,
                            cv=evaluator.cv,
                            metric=request.metric,
                            result_hook=on_result,
                            error_hook=on_error,
                            reuse_hook=on_reuse,
                            producer=as_client(job.tenant),
                        )
                    except AllJobsFailed:
                        pass  # failures already recorded via on_error
                    job.update_progress(
                        groups_done=job.progress["groups_done"] + 1
                    )
                    self._notify_threadsafe()
                if job.cancel_event.is_set():
                    cancelled = True
                self._release_remaining_claims(job)
                if cancelled:
                    job.transition(JobState.CANCELLED)
                elif not results and jobs_total > 0:
                    job.error = (
                        f"all {jobs_total} evaluation job(s) failed "
                        f"({len(job.failures)} failure record(s))"
                    )
                    job.transition(JobState.FAILED)
                else:
                    best = None
                    if results:
                        if evaluator.greater_is_better:
                            best = max(results, key=lambda r: r.score)
                        else:
                            best = min(results, key=lambda r: r.score)
                    job.best = best.summary() if best is not None else None
                    job.transition(JobState.PUBLISHED)
        except Exception as exc:
            self._release_remaining_claims(job)
            job.error = repr(exc)
            if job.state not in JobState.TERMINAL:
                job.transition(JobState.FAILED)
        finally:
            self._notify_threadsafe()

    # -- cooperative claims -------------------------------------------------
    def _claim_jobs(self, job: ServeJob, ejobs: List[Any]) -> None:
        """Claim every spec key of the job's plan in the DARR (no-op
        without a repository) — a served job *becomes* a set of DARR
        claims.  Denied claims are fine — the engine's DARR store tier
        will reuse whatever the holder publishes."""
        if self.darr is None:
            return
        for ejob in ejobs:
            try:
                outcome = self.darr.claim_job(ejob.key, self.client)
            except Exception as exc:
                # Repository outage: this job degrades to a local
                # sweep, but new submissions get backpressure (an
                # AdmissionRejected with a retry_after hint) until the
                # outage window elapses, instead of silently losing
                # cooperation.  Duck-typed so the faults package stays
                # optional here (same pattern as DarrStore).
                if type(exc).__name__ == "ServiceUnavailable":
                    self._note_darr_outage()
                return
            if outcome.granted:
                job.claimed_keys.add(ejob.key)
                with self._lock:
                    self._counts["claims_granted"] += 1
                self._tel.count("serve.claims_granted")

    def _note_darr_outage(self) -> None:
        """Open (or extend) the darr_unavailable backpressure window
        after the repository raised ServiceUnavailable."""
        with self._lock:
            self._counts["darr_unavailable"] += 1
            self._darr_outage_until = self._clock() + self.darr_retry_after
        self._tel.count("serve.darr_unavailable")

    def _release_claim(self, job: ServeJob, key: str) -> None:
        """Release one still-held claim (after a failed job)."""
        if self.darr is None or key not in job.claimed_keys:
            return
        job.claimed_keys.discard(key)
        try:
            if self.darr.claim_holder(key) == self.client:
                self.darr.release_claim(key, self.client)
                with self._lock:
                    self._counts["claims_released"] += 1
                self._tel.count("serve.claims_released")
        except Exception:
            pass  # outage: TTL expiry will reclaim it

    def _release_remaining_claims(self, job: ServeJob) -> None:
        """Release every claim the job still holds whose result was
        never published (cancellation / failure cleanup; published
        keys already had their claims cleared by the repository)."""
        for key in list(job.claimed_keys):
            self._release_claim(job, key)
