"""``repro.serve`` — the async multi-tenant serving front door.

Everything below the serving layer is a library call; this package is
what makes it a *service*: admission control with backpressure,
per-tenant quotas and weighted-fair scheduling, an explicit job
lifecycle with progress/streaming APIs, and a load generator for
benchmarking.  See ``docs/serving.md`` for the tenant quickstart and
the operator guide.
"""

from .jobs import InvalidTransition, JobRequest, JobState, JobStatus, percentile
from .loadgen import LoadGenerator, LoadReport
from .queue import (
    AdmissionDecision,
    AdmissionRejected,
    FairAdmissionQueue,
    TenantQuota,
)
from .service import AnalyticsService

__all__ = [
    "AnalyticsService",
    "JobRequest",
    "JobStatus",
    "JobState",
    "InvalidTransition",
    "TenantQuota",
    "AdmissionDecision",
    "AdmissionRejected",
    "FairAdmissionQueue",
    "LoadGenerator",
    "LoadReport",
    "percentile",
]
