"""Process-parallel execution with a shared-memory data plane.

The paper's TEG sweep is embarrassingly parallel and CPU-bound, yet the
:class:`~repro.core.engine.ParallelExecutor` thread pool is throttled by
the GIL for the pure-Python fit loops in :mod:`repro.ml` and
:mod:`repro.nn`.  This module adds true process-level fan-out while
keeping the engine's determinism and accounting contracts:

* :class:`ShmDataPlane` — places ``X``/``y`` into
  :mod:`multiprocessing.shared_memory` ndarray blocks **once per engine
  call**; workers attach zero-copy views instead of re-pickling the
  dataset with every job.  Every created segment is tracked in a
  process-wide registry (:func:`active_shared_segments`) so tests can
  assert nothing leaks into ``/dev/shm``.
* :class:`ProcessExecutor` — a persistent worker pool (fork-server
  start method where available, spawn otherwise) that dispatches jobs
  in size-balanced contiguous batches (amortizing IPC round-trips and
  keeping prefix-grouped jobs cache-hot worker-side), quarantines
  crashed workers, re-dispatches their in-flight batches to survivors
  and starts bounded replacements — mirroring the
  :class:`~repro.distributed.scheduler.DistributedScheduler` recovery
  semantics.
* The worker runs each batch through a **serial**
  :class:`~repro.core.engine.ExecutionEngine` of its own, so the
  :class:`~repro.core.engine.FailurePolicy` retry/skip semantics, the
  per-worker :class:`~repro.core.engine.PrefixCache`, and any shipped
  fault plan behave exactly as they do in-process.  Results come back
  as compact records (fold scores, timings, failure info) — never
  fitted models; the winner is refit parent-side by
  :meth:`~repro.core.evaluation.GraphEvaluator.evaluate` exactly as for
  the other executors.

Fault hooks (duck-typed, like every other ``fault_injector`` site):

* ``procpool.dispatch`` — checked parent-side before a batch is handed
  to a worker (attrs: ``worker``, ``batch``); a ``NodeCrashed`` fault
  terminates that worker so chaos tests can kill workers
  deterministically from the outside.
* ``procpool.worker_batch`` — checked worker-side at batch start from a
  fault plan shipped through the engine (attrs: ``worker``, ``batch``);
  a ``NodeCrashed`` fault hard-exits the worker process mid-batch,
  exercising the reap/re-dispatch path for real.
* ``engine.run_job`` rules in a shipped plan fire inside each worker's
  serial engine; rules matched on a specific job key replay exactly as
  they would in-process because every attempt of a job runs in one
  worker.

This module never imports :mod:`repro.faults`; injected exception types
are recognized duck-typed by class name, preserving the core/faults
layering invariant.
"""

from __future__ import annotations

import atexit
import itertools
import os
import queue as queue_module
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.engine import Executor

__all__ = [
    "SharedArraySpec",
    "ShmDataPlane",
    "ProcessExecutor",
    "WorkerJobError",
    "WorkerBatchError",
    "NoHealthyWorkers",
    "active_shared_segments",
    "attach_shared_array",
    "balanced_batches",
]


# ---------------------------------------------------------------------------
# Errors
# ---------------------------------------------------------------------------

class WorkerJobError(RuntimeError):
    """A job failed inside a worker under ``on_error="raise"``; carries
    the worker-side error representation (the original exception object
    stayed in the worker)."""


class WorkerBatchError(RuntimeError):
    """A worker hit an unexpected error outside the failure policy
    (e.g. an unpicklable result or a corrupted payload)."""


class NoHealthyWorkers(RuntimeError):
    """Every worker died and the restart budget is exhausted; the batch
    cannot make progress (the process analogue of the scheduler's
    ``NoHealthyNodes``)."""


# ---------------------------------------------------------------------------
# Shared-memory data plane
# ---------------------------------------------------------------------------

_SEGMENTS_LOCK = threading.Lock()
_LIVE_SEGMENTS: set = set()
_SEGMENT_COUNTER = itertools.count()


def active_shared_segments() -> List[str]:
    """Names of shared-memory segments this process created and has not
    yet unlinked — empty whenever no engine call is in flight.

    Returns
    -------
    Sorted list of live segment names (the ``/dev/shm`` entry names).
    """
    with _SEGMENTS_LOCK:
        return sorted(_LIVE_SEGMENTS)


@dataclass(frozen=True)
class SharedArraySpec:
    """Picklable handle to one shared ndarray block.

    Parameters
    ----------
    name:
        Shared-memory segment name (``/dev/shm`` entry).
    shape:
        Array shape to reconstruct worker-side.
    dtype:
        Numpy dtype string (``arr.dtype.str``).
    """

    name: str
    shape: Tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        """Size of the described array in bytes."""
        return int(np.prod(self.shape, dtype=np.int64)) * np.dtype(self.dtype).itemsize


class ShmDataPlane:
    """Owns the shared-memory blocks of one engine call.

    ``share`` copies an array into a fresh segment exactly once;
    ``close`` closes **and unlinks** every segment (idempotent, called
    from a ``finally`` so normal completion, ``AllJobsFailed`` and
    worker crashes all clean up).  Segment names are tracked in the
    module registry for leak assertions.
    """

    def __init__(self) -> None:
        self._blocks: List[Tuple[str, shared_memory.SharedMemory]] = []
        self.nbytes = 0

    def share(self, arr: np.ndarray) -> SharedArraySpec:
        """Copy ``arr`` into a new shared segment and return its spec.

        Parameters
        ----------
        arr:
            Array to publish; made C-contiguous if it is not.

        Returns
        -------
        A :class:`SharedArraySpec` workers attach with
        :func:`attach_shared_array`.
        """
        arr = np.ascontiguousarray(arr)
        shm = None
        for _ in range(16):
            name = f"repro-{os.getpid()}-{next(_SEGMENT_COUNTER)}"
            try:
                shm = shared_memory.SharedMemory(
                    name=name, create=True, size=max(1, arr.nbytes)
                )
                break
            except FileExistsError:  # stale segment from a dead process
                continue
        if shm is None:
            raise RuntimeError("could not allocate a shared-memory segment")
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
        view[...] = arr
        with _SEGMENTS_LOCK:
            _LIVE_SEGMENTS.add(name)
        self._blocks.append((name, shm))
        self.nbytes += arr.nbytes
        return SharedArraySpec(name=name, shape=arr.shape, dtype=arr.dtype.str)

    def close(self) -> None:
        """Close and unlink every owned segment (idempotent)."""
        blocks, self._blocks = self._blocks, []
        for name, shm in blocks:
            try:
                shm.close()
            except OSError:
                pass
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
            with _SEGMENTS_LOCK:
                _LIVE_SEGMENTS.discard(name)

    def __enter__(self) -> "ShmDataPlane":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def attach_shared_array(
    spec: SharedArraySpec,
) -> Tuple[shared_memory.SharedMemory, np.ndarray]:
    """Attach a zero-copy ndarray view of a shared segment.

    Workers inherit the parent's ``resource_tracker`` process, so the
    attach-side registration is an idempotent set-add and the parent's
    :meth:`ShmDataPlane.close` performs the single unlink/unregister —
    the worker must *not* unregister, or it would clobber the parent's
    entry in the shared tracker.

    Parameters
    ----------
    spec:
        The segment handle produced by :meth:`ShmDataPlane.share`.

    Returns
    -------
    ``(shm, array)`` — keep ``shm`` referenced as long as ``array`` is
    alive; ``shm.close()`` detaches.
    """
    shm = shared_memory.SharedMemory(name=spec.name)
    arr = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf)
    return shm, arr


# ---------------------------------------------------------------------------
# Batching
# ---------------------------------------------------------------------------

def balanced_batches(items: Sequence[Any], n_batches: int) -> List[List[Any]]:
    """Split ``items`` into at most ``n_batches`` contiguous batches
    whose sizes differ by at most one.

    Contiguity matters: the engine orders jobs by shared transformer
    prefix, so contiguous chunks keep each worker's prefix cache hot,
    while near-equal sizes keep the pool load-balanced.

    Parameters
    ----------
    items:
        Ordered work items.
    n_batches:
        Desired batch count (clamped to ``len(items)``).

    Returns
    -------
    List of non-empty batches preserving the input order.
    """
    items = list(items)
    if not items:
        return []
    n_batches = max(1, min(n_batches, len(items)))
    base, extra = divmod(len(items), n_batches)
    batches: List[List[Any]] = []
    start = 0
    for index in range(n_batches):
        size = base + (1 if index < extra else 0)
        batches.append(items[start:start + size])
        start += size
    return batches


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

def _is_injected_crash(exc: BaseException) -> bool:
    """Duck-typed NodeCrashed detection (core never imports faults)."""
    return type(exc).__name__ == "NodeCrashed"


class _WorkerCallState:
    """Per-call worker state: the serial engine, its cache, attached
    shared arrays and the call's fault injector."""

    def __init__(self, payload: Dict[str, Any]):
        from repro.core.engine import ExecutionEngine, FailurePolicy
        from repro.store import store_from_spec

        policy = dict(payload["policy"])
        # "raise" aborts the batch parent-side; worker-side every
        # failure must come back as a record, so map it to skip.
        if policy.get("on_error") == "raise":
            policy["on_error"] = "skip"
            policy["max_retries"] = 0
        cache_size = int(payload.get("cache_size") or 0)
        # The parent's shared tiers (the disk root) rebuild here from
        # the shipped recipe, fronted by a worker-local memory tier —
        # so workers read/write the same cache as every other executor
        # instead of starting cold per process.
        store = store_from_spec(
            payload.get("store"), cache_size=max(1, cache_size or 32)
        )
        self.engine = ExecutionEngine(
            executor="serial",
            cache=cache_size > 0,
            cache_size=max(1, cache_size),
            failure_policy=FailurePolicy(**policy),
            store=store,
            data_ref=payload.get("data_ref"),
            compile=payload.get("compile", False),
            client=payload.get("client"),
        )
        plan = payload.get("fault_plan")
        self.injector = plan.injector() if plan is not None else None
        self.engine.fault_injector = self.injector
        self.splitter = payload["splitter"]
        self.metric = payload["metric"]
        self._x_shm, self.X = attach_shared_array(payload["x"])
        self._y_shm, self.y = attach_shared_array(payload["y"])

    def cache_counters(self) -> Tuple[int, int, int, int, int]:
        cache = self.engine.cache
        if cache is None:
            return (0, 0, 0, 0, 0)
        stats = cache.stats
        return (
            stats.hits,
            stats.misses,
            stats.stores,
            stats.evictions,
            stats.transformer_fits_saved,
        )

    def compile_counters(self) -> Dict[str, int]:
        """Cumulative plan-compilation counters of the worker engine."""
        return dict(self.engine._compile_totals)

    def store_counters(self) -> Dict[str, Dict[str, int]]:
        """Cumulative per-tier store counters (raw ints only)."""
        store = self.engine._local_store()
        if store is None:
            return {}
        return {
            tier: {
                counter: value
                for counter, value in counters.items()
                if counter != "hit_rate"
            }
            for tier, counters in store.tier_stats().items()
        }

    def close(self) -> None:
        for shm in (self._x_shm, self._y_shm):
            try:
                shm.close()
            except OSError:
                pass


def _result_record(result: Any) -> Dict[str, Any]:
    return {
        "ok": True,
        "from_cache": bool(result.from_cache),
        "key": result.key,
        "path": result.path,
        "params": dict(result.params),
        "metric": result.cv_result.metric,
        "greater": result.cv_result.greater_is_better,
        "fold_scores": [float(s) for s in result.cv_result.fold_scores],
        "fit_seconds": float(result.cv_result.fit_seconds),
    }


def _failure_record(failure: Any) -> Dict[str, Any]:
    return {
        "ok": False,
        "key": failure.key,
        "path": failure.path,
        "attempts": failure.attempts,
        "error": failure.error,
    }


def _run_worker_batch(
    state: _WorkerCallState, worker_name: str, batch_index: int, jobs: List[Any]
) -> List[Dict[str, Any]]:
    from repro.core.engine import AllJobsFailed

    if state.injector is not None:
        try:
            state.injector.check(
                "procpool.worker_batch",
                worker=worker_name,
                batch=str(batch_index),
            )
        except Exception as exc:
            if _is_injected_crash(exc):
                os._exit(13)  # simulate the process dying mid-batch
            raise
    try:
        results = state.engine.execute(
            jobs, state.X, state.y, cv=state.splitter, metric=state.metric
        )
    except AllJobsFailed:
        results = []
    by_key = {result.key: result for result in results}
    failed = {failure.key: failure for failure in state.engine.last_failures}
    records: List[Dict[str, Any]] = []
    for job in jobs:
        if job.key in by_key:
            records.append(_result_record(by_key[job.key]))
        elif job.key in failed:
            records.append(_failure_record(failed[job.key]))
        else:  # pragma: no cover - engine returns or records every job
            records.append(
                {
                    "ok": False,
                    "key": job.key,
                    "path": job.path,
                    "attempts": 0,
                    "error": "job produced neither result nor failure",
                }
            )
    return records


def _worker_main(
    worker_name: str,
    parent_sys_path: List[str],
    task_queue: Any,
    result_queue: Any,
) -> None:
    """Worker loop: attach data, run batches, return compact records.

    ``parent_sys_path`` replays the parent's import paths so job
    payloads referencing modules outside ``PYTHONPATH`` (e.g. test
    modules) unpickle under the spawn start method.
    """
    for entry in parent_sys_path:
        if entry not in sys.path:
            sys.path.append(entry)
    calls: Dict[Any, _WorkerCallState] = {}
    try:
        while True:
            message = task_queue.get()
            if message[0] == "stop":
                break
            _, token, batch_index, jobs, payload = message
            started = time.perf_counter()
            try:
                state = calls.get(token)
                if state is None:
                    # one live call at a time per engine: drop older state
                    for stale in calls.values():
                        stale.close()
                    calls.clear()
                    state = _WorkerCallState(payload)
                    calls[token] = state
                before = state.cache_counters()
                tiers_before = state.store_counters()
                compile_before = state.compile_counters()
                reused_before = state.engine._results_reused
                records = _run_worker_batch(
                    state, worker_name, batch_index, jobs
                )
                after = state.cache_counters()
                tiers_delta: Dict[str, Dict[str, int]] = {}
                for tier, counters in state.store_counters().items():
                    prior = tiers_before.get(tier, {})
                    delta = {
                        counter: value - prior.get(counter, 0)
                        for counter, value in counters.items()
                        if value - prior.get(counter, 0)
                    }
                    if delta:
                        tiers_delta[tier] = delta
                stats = {
                    "busy_seconds": time.perf_counter() - started,
                    "cache": {
                        "hits": after[0] - before[0],
                        "misses": after[1] - before[1],
                        "stores": after[2] - before[2],
                        "evictions": after[3] - before[3],
                        "transformer_fits_saved": after[4] - before[4],
                    },
                    "tiers": tiers_delta,
                    "compile": {
                        name: value - compile_before.get(name, 0)
                        for name, value in state.compile_counters().items()
                    },
                    "results_reused": (
                        state.engine._results_reused - reused_before
                    ),
                    "faults_fired": (
                        len(state.injector.events)
                        if state.injector is not None
                        else 0
                    ),
                }
                result_queue.put(
                    ("result", worker_name, batch_index, records, stats)
                )
            except Exception as exc:  # unexpected: not policy-handled
                result_queue.put(
                    ("fatal", worker_name, batch_index, repr(exc))
                )
    except (EOFError, OSError, KeyboardInterrupt):
        pass
    finally:
        for state in calls.values():
            state.close()


# ---------------------------------------------------------------------------
# Parent side: the executor
# ---------------------------------------------------------------------------

class _Worker:
    """Parent-side handle to one worker process and its task queue."""

    __slots__ = ("name", "process", "task_queue")

    def __init__(self, name: str, process: Any, task_queue: Any):
        self.name = name
        self.process = process
        self.task_queue = task_queue


class ProcessExecutor(Executor):
    """Persistent multiprocessing pool with a shared-memory data plane.

    Composes with the :class:`~repro.core.engine.ExecutionEngine`
    through :meth:`run_call` (the engine detects the
    ``runs_engine_calls`` capability): the dataset is shared once per
    call, jobs go out in size-balanced batches, and compact result /
    failure records come back in job order, so reports are identical to
    the serial executor's for deterministic pipelines.

    Recovery mirrors the distributed scheduler: a dead worker is
    quarantined, its in-flight batch re-dispatched to survivors, and a
    bounded number of replacement workers are started
    (``max_worker_restarts``); :class:`NoHealthyWorkers` is raised when
    nothing is left to run on.

    Parameters
    ----------
    max_workers:
        Worker process count; default ``min(4, cpu_count)``.
    batches_per_worker:
        Dispatch granularity: jobs are split into about
        ``max_workers * batches_per_worker`` batches — more batches
        balance load, fewer amortize IPC (default 2).
    start_method:
        ``"forkserver"`` (default where available), ``"spawn"``, or
        ``"fork"``; override with the ``REPRO_MP_START`` environment
        variable.
    max_worker_restarts:
        Replacement workers started per executor before crashed workers
        are only quarantined (default 3).
    poll_interval:
        Seconds between result-queue polls and liveness checks.
    """

    name = "processes"
    #: Capability flag the engine checks to route batched calls here.
    runs_engine_calls = True

    def __init__(
        self,
        max_workers: Optional[int] = None,
        batches_per_worker: int = 2,
        start_method: Optional[str] = None,
        max_worker_restarts: int = 3,
        poll_interval: float = 0.05,
    ):
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if batches_per_worker < 1:
            raise ValueError("batches_per_worker must be >= 1")
        if max_worker_restarts < 0:
            raise ValueError("max_worker_restarts must be >= 0")
        self.max_workers = max_workers or min(4, os.cpu_count() or 1)
        self.batches_per_worker = batches_per_worker
        self.max_worker_restarts = max_worker_restarts
        self.poll_interval = poll_interval
        start = start_method or os.environ.get("REPRO_MP_START")
        if start is None:
            import multiprocessing as mp

            methods = mp.get_all_start_methods()
            start = "forkserver" if "forkserver" in methods else "spawn"
        self.start_method = start
        #: Hook point (site ``procpool.dispatch``); ``None`` in
        #: production.  A ``NodeCrashed`` fault kills the target worker.
        self.fault_injector: Any = None
        #: Accounting of the most recent :meth:`run_call`.
        self.last_stats: Dict[str, Any] = {}
        self._ctx: Any = None
        self._workers: Dict[str, _Worker] = {}
        self._result_queue: Any = None
        self._worker_counter = itertools.count()
        self._call_counter = itertools.count()
        self._atexit_registered = False

    # -- pool management ----------------------------------------------------
    def _context(self) -> Any:
        if self._ctx is None:
            import multiprocessing as mp

            self._ctx = mp.get_context(self.start_method)
            self._result_queue = self._ctx.Queue()
        return self._ctx

    def _start_worker(self) -> _Worker:
        ctx = self._context()
        name = f"pw{next(self._worker_counter)}"
        task_queue = ctx.Queue()
        process = ctx.Process(
            target=_worker_main,
            args=(name, list(sys.path), task_queue, self._result_queue),
            name=f"repro-{name}",
            daemon=True,
        )
        process.start()
        worker = _Worker(name, process, task_queue)
        self._workers[name] = worker
        return worker

    def _ensure_pool(self) -> None:
        self._context()
        if not self._atexit_registered:
            atexit.register(self.shutdown)
            self._atexit_registered = True
        while len(self._workers) < self.max_workers:
            self._start_worker()

    @property
    def n_workers(self) -> int:
        """Live worker processes currently in the pool."""
        return len(self._workers)

    def shutdown(self) -> None:
        """Stop every worker (the pool restarts lazily on next use)."""
        workers, self._workers = dict(self._workers), {}
        for worker in workers.values():
            try:
                worker.task_queue.put(("stop",))
            except (OSError, ValueError):
                pass
        deadline = time.monotonic() + 2.0
        for worker in workers.values():
            worker.process.join(timeout=max(0.0, deadline - time.monotonic()))
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=1.0)

    # -- Executor interface -------------------------------------------------
    def run(self, jobs, run_one):
        """Fallback for engine-less use: run the thunks serially.

        Process fan-out needs the engine's picklable call payload (see
        :meth:`run_call`); a bare closure cannot cross a process
        boundary, so this degrades to in-order execution.
        """
        return [run_one(job) for job in jobs]

    # -- engine entry point -------------------------------------------------
    def run_call(
        self, jobs: Sequence[Any], call: Dict[str, Any]
    ) -> Tuple[List[Dict[str, Any]], Dict[str, Any]]:
        """Execute one engine call over the worker pool.

        Parameters
        ----------
        jobs:
            Ordered (prefix-grouped) evaluation jobs.
        call:
            Engine payload: ``X``/``y`` arrays, ``splitter``, ``metric``,
            ``policy`` (FailurePolicy kwargs), optional ``fault_plan``,
            the per-worker ``cache_size``, the optional shared
            ``store`` recipe plus ``data_ref`` so workers attach to the
            parent's disk tiers, and the ``compile`` spec each worker
            engine applies to its own batches.

        Returns
        -------
        ``(records, stats)`` — one compact record per job **in job
        order** (``{"ok": True, fold scores, timings}`` or ``{"ok":
        False, attempts, error}``), plus pool accounting
        (``shm_bytes``, ``batches_dispatched``, ``worker_restarts``,
        ``worker_busy`` seconds per worker, merged ``cache`` and
        ``compile`` deltas).
        """
        jobs = list(jobs)
        stats: Dict[str, Any] = {
            "shm_bytes": 0,
            "batches_dispatched": 0,
            "worker_restarts": 0,
            "worker_busy": {},
            "faults_fired": 0,
            "cache": {
                "hits": 0,
                "misses": 0,
                "stores": 0,
                "evictions": 0,
                "transformer_fits_saved": 0,
            },
            "tiers": {},
            "compile": {
                "kernels_fused": 0,
                "stages_interpreted": 0,
                "jobs_batched": 0,
                "folds_shared": 0,
                "estimator_fused_fits": 0,
            },
            "results_reused": 0,
        }
        self.last_stats = stats
        if not jobs:
            return [], stats
        self._ensure_pool()
        batches = balanced_batches(
            jobs, self.max_workers * self.batches_per_worker
        )
        token = next(self._call_counter)
        plane = ShmDataPlane()
        try:
            payload = {
                "x": plane.share(call["X"]),
                "y": plane.share(call["y"]),
                "splitter": call["splitter"],
                "metric": call["metric"],
                "policy": call["policy"],
                "fault_plan": call.get("fault_plan"),
                "cache_size": call.get("cache_size", 0),
                "store": call.get("store"),
                "data_ref": call.get("data_ref"),
                "compile": call.get("compile", False),
                "client": call.get("client"),
            }
            stats["shm_bytes"] = plane.nbytes
            completed = self._dispatch(token, batches, payload, stats)
        finally:
            plane.close()
        records = [
            record
            for index in range(len(batches))
            for record in completed[index]
        ]
        return records, stats

    # -- dispatch loop ------------------------------------------------------
    def _kill_if_dispatch_fault(self, worker: _Worker, batch_index: int) -> bool:
        """Consult the parent-side fault hook; on an injected crash,
        terminate the worker and report True (the batch stays pending)."""
        if self.fault_injector is None:
            return False
        try:
            self.fault_injector.check(
                "procpool.dispatch",
                worker=worker.name,
                batch=str(batch_index),
            )
        except Exception as exc:
            if _is_injected_crash(exc):
                worker.process.terminate()
                worker.process.join(timeout=5.0)
                return True
            raise
        return False

    def _dispatch(
        self,
        token: Any,
        batches: List[List[Any]],
        payload: Dict[str, Any],
        stats: Dict[str, Any],
    ) -> Dict[int, List[Dict[str, Any]]]:
        pending: deque = deque(range(len(batches)))
        in_flight: Dict[str, int] = {}
        completed: Dict[int, List[Dict[str, Any]]] = {}
        restarts = 0
        while len(completed) < len(batches):
            # hand pending batches to idle workers
            for worker in list(self._workers.values()):
                if not pending:
                    break
                if worker.name in in_flight:
                    continue
                batch_index = pending.popleft()
                if self._kill_if_dispatch_fault(worker, batch_index):
                    pending.appendleft(batch_index)
                    continue
                worker.task_queue.put(
                    ("batch", token, batch_index, batches[batch_index], payload)
                )
                in_flight[worker.name] = batch_index
                stats["batches_dispatched"] += 1
            # collect one message (or time out and reap the dead)
            try:
                message = self._result_queue.get(timeout=self.poll_interval)
            except queue_module.Empty:
                message = None
            if message is not None:
                kind = message[0]
                if kind == "result":
                    _, worker_name, batch_index, records, batch_stats = message
                    completed[batch_index] = records
                    in_flight.pop(worker_name, None)
                    busy = stats["worker_busy"]
                    busy[worker_name] = (
                        busy.get(worker_name, 0.0)
                        + batch_stats["busy_seconds"]
                    )
                    for counter, delta in batch_stats["cache"].items():
                        stats["cache"][counter] += delta
                    for tier, delta in batch_stats.get("tiers", {}).items():
                        totals = stats["tiers"].setdefault(tier, {})
                        for counter, value in delta.items():
                            totals[counter] = totals.get(counter, 0) + value
                    for counter, value in batch_stats.get(
                        "compile", {}
                    ).items():
                        stats["compile"][counter] = (
                            stats["compile"].get(counter, 0) + value
                        )
                    stats["results_reused"] += batch_stats.get(
                        "results_reused", 0
                    )
                    stats["faults_fired"] = max(
                        stats["faults_fired"], batch_stats["faults_fired"]
                    )
                elif kind == "fatal":
                    _, worker_name, batch_index, error = message
                    raise WorkerBatchError(
                        f"worker {worker_name} failed on batch "
                        f"{batch_index}: {error}"
                    )
            # quarantine dead workers; re-dispatch their in-flight work
            for worker in list(self._workers.values()):
                if worker.process.is_alive():
                    continue
                del self._workers[worker.name]
                lost = in_flight.pop(worker.name, None)
                if lost is not None and lost not in completed:
                    pending.appendleft(lost)
                if restarts < self.max_worker_restarts:
                    restarts += 1
                    stats["worker_restarts"] += 1
                    self._start_worker()
            if not self._workers and (pending or in_flight):
                raise NoHealthyWorkers(
                    f"all workers died with {len(pending) + len(in_flight)} "
                    "batch(es) outstanding and the restart budget "
                    f"({self.max_worker_restarts}) exhausted"
                )
        return completed
