"""Unified execution layer for Transformer-Estimator Graph evaluation.

Paper Section III observes that the job space of a graph "is generally
too large to exhaustively determine" and that parameter sweeps "can be
done via parallel invocations".  Before this module existed, each search
strategy hand-rolled its own serial loop over
:class:`~repro.core.evaluation.EvaluationJob` units and every job re-fit
the full pipeline per cross-validation fold — even when many pipelines
share a root→prefix of identical transformers (e.g. the Fig. 3 graph
fits every scaler 9 times per fold).

This module centralizes all of that:

* :class:`ExecutionPlan` — a lazily enumerated, key-deduplicated view of
  a job stream with the ``job_filter`` applied in exactly one place, and
  jobs groupable by shared fitted-transformer prefix.
* :class:`PrefixCache` — a size-bounded LRU of transformed fold data
  keyed by ``(prefix spec, dataset fingerprint, fold fingerprint)``;
  transformer chains shared by multiple paths are fitted once per fold
  and the transformed data reused by every downstream estimator.
* Pluggable executors: :class:`SerialExecutor` (in-order, in-process),
  :class:`ParallelExecutor` (thread-pool fan-out),
  :class:`~repro.core.procpool.ProcessExecutor` (GIL-free process
  fan-out over a shared-memory data plane), and
  :class:`DistributedExecutor` (adapter over
  :class:`repro.distributed.scheduler.DistributedScheduler`).
* :class:`ExecutionEngine` — owns the cache and the executor, runs jobs,
  and fires the ``result_hook`` (DARR publication) exactly once per
  fresh result.

Every evaluation front-end (:class:`~repro.core.evaluation.GraphEvaluator`,
the budgeted searches in :mod:`repro.core.search`, the cooperative
:class:`~repro.darr.coordinator.CooperativeEvaluator`) routes job
execution through an engine, so caching, filtering, and hooks behave
identically everywhere.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.core.compile import (
    CompiledGroup,
    CompiledPlan,
    estimator_fused_fit,
)
from repro.core.pipeline import Pipeline
from repro.core.spec import (
    component_spec,
    dataset_fingerprint,
    fold_fingerprint,
    pipeline_prefix_key,
    spec_key,
)
from repro.ml.base import as_1d_array, clone
from repro.obs import NULL_TELEMETRY, Telemetry, resolve_telemetry
from repro.provenance import (
    ContributionLedger,
    ProvenanceRecord,
    ProvenanceRegistry,
    as_client,
)
from repro.store import (
    KIND_FOLD_TRANSFORM,
    KIND_RESULT,
    ArtifactKey,
    resolve_store,
)
from repro.ml.model_selection.cross_validate import (
    CrossValidationResult,
    resolve_metric,
)
from repro.ml.model_selection.splits import KFold, resolve_splitter

__all__ = [
    "PrefixCache",
    "PrefixCacheStats",
    "ExecutionPlan",
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "AutoExecutor",
    "DistributedExecutor",
    "ExecutionEngine",
    "FailurePolicy",
    "JobFailure",
    "AllJobsFailed",
    "pipeline_prefix_key",
    "resolve_executor",
]


# ---------------------------------------------------------------------------
# Failure handling
# ---------------------------------------------------------------------------

class AllJobsFailed(RuntimeError):
    """Every job of a non-empty batch failed; there is no result to
    degrade to, so the sweep cannot return a best path."""


@dataclass(frozen=True)
class JobFailure:
    """Structured record of one job that exhausted its failure policy."""

    key: str
    path: str
    attempts: int
    error: str

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict form, as stored on ``EvaluationReport.stats``."""
        return {
            "key": self.key,
            "path": self.path,
            "attempts": self.attempts,
            "error": self.error,
        }


class FailurePolicy:
    """What the engine does when a job raises.

    Parameters
    ----------
    on_error:
        ``"raise"`` (default) — propagate the first failure, aborting
        the batch (the pre-fault-tolerance behaviour).
        ``"skip"`` — record a :class:`JobFailure` and move on; the
        sweep selects among the jobs that completed.
        ``"retry"`` — re-run the failing job up to ``max_retries``
        times with exponential backoff, then skip-and-record if it
        still fails.
    max_retries:
        Retry budget per job; defaults to ``2`` for ``on_error="retry"``
        and ``0`` otherwise.
    backoff_base:
        First retry delay in seconds (``0.0`` disables sleeping, which
        tests use; real deployments keep a small positive base).
    backoff_factor:
        Multiplier applied per additional retry.
    jitter:
        Fractional jitter: each delay is scaled by ``1 + jitter * u``
        with ``u`` in ``[0, 1)`` derived *deterministically* from the
        policy seed, the job key and the attempt number — no global RNG
        and no wall-clock dependence, so retry schedules replay exactly.
    seed:
        Seed folded into the jitter hash.
    sleep:
        Injectable clock: the callable invoked with each delay
        (defaults to :func:`time.sleep`; tests pass a recorder).
    """

    def __init__(
        self,
        on_error: str = "raise",
        max_retries: Optional[int] = None,
        backoff_base: float = 0.05,
        backoff_factor: float = 2.0,
        jitter: float = 0.25,
        seed: int = 0,
        sleep: Optional[Callable[[float], None]] = None,
    ):
        if on_error not in ("raise", "skip", "retry"):
            raise ValueError(
                "on_error must be 'raise', 'skip' or 'retry', got "
                f"{on_error!r}"
            )
        if max_retries is None:
            max_retries = 2 if on_error == "retry" else 0
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if on_error != "retry" and max_retries:
            raise ValueError(
                "max_retries only applies to on_error='retry'"
            )
        if backoff_base < 0 or backoff_factor < 1.0 or jitter < 0:
            raise ValueError(
                "backoff_base must be >= 0, backoff_factor >= 1.0 and "
                "jitter >= 0"
            )
        self.on_error = on_error
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_factor = backoff_factor
        self.jitter = jitter
        self.seed = seed
        self.sleep = sleep if sleep is not None else time.sleep

    @classmethod
    def resolve(cls, spec: Any) -> "FailurePolicy":
        """Coerce ``spec`` into a policy: ``None`` → default raise
        policy, a policy → itself, a string → ``on_error`` shorthand."""
        if spec is None:
            return cls()
        if isinstance(spec, cls):
            return spec
        if isinstance(spec, str):
            return cls(on_error=spec)
        raise TypeError(
            f"cannot interpret {spec!r} as a FailurePolicy; expected "
            "None, a FailurePolicy, or 'raise'/'skip'/'retry'"
        )

    def backoff_seconds(self, key: str, attempt: int) -> float:
        """Deterministic delay before retry number ``attempt`` (1-based)
        of the job identified by ``key``."""
        if self.backoff_base <= 0:
            return 0.0
        digest = hashlib.sha256(
            f"{self.seed}:{key}:{attempt}".encode()
        ).digest()
        u = int.from_bytes(digest[:8], "big") / 2**64
        delay = self.backoff_base * self.backoff_factor ** (attempt - 1)
        return delay * (1.0 + self.jitter * u)


# ---------------------------------------------------------------------------
# Prefix identity
# ---------------------------------------------------------------------------

# Kept as private aliases: the canonical definitions moved to
# repro.core.spec so artifact keys, the engine and the plan compiler
# agree on fold and prefix identity.
_fold_fingerprint = fold_fingerprint
_pipeline_prefix_key = pipeline_prefix_key


# ---------------------------------------------------------------------------
# Prefix cache
# ---------------------------------------------------------------------------

@dataclass
class PrefixCacheStats:
    """Counters for one :class:`PrefixCache`."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    transformer_fits_saved: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, Any]:
        """All counters plus the derived hit rate, as a plain dict."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "transformer_fits_saved": self.transformer_fits_saved,
            "hit_rate": self.hit_rate,
        }


class PrefixCache:
    """Facade caching transformed fold data in an
    :class:`~repro.store.base.ArtifactStore`.

    Keys are :class:`~repro.store.keys.ArtifactKey` instances of kind
    ``fold-transform``; values are the ``(X_train_transformed,
    X_test_transformed)`` arrays produced by fitting the prefix chain on
    the fold's training split.  The default backing store is a fresh
    :class:`~repro.store.memory.MemoryStore` — the historical in-memory
    LRU behavior — but any store works: backed by a disk or layered
    store, the same fold data is shared by serial, thread **and**
    process executors (workers reach the shared tiers by path).

    The facade keeps its own :class:`PrefixCacheStats` — one hit/miss
    per *lookup* regardless of how many tiers were probed — while the
    per-tier counters live on the store (see :meth:`tier_stats`).
    Thread-safe.

    Parameters
    ----------
    max_entries:
        LRU bound (≥ 1) used when the facade creates its own memory
        store; advisory for externally provided stores.
    store:
        Optional :class:`~repro.store.base.ArtifactStore` to back the
        cache instead of a private memory store.
    """

    def __init__(self, max_entries: int = 32, store: Any = None):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        if store is None:
            from repro.store import MemoryStore

            store = MemoryStore(max_entries=max_entries)
        self.store = store
        self._lock = threading.Lock()
        self.stats = PrefixCacheStats()

    def _tier_totals(self) -> Tuple[int, int]:
        """Cumulative ``(stores, evictions)`` summed across tiers."""
        stores = evictions = 0
        for tier in self.store.counters().values():
            stores += tier.stores
            evictions += tier.evictions
        return stores, evictions

    def get(self, key: ArtifactKey) -> Optional[Tuple[Any, Any]]:
        """Transformed ``(X_train, X_test)`` for ``key`` or ``None``."""
        with self._lock:
            before = self._tier_totals()
            entry = self.store.get(key)
            after = self._tier_totals()
            # read-through promotion may evict from a fast tier
            self.stats.evictions += after[1] - before[1]
            if entry is None:
                self.stats.misses += 1
                return None
            self.stats.hits += 1
            self.stats.transformer_fits_saved += entry[2]
            return entry[0], entry[1]

    def put(
        self,
        key: ArtifactKey,
        value: Tuple[Any, Any],
        n_transformers: int = 1,
        provenance: Any = None,
    ) -> None:
        """Store one fold's transformed data (idempotent per key)."""
        with self._lock:
            before = self._tier_totals()
            self.store.put(
                key,
                (value[0], value[1], n_transformers),
                provenance=provenance,
            )
            after = self._tier_totals()
            if after[0] > before[0]:
                self.stats.stores += 1
            self.stats.evictions += after[1] - before[1]

    def tier_stats(self) -> Dict[str, Dict[str, Any]]:
        """Per-tier counters of the backing store."""
        return self.store.tier_stats()

    def clear(self) -> None:
        """Drop every entry (the counters are kept)."""
        self.store.clear()

    def __len__(self) -> int:
        return len(self.store)


# ---------------------------------------------------------------------------
# Execution plan
# ---------------------------------------------------------------------------

class ExecutionPlan:
    """A lazily enumerated, deduplicated, filtered job stream.

    Wraps any iterable of :class:`~repro.core.evaluation.EvaluationJob`:

    * duplicates (same spec key) are dropped,
    * the ``job_filter`` predicate is applied **once** per unique job
      (important when the filter has side effects, e.g. DARR claims),
    * jobs can be grouped by shared transformer prefix so executions
      with a small cache stay cache-hot.

    Iteration is lazy and restartable; nothing is pulled from the source
    until a consumer asks for it.

    Parameters
    ----------
    jobs:
        Source iterable of :class:`~repro.core.evaluation.EvaluationJob`.
    job_filter:
        Optional predicate; jobs for which it returns False are dropped
        (counted in :attr:`n_filtered`).  Called once per unique key.
    """

    def __init__(
        self,
        jobs: Iterable[Any],
        job_filter: Optional[Callable[[Any], bool]] = None,
    ):
        self._source = iter(jobs)
        self.job_filter = job_filter
        self._runnable: List[Any] = []
        self._by_key: Dict[str, Any] = {}
        self._prefix_keys: Dict[str, Optional[str]] = {}
        self._n_duplicates = 0
        self._n_filtered = 0
        self._exhausted = False

    def _pull(self) -> None:
        try:
            job = next(self._source)
        except StopIteration:
            self._exhausted = True
            return
        if job.key in self._by_key:
            self._n_duplicates += 1
            return
        self._by_key[job.key] = job
        if self.job_filter is not None and not self.job_filter(job):
            self._n_filtered += 1
            return
        self._runnable.append(job)

    def _materialize(self) -> None:
        while not self._exhausted:
            self._pull()

    def __iter__(self) -> Iterator[Any]:
        index = 0
        while True:
            while index >= len(self._runnable) and not self._exhausted:
                self._pull()
            if index >= len(self._runnable):
                return
            yield self._runnable[index]
            index += 1

    def jobs(self) -> List[Any]:
        """All runnable (deduplicated, filter-passing) jobs."""
        self._materialize()
        return list(self._runnable)

    def jobs_by_key(self) -> Dict[str, Any]:
        """Every unique enumerated job keyed by spec key — including jobs
        the filter rejected (callers refit winners that were computed
        elsewhere, e.g. merged from a DARR)."""
        self._materialize()
        return dict(self._by_key)

    def prefix_key(self, job: Any) -> Optional[str]:
        """Memoized configured-prefix key of ``job``."""
        cached = self._prefix_keys.get(job.key, _UNSET)
        if cached is _UNSET:
            cached = pipeline_prefix_key(job.configured_pipeline())
            self._prefix_keys[job.key] = cached
        return cached

    def groups(self) -> "OrderedDict[Optional[str], List[Any]]":
        """Runnable jobs grouped by shared prefix, in first-seen order.

        Executing group-by-group keeps at most one prefix's folds live in
        the cache at a time, so even a small LRU bound avoids thrash on
        dense graphs (many estimators per scaler chain).
        """
        self._materialize()
        grouped: "OrderedDict[Optional[str], List[Any]]" = OrderedDict()
        for job in self._runnable:
            grouped.setdefault(self.prefix_key(job), []).append(job)
        return grouped

    @property
    def n_jobs(self) -> int:
        """Unique jobs that passed the filter (the runnable set)."""
        self._materialize()
        return len(self._runnable)

    @property
    def n_filtered(self) -> int:
        """Unique jobs the ``job_filter`` rejected."""
        self._materialize()
        return self._n_filtered

    @property
    def n_duplicates(self) -> int:
        """Enumerated jobs dropped because their spec key was already seen."""
        self._materialize()
        return self._n_duplicates


_UNSET = object()


# ---------------------------------------------------------------------------
# Executors
# ---------------------------------------------------------------------------

class Executor:
    """Strategy for running a batch of prepared job thunks.

    ``run`` receives the ordered job list and a ``run_one`` callable;
    implementations must return results in job order (determinism is a
    contract: serial and parallel execution produce identical reports).
    """

    name = "executor"

    def run(
        self, jobs: Sequence[Any], run_one: Callable[[Any], Any]
    ) -> List[Any]:
        """Execute ``run_one`` over ``jobs``; results in job order."""
        raise NotImplementedError

    def select(self, n_jobs: int) -> "Executor":
        """The executor to actually use for a batch of ``n_jobs`` jobs.

        Fixed executors return themselves; :class:`AutoExecutor`
        overrides this with a cost model.  The engine routes every batch
        through the selected executor's capabilities (``run`` vs
        ``run_call``).
        """
        return self

    def observe(self, n_jobs: int, elapsed: float) -> None:
        """Feedback after a batch: ``n_jobs`` took ``elapsed`` seconds.

        No-op for fixed executors; adaptive executors update their cost
        model here.
        """


class SerialExecutor(Executor):
    """Run jobs one after another in the calling thread."""

    name = "serial"

    def run(self, jobs, run_one):
        """Execute every job in order on the calling thread."""
        return [run_one(job) for job in jobs]


class ParallelExecutor(Executor):
    """Fan jobs out over a thread pool.

    The numeric kernels release the GIL inside numpy, so shared-memory
    threads already overlap the BLAS/ufunc work without any pickling of
    pipelines or fold data.  Results are gathered in submission order,
    so rankings match :class:`SerialExecutor` exactly.

    Parameters
    ----------
    max_workers:
        Thread count; default ``min(8, cpu_count)``, never more than
        the number of jobs.
    """

    name = "parallel"

    def __init__(self, max_workers: Optional[int] = None):
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers

    def run(self, jobs, run_one):
        """Execute jobs on a thread pool; results in submission order."""
        jobs = list(jobs)
        if len(jobs) <= 1:
            return [run_one(job) for job in jobs]
        import os
        from concurrent.futures import ThreadPoolExecutor

        workers = self.max_workers or min(8, os.cpu_count() or 2)
        workers = max(1, min(workers, len(jobs)))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(run_one, jobs))


class AutoExecutor(Executor):
    """Cost-aware executor selection: parallelize only when it can pay.

    Process fan-out carries real fixed costs — pool spin-up, pickling,
    shared-memory setup — that dwarf the work of a small or cheap batch;
    the executor-scaling benchmark shows parallel executors *losing* to
    serial on boxes with few cores.  ``AutoExecutor`` keeps an
    exponentially-weighted estimate of per-job cost from observed
    batches and degrades to serial (fused) execution unless **all** of
    the following hold:

    * the machine has at least ``min_cores`` CPU cores,
    * the batch has at least ``min_jobs`` jobs, and
    * the measured per-job cost predicts at least
      ``min_parallel_seconds`` of serial work in the batch.

    The first batch of a fresh instance therefore always runs serially —
    that run measures per-job cost for later selections.  Whatever is
    chosen, results are identical: every executor honours the engine's
    determinism contract.

    Parameters
    ----------
    max_workers:
        Worker count for the process pool when one is selected.
    min_jobs:
        Smallest batch worth fanning out (default 4).
    min_cores:
        Smallest core count worth fanning out on (default 4).
    min_parallel_seconds:
        Predicted serial batch seconds below which serial wins
        (default 2.0 — roughly pool spin-up plus dispatch overhead).
    """

    name = "auto"

    def __init__(
        self,
        max_workers: Optional[int] = None,
        min_jobs: int = 4,
        min_cores: int = 4,
        min_parallel_seconds: float = 2.0,
    ):
        if min_jobs < 1 or min_cores < 1:
            raise ValueError("min_jobs and min_cores must be >= 1")
        if min_parallel_seconds < 0:
            raise ValueError("min_parallel_seconds must be >= 0")
        self.max_workers = max_workers
        self.min_jobs = min_jobs
        self.min_cores = min_cores
        self.min_parallel_seconds = min_parallel_seconds
        #: EWMA of observed seconds per job (``None`` until measured).
        self.per_job_seconds: Optional[float] = None
        #: Name of the executor the last ``select`` chose.
        self.last_choice = "serial"
        self._serial = SerialExecutor()
        self._pool: Optional[Executor] = None

    def select(self, n_jobs: int) -> Executor:
        """Serial unless cores, batch size and measured cost all say the
        process pool can amortize its overhead."""
        import os

        cores = os.cpu_count() or 1
        if (
            cores >= self.min_cores
            and n_jobs >= self.min_jobs
            and self.per_job_seconds is not None
            and n_jobs * self.per_job_seconds >= self.min_parallel_seconds
        ):
            if self._pool is None:
                from repro.core.procpool import ProcessExecutor

                self._pool = ProcessExecutor(max_workers=self.max_workers)
            self.last_choice = self._pool.name
            return self._pool
        self.last_choice = "serial"
        return self._serial

    def observe(self, n_jobs: int, elapsed: float) -> None:
        """Fold one finished batch into the per-job cost estimate."""
        if n_jobs <= 0:
            return
        per_job = elapsed / n_jobs
        if self.per_job_seconds is None:
            self.per_job_seconds = per_job
        else:
            self.per_job_seconds = (
                0.5 * self.per_job_seconds + 0.5 * per_job
            )

    def run(self, jobs, run_one):
        """Direct use without the engine's selection step: run serially
        (the conservative choice the cost model starts from)."""
        return self._serial.run(jobs, run_one)

    def shutdown(self) -> None:
        """Stop the process pool, if one was ever started."""
        if self._pool is not None and hasattr(self._pool, "shutdown"):
            self._pool.shutdown()


class _EngineJobRunner:
    """Evaluator-shaped shim handed to the distributed scheduler: its
    ``run_job`` ignores the data arguments (the engine closure already
    carries them) and routes into the engine."""

    def __init__(self, run_one: Callable[[Any], Any]):
        self._run_one = run_one

    def run_job(self, job: Any, X: Any, y: Any) -> Any:
        return self._run_one(job)


class DistributedExecutor(Executor):
    """Adapter running engine jobs through a
    :class:`~repro.distributed.scheduler.DistributedScheduler`.

    The scheduler keeps its placement policy and simulated-makespan
    accounting; the engine keeps the prefix cache and hooks.  The most
    recent :class:`~repro.distributed.scheduler.ScheduleOutcome` is
    retained as ``last_outcome`` for inspection.

    Parameters
    ----------
    scheduler:
        A :class:`~repro.distributed.scheduler.DistributedScheduler`
        (or anything exposing ``execute(evaluator, jobs, X, y)``).
    """

    name = "distributed"

    def __init__(self, scheduler: Any):
        if not hasattr(scheduler, "execute"):
            raise TypeError(
                "scheduler must expose execute(evaluator, jobs, X, y)"
            )
        self.scheduler = scheduler
        self.last_outcome: Optional[Any] = None

    def run(self, jobs, run_one):
        """Fan jobs across the scheduler's nodes; results in job order."""
        outcome = self.scheduler.execute(
            _EngineJobRunner(run_one), list(jobs), None, None
        )
        self.last_outcome = outcome
        return list(outcome.results)


def resolve_executor(
    spec: Any = None, max_workers: Optional[int] = None
) -> Executor:
    """Resolve an executor from a name, an instance, or a scheduler.

    Parameters
    ----------
    spec:
        ``None``/``"serial"`` → :class:`SerialExecutor`;
        ``"auto"`` → :class:`AutoExecutor` (cost-aware: serial unless
        core count, batch size and measured per-job cost predict the
        process pool pays for itself);
        ``"parallel"``/``"threads"`` → :class:`ParallelExecutor`;
        ``"processes"``/``"process"`` →
        :class:`~repro.core.procpool.ProcessExecutor`;
        an :class:`Executor` instance passes through; a
        :class:`DistributedScheduler`-like object (has ``execute`` and
        ``nodes``) wraps into a :class:`DistributedExecutor`.
    max_workers:
        Thread count for the parallel executor / process count for the
        process executor (ignored otherwise).

    Returns
    -------
    An :class:`Executor` ready to hand to :class:`ExecutionEngine`.
    """
    if isinstance(spec, Executor):
        return spec
    if spec is None or spec == "serial":
        return SerialExecutor()
    if spec == "auto":
        return AutoExecutor(max_workers=max_workers)
    if spec in ("parallel", "threads"):
        return ParallelExecutor(max_workers=max_workers)
    if spec in ("processes", "process"):
        from repro.core.procpool import ProcessExecutor

        return ProcessExecutor(max_workers=max_workers)
    if hasattr(spec, "execute") and hasattr(spec, "nodes"):
        return DistributedExecutor(spec)
    raise ValueError(
        f"cannot interpret {spec!r} as an executor; expected None, "
        "'serial', 'auto', 'parallel' (alias 'threads'), 'processes' "
        "(alias 'process'), an Executor instance, or a "
        "DistributedScheduler"
    )


# ---------------------------------------------------------------------------
# Engine
# ---------------------------------------------------------------------------

@dataclass
class _ExecutionContext:
    """Per-call immutable evaluation settings shared by every job."""

    X: np.ndarray
    y: np.ndarray
    splitter: Any
    metric_name: str
    metric_fn: Callable[[np.ndarray, np.ndarray], float]
    greater_is_better: bool
    result_hook: Optional[Callable[[Any], None]] = None
    error_hook: Optional[Callable[[Any, BaseException], None]] = None
    reuse_hook: Optional[Callable[[Any], None]] = None
    #: Producer identity stamped into this call's provenance records
    #: (the serving layer passes the tenant; defaults to the engine's
    #: own client).
    producer: Any = None
    failure_policy: "FailurePolicy" = field(default_factory=FailurePolicy)
    failures: List[JobFailure] = field(default_factory=list)
    fallback_dataset_key: Optional[str] = None
    lock: threading.Lock = field(default_factory=threading.Lock)


class ExecutionEngine:
    """Run evaluation jobs through a pluggable executor with a shared
    fitted-prefix transform cache.

    Parameters
    ----------
    executor:
        ``"serial"`` (default), ``"parallel"`` (threads),
        ``"processes"`` (a
        :class:`~repro.core.procpool.ProcessExecutor` worker pool with
        a shared-memory data plane), an :class:`Executor` instance, or
        a :class:`~repro.distributed.scheduler.DistributedScheduler`
        (wrapped in a :class:`DistributedExecutor`).
    cache:
        ``True`` (default) for a fresh LRU :class:`PrefixCache`,
        ``False``/``None`` to disable prefix caching, or an existing
        :class:`PrefixCache` to share across engines.
    cache_size:
        LRU bound when the engine creates its own cache.
    max_workers:
        Thread count for ``executor="parallel"`` / process count for
        ``executor="processes"``.
    telemetry:
        ``None`` (default, zero-overhead no-op), a
        :class:`~repro.obs.Telemetry` handle, or a sink/sink list.  When
        enabled the engine emits ``engine.execute`` / ``engine.job`` /
        ``engine.fit_fold`` spans plus job, fold-time and prefix-cache
        counters, and propagates the handle to a wrapped
        :class:`~repro.distributed.scheduler.DistributedScheduler`.
    failure_policy:
        ``None`` (default: first failure aborts the batch, the
        historical behaviour), a :class:`FailurePolicy`, or the
        ``on_error`` shorthand string ``"raise"``/``"skip"``/``"retry"``.
        Under ``"skip"``/``"retry"`` failed jobs are recorded as
        :class:`JobFailure` entries (readable on :attr:`last_failures`
        after each batch) instead of raising, and the batch raises
        :class:`AllJobsFailed` only when *zero* jobs succeed.
    store:
        ``None`` (default: fold transforms live in the prefix cache's
        private memory store, results are never cached — the historical
        behavior), an :class:`~repro.store.base.ArtifactStore`, or a
        spec string (``"memory"``, ``"disk:<root>"``,
        ``"layered:<root>"``).  With a store the engine additionally
        caches **completed results** under their spec key and serves a
        repeat job from the store instead of recomputing it (counted in
        ``cache_stats()["results_reused"]``; the ``reuse_hook`` fires
        instead of the ``result_hook``).  A disk-backed store is shared
        by every executor — process workers attach to the same root —
        and across runs (warm starts).
    data_ref:
        Optional ``(data_object_name, version)`` of the
        :class:`~repro.distributed.objects.VersionedObject` the dataset
        came from; stamped into every artifact key so a version bump
        can invalidate exactly the artifacts computed on older data
        (see :class:`~repro.store.invalidation.StoreInvalidator`).
    compile:
        ``"auto"`` (default) — lower each batch through
        :class:`~repro.core.compile.CompiledPlan` before execution:
        transformer stages offering a
        :class:`~repro.ml.base.FusedStepKernel` run as fused array
        kernels, sibling jobs of a prefix group share each fold's
        transformed matrix at compute time, and estimators exposing
        ``fused_fit`` use their batched fit path.  ``False``/``None``
        runs every stage interpreted (the historical path).  Either way
        the computed results, artifact keys and cache counters are
        identical — compilation changes *how*, never *what*.
    client:
        This engine's producer identity (any string;
        ``None`` → ``anonymous``), coerced to a
        :class:`~repro.provenance.ClientId` and stamped into the
        provenance record of every artifact the engine writes.  A
        per-call identity (e.g. a serving tenant) can override it via
        ``execute(..., producer=...)``.
    provenance:
        ``True`` (default) — keep a
        :class:`~repro.provenance.ProvenanceRegistry` (attached to the
        engine's store) recording who/from-what produced every written
        artifact, plus a :class:`~repro.provenance.ContributionLedger`
        crediting reuse savings to the producers whose artifacts
        enabled them; an existing registry to share one across engines;
        ``False``/``None`` to disable tracking entirely (zero
        overhead, :attr:`provenance` and :attr:`ledger` are ``None``).
    """

    def __init__(
        self,
        executor: Any = "serial",
        cache: Any = True,
        cache_size: int = 32,
        max_workers: Optional[int] = None,
        telemetry: Any = None,
        failure_policy: Any = None,
        store: Any = None,
        data_ref: Optional[Tuple[str, int]] = None,
        compile: Any = "auto",
        client: Any = None,
        provenance: Any = True,
    ):
        self.executor = resolve_executor(executor, max_workers=max_workers)
        self.store = resolve_store(store, cache_size=cache_size)
        if isinstance(cache, PrefixCache):
            self.cache: Optional[PrefixCache] = cache
        elif cache:
            self.cache = PrefixCache(
                max_entries=cache_size, store=self.store
            )
        else:
            self.cache = None
        #: This engine's producer identity, stamped into provenance
        #: records (overridable per call via ``execute(producer=...)``).
        self.client = as_client(client)
        # Explicit identity check: an *empty* shared registry must still
        # enable tracking (ProvenanceRegistry is falsy at len 0).
        if provenance is not None and provenance is not False:
            attached = self._local_store()
            existing = (
                getattr(attached, "registry", None)
                if attached is not None
                else None
            )
            if isinstance(provenance, ProvenanceRegistry):
                self.provenance: Optional[ProvenanceRegistry] = provenance
            elif isinstance(existing, ProvenanceRegistry):
                # A shared store with a registry already attached (e.g.
                # another engine's) keeps it: engines sharing artifacts
                # share lineage, so reuse credits the real producer.
                self.provenance = existing
            else:
                self.provenance = ProvenanceRegistry()
            self.ledger: Optional[ContributionLedger] = ContributionLedger()
            if attached is not None:
                attached.attach_registry(self.provenance)
        else:
            self.provenance = None
            self.ledger = None
        self.data_ref = data_ref
        self.compile_spec = compile
        self._compile_enabled = compile not in (False, None, "off")
        self._compile_totals: Dict[str, int] = {
            "kernels_fused": 0,
            "stages_interpreted": 0,
            "jobs_batched": 0,
            "folds_shared": 0,
            "estimator_fused_fits": 0,
        }
        self._results_reused = 0
        #: Per-tier counter totals shipped back by process workers
        #: (worker-side tiers are rebuilt per call; their deltas fold in
        #: here so ``cache_stats()["tiers"]`` spans every executor).
        self._worker_tier_totals: Dict[str, Dict[str, float]] = {}
        self.failure_policy = FailurePolicy.resolve(failure_policy)
        #: Hook point for :class:`repro.faults.FaultInjector` (site
        #: ``engine.run_job``); ``None`` in production.
        self.fault_injector: Any = None
        #: :class:`JobFailure` records of the most recent batch.
        self.last_failures: List[JobFailure] = []
        self._telemetry = NULL_TELEMETRY
        self.telemetry = telemetry

    @property
    def telemetry(self) -> Telemetry:
        """The engine's telemetry handle (the no-op handle when off)."""
        return self._telemetry

    @telemetry.setter
    def telemetry(self, value: Any) -> None:
        """Attach a telemetry handle; an enabled handle is also pushed
        down to the wrapped scheduler (if the executor has one) and to
        the provenance registry (``provenance.*`` counters)."""
        self._telemetry = resolve_telemetry(value)
        if getattr(self, "provenance", None) is not None:
            self.provenance.telemetry = (
                self._telemetry if self._telemetry.enabled else None
            )
        scheduler = getattr(self.executor, "scheduler", None)
        if (
            self._telemetry.enabled
            and scheduler is not None
            and hasattr(scheduler, "telemetry")
            and not getattr(scheduler.telemetry, "enabled", False)
        ):
            scheduler.telemetry = self._telemetry

    @classmethod
    def resolve(cls, spec: Any = None) -> "ExecutionEngine":
        """Coerce ``spec`` into an engine: ``None`` → default serial
        engine, an engine → itself, anything else → executor spec."""
        if spec is None:
            return cls()
        if isinstance(spec, cls):
            return spec
        return cls(executor=spec)

    # -- public API ---------------------------------------------------------
    def execute(
        self,
        jobs: Any,
        X: Any,
        y: Any,
        *,
        cv: Any = None,
        metric: Any = "rmse",
        job_filter: Optional[Callable[[Any], bool]] = None,
        result_hook: Optional[Callable[[Any], None]] = None,
        error_hook: Optional[Callable[[Any, BaseException], None]] = None,
        reuse_hook: Optional[Callable[[Any], None]] = None,
        producer: Any = None,
    ) -> List[Any]:
        """Run a batch of jobs (an iterable or an :class:`ExecutionPlan`)
        and return their :class:`~repro.core.evaluation.PipelineResult`
        list in plan order (grouped by shared prefix).

        Jobs that exhaust the engine's :class:`FailurePolicy` are
        dropped from the returned list and recorded on
        :attr:`last_failures`; :class:`AllJobsFailed` is raised when a
        non-empty batch produced zero results.

        When the engine has a :attr:`store`, a job whose completed
        result is already stored is *reused*: it comes back flagged
        ``from_cache`` and fires ``reuse_hook`` (not ``result_hook``).

        ``producer`` overrides the engine's :attr:`client` as the
        identity stamped into this batch's provenance records (the
        serving layer passes the requesting tenant here).
        """
        plan = (
            jobs
            if isinstance(jobs, ExecutionPlan)
            else ExecutionPlan(jobs, job_filter=job_filter)
        )
        ctx = self._context(
            X, y, cv, metric, result_hook, error_hook, reuse_hook, producer
        )
        groups = plan.groups()
        ordered: List[Any] = []
        prefixes: Dict[str, Optional[str]] = {}
        for prefix, group in groups.items():
            for job in group:
                ordered.append(job)
                prefixes[job.key] = prefix
        tel = self._telemetry
        cache_before = self._cache_snapshot() if tel.enabled else {}
        active = self.executor.select(len(ordered))
        runs_engine_calls = getattr(active, "runs_engine_calls", False)
        # Process executors compile worker-side (their batches ship the
        # counter deltas back); compiling here too would double-count.
        compiled = (
            CompiledPlan(groups)
            if self._compile_enabled and not runs_engine_calls
            else None
        )

        def run_one(job: Any) -> Any:
            group = (
                compiled.group_for(job.key) if compiled is not None else None
            )
            try:
                return self._run(
                    job, ctx, prefixes.get(job.key, _UNSET), group
                )
            finally:
                if group is not None:
                    group.job_done()

        exec_started = time.perf_counter()
        with tel.span(
            "engine.execute",
            executor=active.name,
            n_jobs=len(ordered),
        ):
            if runs_engine_calls:
                results = self._run_process_call(ordered, ctx, metric, active)
            else:
                results = active.run(ordered, run_one)
        self.executor.observe(
            len(ordered), time.perf_counter() - exec_started
        )
        if compiled is not None:
            self._absorb_compile_counters(compiled.snapshot())
        results = [result for result in results if result is not None]
        # Failures append in completion order (thread-dependent under the
        # parallel executor); report them in plan order.
        position = {job.key: index for index, job in enumerate(ordered)}
        self.last_failures = sorted(
            ctx.failures, key=lambda f: position.get(f.key, len(position))
        )
        if tel.enabled:
            tel.count("engine.jobs_executed", len(ordered))
            tel.count("engine.jobs_filtered", plan.n_filtered)
            tel.count("engine.jobs_deduplicated", plan.n_duplicates)
            self._count_cache_delta(tel, cache_before)
        if ordered and not results and ctx.failures:
            raise AllJobsFailed(
                f"all {len(ctx.failures)} job(s) in the batch failed; "
                "nothing completed to select from (see "
                "ExecutionEngine.last_failures)"
            )
        return results

    def execute_job(
        self,
        job: Any,
        X: Any,
        y: Any,
        *,
        cv: Any = None,
        metric: Any = "rmse",
        result_hook: Optional[Callable[[Any], None]] = None,
        error_hook: Optional[Callable[[Any, BaseException], None]] = None,
        reuse_hook: Optional[Callable[[Any], None]] = None,
        producer: Any = None,
    ) -> Any:
        """Run one job in the calling thread (still cache-aware).

        Returns ``None`` when the job fails and the engine's
        :class:`FailurePolicy` says to skip it (the :class:`JobFailure`
        lands on :attr:`last_failures`).
        """
        ctx = self._context(
            X, y, cv, metric, result_hook, error_hook, reuse_hook, producer
        )
        result = self._run(job, ctx, _UNSET)
        self.last_failures = list(ctx.failures)
        return result

    def cache_stats(self) -> Dict[str, Any]:
        """Cache-effectiveness report (all zeros when caching is off).

        Beyond the historical prefix-cache counters the report carries
        ``results_reused`` (completed results served from the
        :attr:`store` instead of recomputed) and — whenever a store or
        cache is live — a per-tier ``tiers`` breakdown
        (hits/misses/stores/evictions/bytes per memory/disk/darr tier,
        including counters shipped back by process workers).
        """
        if self.cache is None:
            stats = {"enabled": False, **PrefixCacheStats().as_dict()}
        else:
            stats = {
                "enabled": True,
                "entries": len(self.cache),
                "max_entries": self.cache.max_entries,
                **self.cache.stats.as_dict(),
            }
        stats["results_reused"] = self._results_reused
        if self.provenance is not None:
            stats["provenance_records"] = len(self.provenance)
        tiers = self._merged_tier_stats()
        if tiers:
            stats["tiers"] = tiers
        return stats

    def compile_stats(self) -> Dict[str, Any]:
        """Cumulative plan-compilation counters.

        ``kernels_fused`` / ``stages_interpreted`` count transformer
        stages per compiled prefix group; ``jobs_batched`` counts jobs
        that shared a multi-job prefix group; ``folds_shared`` counts
        fold transforms served from a sibling's in-flight computation;
        ``estimator_fused_fits`` counts estimator fits routed through a
        batched ``fused_fit`` kernel.  All zero when compilation is
        disabled.  Process workers compile their own batches and ship
        their counter deltas back, so the totals span every executor.
        """
        return {"enabled": self._compile_enabled, **self._compile_totals}

    #: Compile counters always emitted as telemetry per execute (the
    #: remaining counters are emitted only when they moved).
    _COMPILE_HEADLINE = ("kernels_fused", "jobs_batched", "stages_interpreted")

    def _absorb_compile_counters(self, counters: Mapping[str, int]) -> None:
        """Fold one execute's compile counters (local snapshot or worker
        delta) into the engine totals and telemetry."""
        tel = self._telemetry
        for name in self._compile_totals:
            value = int(counters.get(name, 0))
            self._compile_totals[name] += value
            if tel.enabled and (value or name in self._COMPILE_HEADLINE):
                tel.count(f"engine.{name}", value)

    def _local_store(self) -> Optional[Any]:
        """The store backing this engine's artifacts (the explicit
        :attr:`store`, else the prefix cache's private store)."""
        if self.store is not None:
            return self.store
        if self.cache is not None:
            return self.cache.store
        return None

    def _merged_tier_stats(self) -> Dict[str, Dict[str, Any]]:
        """Local per-tier counters plus accumulated worker deltas."""
        store = self._local_store()
        merged: Dict[str, Dict[str, Any]] = (
            {name: dict(counters) for name, counters in store.tier_stats().items()}
            if store is not None
            else {}
        )
        for name, delta in self._worker_tier_totals.items():
            into = merged.setdefault(name, {})
            for counter, value in delta.items():
                into[counter] = into.get(counter, 0) + value
            total = into.get("hits", 0) + into.get("misses", 0)
            into["hit_rate"] = into.get("hits", 0) / total if total else 0.0
        return merged

    def clear_cache(self) -> None:
        """Empty the prefix cache and any attached store (a fresh
        dataset makes old folds dead; note this clears shared/disk
        tiers too — prefer version-based invalidation for those)."""
        if self.cache is not None:
            self.cache.clear()
        if self.store is not None:
            self.store.clear()

    def _cache_snapshot(self) -> Dict[str, Any]:
        """Current cumulative cache/store counters (used to attribute
        per-``execute`` deltas to telemetry)."""
        snapshot: Dict[str, Any] = {
            "results_reused": self._results_reused,
            "tiers": self._merged_tier_stats(),
        }
        if self.cache is not None:
            stats = self.cache.stats
            snapshot["cache"] = (
                stats.hits,
                stats.misses,
                stats.evictions,
                stats.transformer_fits_saved,
            )
        return snapshot

    #: Tier counters surfaced as labeled telemetry (key = tier name).
    _TIER_COUNTER_NAMES = (
        ("hits", "store.tier_hits"),
        ("misses", "store.tier_misses"),
        ("evictions", "store.tier_evictions"),
        ("invalidations", "store.tier_invalidations"),
        ("corrupt", "store.tier_corrupt"),
        ("bytes_written", "store.tier_bytes_written"),
        ("bytes_read", "store.tier_bytes_read"),
    )

    def _count_cache_delta(
        self, tel: Telemetry, before: Dict[str, Any]
    ) -> None:
        """Emit the cache/store counter movement since ``before`` as
        telemetry counters (no-op when nothing moved)."""
        after = self._cache_snapshot()
        if "cache" in after and "cache" in before:
            names = (
                "engine.cache_hits",
                "engine.cache_misses",
                "engine.cache_evictions",
                "engine.transformer_fits_saved",
            )
            for name, b, a in zip(names, before["cache"], after["cache"]):
                if a > b:
                    tel.count(name, a - b)
        reused = after["results_reused"] - before["results_reused"]
        if reused > 0:
            tel.count("engine.results_reused", reused)
        tiers_before = before.get("tiers", {})
        for tier, counters in after.get("tiers", {}).items():
            prior = tiers_before.get(tier, {})
            for counter, metric_name in self._TIER_COUNTER_NAMES:
                delta = counters.get(counter, 0) - prior.get(counter, 0)
                if delta > 0:
                    tel.count(metric_name, delta, key=tier)

    # -- internals ----------------------------------------------------------
    def _context(
        self,
        X,
        y,
        cv,
        metric,
        result_hook,
        error_hook,
        reuse_hook=None,
        producer=None,
    ) -> _ExecutionContext:
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(-1, 1)
        if X.ndim not in (2, 3):
            raise ValueError(
                f"X must be 1-D, 2-D or 3-D, got ndim={X.ndim}"
            )
        y = as_1d_array(y)
        if len(X) != len(y):
            raise ValueError("X and y have inconsistent lengths")
        splitter = KFold(5) if cv is None else resolve_splitter(cv)
        name, fn, greater = resolve_metric(metric)
        return _ExecutionContext(
            X=X,
            y=y,
            splitter=splitter,
            metric_name=name,
            metric_fn=fn,
            greater_is_better=greater,
            result_hook=result_hook,
            error_hook=error_hook,
            reuse_hook=reuse_hook,
            producer=(
                as_client(producer) if producer is not None else self.client
            ),
            failure_policy=self.failure_policy,
        )

    def _dataset_key(self, ctx: _ExecutionContext, job: Any) -> str:
        spec = job.spec if isinstance(job.spec, Mapping) else {}
        dataset = spec.get("dataset")
        if dataset:
            return dataset
        with ctx.lock:
            if ctx.fallback_dataset_key is None:
                ctx.fallback_dataset_key = dataset_fingerprint(ctx.X, ctx.y)
            return ctx.fallback_dataset_key

    def _artifact_key(
        self, kind: str, spec_key_str: str, dataset: str = "", fold: str = ""
    ) -> ArtifactKey:
        """Build a store key carrying this engine's data reference."""
        name, version = self.data_ref if self.data_ref else ("", 0)
        return ArtifactKey(
            kind=kind,
            spec_key=spec_key_str,
            dataset=dataset,
            data_object=name,
            data_version=version,
            fold=fold,
        )

    def _provenance_for(
        self,
        key: ArtifactKey,
        ctx: _ExecutionContext,
        parents: Tuple[str, ...] = (),
        executor: str = "interpreted",
    ) -> Optional[ProvenanceRecord]:
        """The provenance record for an artifact this call produced
        (``None`` when tracking is off — put sites stay zero-cost)."""
        if self.provenance is None:
            return None
        return ProvenanceRecord.for_key(
            key,
            producer=ctx.producer,
            parents=parents,
            executor=executor,
            tick=self.provenance.tick(),
        )

    def _credit_reuse(
        self, result_key: Any, fits_saved: int, bytes_saved: int = 0
    ) -> None:
        """Credit one result-reuse event to the producers whose
        artifacts enabled it (the reused result's recorded lineage;
        ``anonymous`` when no provenance is known)."""
        if self.ledger is None:
            return
        producers: List[Any] = []
        if self.provenance is not None:
            producers = [
                rec.producer for _, rec in self.provenance.lineage(result_key)
            ]
        self.ledger.credit(
            producers, fits_saved=fits_saved, bytes_saved=bytes_saved
        )

    @staticmethod
    def _result_artifact(result: Any) -> Dict[str, Any]:
        """The canonical ``result`` artifact payload of one completed
        job (same format as
        :meth:`repro.darr.records.AnalyticsResult.artifact_value`)."""
        cv = result.cv_result
        return {
            "path": result.path,
            "params": dict(result.params),
            "metric": cv.metric,
            "fold_scores": [float(s) for s in cv.fold_scores],
            "greater": cv.greater_is_better,
            "fit_seconds": float(cv.fit_seconds),
        }

    @staticmethod
    def _result_from_artifact(job: Any, value: Mapping[str, Any]) -> Any:
        """Rebuild a ``from_cache`` PipelineResult from a stored
        ``result`` artifact payload."""
        from repro.core.evaluation import PipelineResult

        cv_result = CrossValidationResult(
            metric=value["metric"],
            fold_scores=list(value["fold_scores"]),
            greater_is_better=value["greater"],
            fit_seconds=float(value.get("fit_seconds", 0.0)),
        )
        return PipelineResult(
            path=value["path"],
            params=dict(value["params"]),
            cv_result=cv_result,
            key=job.key,
            from_cache=True,
        )

    def _run(
        self,
        job: Any,
        ctx: _ExecutionContext,
        prefix_key: Any,
        group: Optional[CompiledGroup] = None,
    ) -> Any:
        """Run one job under the failure policy.

        Retries transient failures per the policy; on final failure
        fires the ``error_hook`` exactly once, then either re-raises
        (``on_error="raise"``) or records a :class:`JobFailure` and
        returns ``None`` so the batch keeps going.
        """
        policy = ctx.failure_policy
        tel = self._telemetry
        attempts = 0
        while True:
            attempts += 1
            try:
                return self._run_inner(job, ctx, prefix_key, group)
            except Exception as exc:
                if attempts <= policy.max_retries:
                    tel.count("engine.job_retries")
                    delay = policy.backoff_seconds(job.key, attempts)
                    if delay > 0:
                        policy.sleep(delay)
                    continue
                if ctx.error_hook is not None:
                    ctx.error_hook(job, exc)
                if policy.on_error == "raise":
                    raise
                tel.count("engine.jobs_failed")
                with ctx.lock:
                    ctx.failures.append(
                        JobFailure(
                            key=job.key,
                            path=job.path,
                            attempts=attempts,
                            error=repr(exc),
                        )
                    )
                return None

    def _run_process_call(
        self,
        ordered: List[Any],
        ctx: _ExecutionContext,
        metric: Any,
        executor: Optional[Executor] = None,
    ) -> List[Any]:
        """Run a batch through a process executor's shared-memory call.

        The dataset crosses the process boundary once (shared-memory
        blocks), jobs go out in size-balanced batches, and the failure
        policy executes worker-side; the compact records that come back
        are rebuilt into :class:`~repro.core.evaluation.PipelineResult`
        objects here, where the ``result_hook`` / ``error_hook`` fire
        exactly once per job, in plan order.  Per-worker prefix-cache
        deltas merge into this engine's cache counters so
        ``report.stats["cache"]`` and the ``engine.cache_*`` telemetry
        stay comparable across executors.
        """
        policy = ctx.failure_policy
        call = {
            "X": ctx.X,
            "y": ctx.y,
            "splitter": ctx.splitter,
            "metric": metric,
            "policy": {
                "on_error": policy.on_error,
                "max_retries": policy.max_retries,
                "backoff_base": policy.backoff_base,
                "backoff_factor": policy.backoff_factor,
                "jitter": policy.jitter,
                "seed": policy.seed,
            },
            "fault_plan": getattr(self.fault_injector, "plan", None),
            "cache_size": (
                self.cache.max_entries if self.cache is not None else 0
            ),
            "store": self.store.spec() if self.store is not None else None,
            "data_ref": self.data_ref,
            "compile": self.compile_spec if self._compile_enabled else False,
            "client": str(ctx.producer) if ctx.producer is not None else None,
        }
        if executor is None:
            executor = self.executor
        records, run_stats = executor.run_call(ordered, call)
        from repro.core.evaluation import PipelineResult
        from repro.core.procpool import WorkerJobError

        tel = self._telemetry
        results: List[Any] = []
        for job, record in zip(ordered, records):
            if record["ok"]:
                cv_result = CrossValidationResult(
                    metric=record["metric"],
                    fold_scores=list(record["fold_scores"]),
                    greater_is_better=record["greater"],
                    fit_seconds=record["fit_seconds"],
                )
                reused = bool(record.get("from_cache"))
                result = PipelineResult(
                    path=record["path"],
                    params=dict(record["params"]),
                    cv_result=cv_result,
                    key=record["key"],
                    from_cache=reused,
                )
                result_key = (
                    self._artifact_key(
                        KIND_RESULT,
                        job.key,
                        dataset=self._dataset_key(ctx, job),
                    )
                    if self.store is not None
                    else None
                )
                if reused:
                    self._results_reused += 1
                    if result_key is not None:
                        self._credit_reuse(
                            result_key, len(cv_result.fold_scores)
                        )
                    if ctx.reuse_hook is not None:
                        ctx.reuse_hook(result)
                else:
                    # Workers rebuild their own engine (and registry)
                    # per call; record the result's provenance parent-
                    # side too so lineage works without re-reading the
                    # shared tier.  First-write-wins keeps this from
                    # clobbering anything already learned.
                    if result_key is not None and self.provenance is not None:
                        self.provenance.record(
                            result_key,
                            ProvenanceRecord.for_key(
                                result_key,
                                producer=ctx.producer,
                                executor="processes",
                                tick=self.provenance.tick(),
                            ),
                        )
                    if ctx.result_hook is not None:
                        ctx.result_hook(result)
                results.append(result)
                continue
            exc = WorkerJobError(
                f"{record['path']} failed in worker after "
                f"{record['attempts']} attempt(s): {record['error']}"
            )
            if ctx.error_hook is not None:
                ctx.error_hook(job, exc)
            if policy.on_error == "raise":
                raise exc
            if record["attempts"] > 1:
                tel.count("engine.job_retries", record["attempts"] - 1)
            tel.count("engine.jobs_failed")
            ctx.failures.append(
                JobFailure(
                    key=record["key"],
                    path=record["path"],
                    attempts=record["attempts"],
                    error=record["error"],
                )
            )
            results.append(None)
        cache_delta = run_stats.get("cache") or {}
        if self.cache is not None and cache_delta:
            stats = self.cache.stats
            stats.hits += cache_delta.get("hits", 0)
            stats.misses += cache_delta.get("misses", 0)
            stats.stores += cache_delta.get("stores", 0)
            stats.evictions += cache_delta.get("evictions", 0)
            stats.transformer_fits_saved += cache_delta.get(
                "transformer_fits_saved", 0
            )
        shared = (
            {tier for tier in self.store.tier_stats()}
            if self.store is not None
            else set()
        )
        for tier, delta in (run_stats.get("tiers") or {}).items():
            if tier in shared:
                # Same tier name as a parent-side tier (e.g. the shared
                # disk root): keep worker-side IO under its own label so
                # the breakdown distinguishes who did the reading.
                tier = f"{tier}-workers"
            totals = self._worker_tier_totals.setdefault(tier, {})
            for counter, value in delta.items():
                if value:
                    totals[counter] = totals.get(counter, 0) + value
        if tel.enabled:
            tel.count("engine.shm_bytes_shared", run_stats.get("shm_bytes", 0))
            tel.count(
                "engine.batches_dispatched",
                run_stats.get("batches_dispatched", 0),
            )
            restarts = run_stats.get("worker_restarts", 0)
            if restarts:
                tel.count("engine.worker_restarts", restarts)
            for worker, busy in run_stats.get("worker_busy", {}).items():
                tel.count("engine.worker_busy_seconds", busy, key=worker)
        if self._compile_enabled:
            # Workers compile their own batches; their counter deltas
            # fold into the same totals local execution feeds.
            self._absorb_compile_counters(run_stats.get("compile") or {})
        return results

    def _run_inner(
        self,
        job: Any,
        ctx: _ExecutionContext,
        prefix_key: Any,
        group: Optional[CompiledGroup] = None,
    ) -> Any:
        if self.fault_injector is not None:
            self.fault_injector.check("engine.run_job", key=job.key)
        result_key = None
        if self.store is not None:
            result_key = self._artifact_key(
                KIND_RESULT, job.key, dataset=self._dataset_key(ctx, job)
            )
            stored = self.store.get(result_key)
            if stored is not None:
                result = self._result_from_artifact(job, stored)
                with ctx.lock:
                    self._results_reused += 1
                self._credit_reuse(
                    result_key, len(result.cv_result.fold_scores)
                )
                if self._telemetry.enabled:
                    self._telemetry.count(
                        "engine.folds_skipped",
                        len(result.cv_result.fold_scores),
                    )
                if ctx.reuse_hook is not None:
                    ctx.reuse_hook(result)
                return result
        pipeline = job.configured_pipeline()
        transformers = pipeline.transformer_steps
        if prefix_key is _UNSET:
            prefix_key = (
                pipeline_prefix_key(pipeline)
                if self.cache is not None
                else None
            )
        use_cache = (
            self.cache is not None
            and bool(transformers)
            and prefix_key is not None
        )
        dataset_key = self._dataset_key(ctx, job) if use_cache else None
        # Batching pays only while siblings are still outstanding and the
        # group has a real transformer prefix to share.
        memo_active = (
            group is not None
            and group.prefix_key is not None
            and bool(transformers)
        )
        chain = group.chain if group is not None else None
        executor_label = "compiled" if chain is not None else "interpreted"
        tel = self._telemetry
        timing = tel.enabled
        started = time.perf_counter()
        scores: List[float] = []
        # Fold-transform digests this job touched, in fold order: they
        # become the result artifact's provenance parents, linking the
        # final number back to the transformed data it was fit on.
        fold_digests: List[str] = []
        # A job may carry its own splitter (set as a ``cv_override``
        # attribute, e.g. by repro.streaming to pin a specific fold
        # subset); it replaces the context splitter for this job only.
        splitter = getattr(job, "cv_override", None) or ctx.splitter
        with tel.span(
            "engine.job", job_id=job.key, path=job.path, prefix=prefix_key
        ) as job_span:
            for train_idx, test_idx in splitter.split(len(ctx.X)):
                fold_started = time.perf_counter() if timing else 0.0
                y_train = ctx.y[train_idx]
                transformed = None
                cache_key = None
                fold_id = None
                if use_cache or memo_active:
                    fold_id = fold_fingerprint(train_idx, test_idx)
                if use_cache:
                    # The cache is consulted first even when the group
                    # memo would also hit, so hit/miss counters (and
                    # therefore report.stats["cache"]) match the
                    # interpreted path exactly.
                    cache_key = self._artifact_key(
                        KIND_FOLD_TRANSFORM,
                        prefix_key,
                        dataset=dataset_key,
                        fold=fold_id,
                    )
                    fold_digests.append(cache_key.digest)
                    transformed = self.cache.get(cache_key)
                if transformed is not None:
                    X_train, X_test = transformed
                else:
                    shared = (
                        group.memo_get(fold_id) if memo_active else None
                    )
                    if shared is not None:
                        X_train, X_test = shared
                    elif chain is not None and transformers:
                        X_train, X_test = chain.fit_transform_fold(
                            ctx.X[train_idx], y_train, ctx.X[test_idx]
                        )
                    else:
                        data = ctx.X[train_idx]
                        fitted: List[Any] = []
                        for _, component in transformers:
                            node = clone(component)
                            data = node.fit_transform(data, y_train)
                            fitted.append(node)
                        X_train = data
                        data = ctx.X[test_idx]
                        for node in fitted:
                            data = node.transform(data)
                        X_test = data
                    if memo_active and shared is None:
                        group.memo_put(fold_id, (X_train, X_test))
                    if use_cache:
                        # Stored even on a memo hit: the interpreted path
                        # would have recomputed and stored here too.
                        self.cache.put(
                            cache_key,
                            (X_train, X_test),
                            n_transformers=len(transformers),
                            provenance=self._provenance_for(
                                cache_key, ctx, executor=executor_label
                            ),
                        )
                transform_done = time.perf_counter() if timing else 0.0
                estimator = clone(pipeline.steps[-1][1])
                fused_fit = (
                    estimator_fused_fit(estimator)
                    if group is not None
                    else None
                )
                if fused_fit is not None:
                    fused_fit(X_train, y_train)
                    group.plan.count("estimator_fused_fits")
                else:
                    estimator.fit(X_train, y_train)
                predictions = estimator.predict(X_test)
                scores.append(
                    float(ctx.metric_fn(ctx.y[test_idx], predictions))
                )
                if timing:
                    fold_done = time.perf_counter()
                    tel.count("engine.folds")
                    tel.count(
                        "engine.transform_seconds",
                        transform_done - fold_started,
                    )
                    tel.count(
                        "engine.estimator_seconds", fold_done - transform_done
                    )
            job_span.annotate(folds=len(scores))
        if not scores:
            raise ValueError("splitter produced no folds")
        elapsed = time.perf_counter() - started
        if timing:
            tel.count("engine.job_seconds", elapsed)
        cv_result = CrossValidationResult(
            metric=ctx.metric_name,
            fold_scores=scores,
            greater_is_better=ctx.greater_is_better,
            fit_seconds=elapsed,
        )
        from repro.core.evaluation import PipelineResult

        result = PipelineResult(
            path=job.path,
            params=dict(job.params),
            cv_result=cv_result,
            key=job.key,
        )
        if result_key is not None:
            self.store.put(
                result_key,
                self._result_artifact(result),
                provenance=self._provenance_for(
                    result_key,
                    ctx,
                    parents=tuple(fold_digests),
                    executor=executor_label,
                ),
            )
        if ctx.result_hook is not None:
            ctx.result_hook(result)
        return result
