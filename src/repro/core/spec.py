"""Canonical, hashable computation specs.

The DARR (paper Section III, Fig. 2) must "keep track of all analytics
calculations that have been run for a particular data set" so clients
"can ... perform additional calculations which do not overlap with those
already stored".  That requires a *canonical identity* for a
calculation: the pipeline structure, its parameter setting, the
cross-validation strategy, the metric, and the dataset fingerprint.
This module produces that identity as a JSON document plus a stable
SHA-256 key.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Mapping, Optional

import numpy as np

from repro.core.pipeline import Pipeline

__all__ = [
    "component_spec",
    "pipeline_spec",
    "pipeline_prefix_key",
    "cv_spec",
    "computation_spec",
    "spec_key",
    "dataset_fingerprint",
    "fold_fingerprint",
]


def _jsonable(value: Any) -> Any:
    """Normalize a parameter value into a JSON-stable form."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return round(value, 12)
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return round(float(value), 12)
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, np.ndarray):
        return {"__ndarray__": _jsonable(value.tolist())}
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in sorted(value.items())}
    if hasattr(value, "get_params"):
        return component_spec(value)
    if callable(value):
        return {"__callable__": getattr(value, "__name__", repr(value))}
    return {"__repr__": repr(value)}


def component_spec(component: Any) -> Dict[str, Any]:
    """Spec of one component: class name + normalized parameters.

    Parameters
    ----------
    component:
        Any transformer/estimator exposing ``get_params`` (components
        without it spec as bare class names).

    Returns
    -------
    ``{"class": ..., "params": {...}}`` with JSON-stable values.
    """
    params: Dict[str, Any] = {}
    getter = getattr(component, "get_params", None)
    if callable(getter):
        params = {k: _jsonable(v) for k, v in sorted(getter().items())}
    return {"class": type(component).__name__, "params": params}


def pipeline_spec(pipeline: Pipeline) -> Dict[str, Any]:
    """Spec of a pipeline: the ordered named steps.

    Parameters
    ----------
    pipeline:
        The :class:`~repro.core.pipeline.Pipeline` to describe.

    Returns
    -------
    ``{"steps": [{"name", "class", "params"}, ...]}`` in step order.
    """
    return {
        "steps": [
            {"name": name, **component_spec(component)}
            for name, component in pipeline.steps
        ]
    }


def pipeline_prefix_key(pipeline: Pipeline) -> Optional[str]:
    """Canonical key of a pipeline's *configured* transformer prefix.

    Two pipelines share a key exactly when their transformer chains are
    the same classes with the same parameters in the same order — the
    condition under which fitting the chain on the same fold yields the
    same transformed data.  Step names are deliberately excluded: they
    carry no numeric meaning.  This key is both the prefix-cache slot
    (``spec_key`` of ``fold-transform`` artifact keys) and the unit the
    plan compiler batches sibling jobs under, so compiled and
    interpreted execution address identical artifacts.

    Parameters
    ----------
    pipeline:
        The pipeline whose transformer prefix identifies the cache slot.

    Returns
    -------
    A stable spec-key string, or ``None`` for estimator-only pipelines
    (nothing to cache).
    """
    transformers = pipeline.transformer_steps
    if not transformers:
        return None
    spec = {"prefix": [component_spec(c) for _, c in transformers]}
    return spec_key(spec)


def dataset_fingerprint(X: Any, y: Any = None) -> str:
    """Content fingerprint of a dataset (shape + value hash).

    Clients cooperating through the DARR must agree on what "the same
    data set" means; hashing the bytes of the arrays makes the agreement
    exact — any update to the data yields a new fingerprint and therefore
    a fresh set of calculations, which is precisely the recompute-on-
    change behaviour of Section III.

    Parameters
    ----------
    X:
        Feature array (anything ``np.asarray`` accepts).
    y:
        Optional target array, folded into the same digest.

    Returns
    -------
    A 32-hex-character content hash.
    """
    digest = hashlib.sha256()
    arr = np.ascontiguousarray(np.asarray(X, dtype=float))
    digest.update(str(arr.shape).encode())
    digest.update(arr.tobytes())
    if y is not None:
        y_arr = np.ascontiguousarray(np.asarray(y))
        digest.update(str(y_arr.shape).encode())
        digest.update(y_arr.tobytes())
    return digest.hexdigest()[:32]


def fold_fingerprint(train_idx: Any, test_idx: Any) -> str:
    """Exact content fingerprint of one CV fold's index arrays.

    Keying by the actual indices (rather than a fold number) makes
    fold-level artifacts safe under unseeded splitters: a shuffle that
    differs between two jobs produces different fingerprints and
    therefore no false sharing.

    Parameters
    ----------
    train_idx, test_idx:
        The fold's train/test index arrays.

    Returns
    -------
    A 24-hex-character content hash.
    """
    digest = hashlib.sha256()
    digest.update(np.ascontiguousarray(train_idx).tobytes())
    digest.update(b"|")
    digest.update(np.ascontiguousarray(test_idx).tobytes())
    return digest.hexdigest()[:24]


def cv_spec(cv: Any) -> Any:
    """Spec of a cross-validation strategy.

    A splitter instance becomes class + normalized constructor state;
    strings and ``None`` pass through.  Budgeted searches substitute
    this into an existing job spec to re-key the same calculation under
    a different CV budget.

    Parameters
    ----------
    cv:
        Splitter instance, strategy name string, or ``None``.

    Returns
    -------
    A JSON-stable spec value (dict, string or ``None``).
    """
    if cv is None or isinstance(cv, str):
        return cv
    cv_params = {
        k: _jsonable(v)
        for k, v in sorted(vars(cv).items())
        if not k.startswith("_")
    }
    return {"class": type(cv).__name__, "params": cv_params}


def computation_spec(
    pipeline: Pipeline,
    params: Optional[Mapping[str, Any]] = None,
    cv: Any = None,
    metric: Optional[str] = None,
    dataset: Optional[str] = None,
) -> Dict[str, Any]:
    """Full identity of one analytics calculation.

    Parameters
    ----------
    pipeline:
        The candidate pipeline.
    params:
        The ``name__param`` setting applied to it.
    cv:
        Splitter instance (specced by class + params) or plain string.
    metric:
        Metric name.
    dataset:
        Fingerprint from :func:`dataset_fingerprint`.

    Returns
    -------
    The spec document whose :func:`spec_key` is the DARR identity.
    """
    return {
        "pipeline": pipeline_spec(pipeline),
        "params": {k: _jsonable(v) for k, v in sorted((params or {}).items())},
        "cv": cv_spec(cv),
        "metric": metric,
        "dataset": dataset,
    }


def spec_key(spec: Mapping[str, Any]) -> str:
    """Stable SHA-256 key of a spec document (the DARR index key).

    Parameters
    ----------
    spec:
        A JSON-serializable spec document (see :func:`computation_spec`).

    Returns
    -------
    A 32-hex-character digest; identical specs always collide.
    """
    encoded = json.dumps(spec, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode()).hexdigest()[:32]
