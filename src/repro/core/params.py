"""Parameter grids using the ``name__param`` convention.

"The name given to each node in the pipeline graph ... is a placeholder
that enables users to supply external information (e.g. parameters) that
can be used to control/change the node operation.  For example, if users
want to try 'PCA()' with a different number of components, they can
specify the value using 'pca__n_components'" (paper Section IV).
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterator, List, Mapping, Sequence

from repro.core.pipeline import Pipeline

__all__ = ["ParamGrid", "applicable_grid", "expand_grid"]


class ParamGrid:
    """A mapping ``{"node__param": [candidate values]}``.

    :meth:`combinations` yields every cartesian setting;
    :meth:`for_pipeline` filters to the entries whose node appears in a
    given pipeline, so grids can be written once for the whole graph and
    reused across paths (paths missing a node simply ignore that entry).

    Parameters
    ----------
    grid:
        Mapping of ``"node__param"`` keys to non-empty candidate-value
        sequences; malformed keys or empty value lists raise
        ``ValueError``.
    """

    def __init__(self, grid: Mapping[str, Sequence[Any]]):
        validated: Dict[str, List[Any]] = {}
        for key, values in grid.items():
            if "__" not in key:
                raise ValueError(
                    f"grid key {key!r} is not in <node>__<param> form"
                )
            values = list(values)
            if not values:
                raise ValueError(f"grid key {key!r} has no candidate values")
            validated[key] = values
        self.grid = validated

    def __bool__(self) -> bool:
        return bool(self.grid)

    def __len__(self) -> int:
        """Number of combinations in the full grid."""
        total = 1
        for values in self.grid.values():
            total *= len(values)
        return total if self.grid else 1

    def node_names(self) -> List[str]:
        """Distinct node names the grid addresses."""
        return sorted({key.partition("__")[0] for key in self.grid})

    def for_pipeline(self, pipeline: Pipeline) -> "ParamGrid":
        """Restrict to entries whose node is a step of ``pipeline``."""
        steps = set(pipeline.step_names)
        return ParamGrid(
            {
                key: values
                for key, values in self.grid.items()
                if key.partition("__")[0] in steps
            }
        )

    def combinations(self) -> Iterator[Dict[str, Any]]:
        """Yield each parameter setting as a flat dict; the empty grid
        yields one empty setting (i.e. defaults)."""
        if not self.grid:
            yield {}
            return
        keys = sorted(self.grid)
        for values in itertools.product(*(self.grid[k] for k in keys)):
            yield dict(zip(keys, values))


def applicable_grid(
    grid: Mapping[str, Sequence[Any]], pipeline: Pipeline
) -> ParamGrid:
    """Shorthand: wrap ``grid`` and restrict it to ``pipeline``.

    Parameters
    ----------
    grid:
        A :class:`ParamGrid` or raw ``name__param -> values`` mapping.
    pipeline:
        The pipeline whose step names filter the grid.

    Returns
    -------
    A :class:`ParamGrid` keeping only entries addressing ``pipeline``'s
    steps.
    """
    base = grid if isinstance(grid, ParamGrid) else ParamGrid(grid)
    return base.for_pipeline(pipeline)


def expand_grid(grid: Mapping[str, Sequence[Any]]) -> List[Dict[str, Any]]:
    """Materialize every combination of ``grid``.

    Parameters
    ----------
    grid:
        A :class:`ParamGrid` or raw ``name__param -> values`` mapping.

    Returns
    -------
    A list of concrete ``{name__param: value}`` settings (a single
    empty dict for an empty grid).
    """
    base = grid if isinstance(grid, ParamGrid) else ParamGrid(grid)
    return list(base.combinations())
