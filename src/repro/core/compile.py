"""Plan compilation: fused transform chains and batched sibling jobs.

The interpreted execution path (:meth:`ExecutionEngine._run_inner`)
re-enacts every pipeline per fold: clone each transformer, call
``fit_transform``, keep the fitted node around for the test-side
transform, then clone and fit the estimator.  For the stateless
transformers that dominate the paper's graphs (scalers, windowing,
selection, projection) that bookkeeping costs more than the arithmetic.

This module inserts a compilation stage between the
:class:`~repro.core.engine.ExecutionPlan` and the executor:

* :class:`CompiledChain` — the transformer prefix of a pipeline with
  every stage that offers a :class:`~repro.ml.base.FusedStepKernel`
  replaced by its ``(fit, transform)`` function pair.  One
  :meth:`~CompiledChain.fit_transform_fold` call runs the whole chain as
  plain array functions; stages without a kernel still run interpreted
  *in place*, so mixed chains keep exact semantics.
* :class:`CompiledGroup` — the jobs of one prefix group (the groups
  :meth:`ExecutionPlan.groups` already identifies) sharing one compiled
  chain and a per-fold memo, so one transformed matrix serves every
  sibling job at compute time even when the
  :class:`~repro.core.engine.PrefixCache` is disabled or evicted.
* :class:`CompiledPlan` — all groups of one engine call plus the
  compile counters (``kernels_fused``, ``stages_interpreted``,
  ``jobs_batched``, ``folds_shared``, ``estimator_fused_fits``)
  surfaced through ``report.stats["compile"]`` and telemetry.

Compilation never changes *what* is computed — only how.  Kernels are
bound by the strict parity contract on
:class:`~repro.ml.base.FusedStepKernel` (bit-identical outputs and
errors), group members share a configured-prefix spec key (so sharing a
fold's transform is exactly the prefix-cache correctness argument), and
artifact keys are built from the same spec/fold fingerprints either
way — a compiled run reads and writes the very same store entries as an
interpreted one.  Any error while building a chain simply leaves that
group interpreted.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.ml.base import clone, kernel_is_trustworthy

__all__ = [
    "CompiledChain",
    "CompiledGroup",
    "CompiledPlan",
    "compile_chain",
    "estimator_fused_fit",
]

#: Step markers: a stage either runs as a fused kernel or interpreted.
_KERNEL = "kernel"
_COMPONENT = "component"


class CompiledChain:
    """A transformer prefix lowered to a per-fold array routine.

    Parameters
    ----------
    steps:
        ``(kind, name, payload)`` triples in pipeline order; ``kind`` is
        ``"kernel"`` (payload: a :class:`~repro.ml.base.FusedStepKernel`)
        or ``"component"`` (payload: the configured component template,
        cloned per fold exactly as the interpreted path does).
    """

    __slots__ = ("steps", "n_fused", "n_interpreted")

    def __init__(self, steps: List[Tuple[str, str, Any]]):
        self.steps = steps
        self.n_fused = sum(1 for kind, _, _ in steps if kind == _KERNEL)
        self.n_interpreted = len(steps) - self.n_fused

    def fit_transform_fold(
        self, X_train: Any, y_train: Any, X_test: Any
    ) -> Tuple[Any, Any]:
        """Fit the chain on the training split and transform both splits.

        Replays the interpreted fold loop stage for stage — kernel
        stages run ``fit`` then ``transform`` (the same double
        validation ``fit_transform`` performs), interpreted stages clone
        and ``fit_transform`` their component — so outputs and raised
        errors are identical to the uncompiled path.
        """
        data = X_train
        fitted: List[Tuple[str, Any, Any]] = []
        for kind, _, payload in self.steps:
            if kind == _KERNEL:
                state = payload.fit(data, y_train)
                data = payload.transform(data, state)
                fitted.append((kind, payload, state))
            else:
                node = clone(payload)
                data = node.fit_transform(data, y_train)
                fitted.append((kind, node, None))
        X_train_out = data
        data = X_test
        for kind, payload, state in fitted:
            if kind == _KERNEL:
                data = payload.transform(data, state)
            else:
                data = payload.transform(data)
        return X_train_out, data


def estimator_fused_fit(estimator: Any) -> Optional[Any]:
    """The estimator's batched ``fused_fit``, if it can be trusted.

    Mirrors :func:`~repro.ml.base.kernel_is_trustworthy` for
    estimators: a subclass
    overriding ``fit`` below the class providing ``fused_fit`` must be
    fitted through its own ``fit``, so ``None`` is returned and the
    caller falls back to the interpreted fit.
    """
    fused = getattr(estimator, "fused_fit", None)
    if not callable(fused):
        return None
    mro = type(estimator).__mro__

    def definer_index(name: str) -> Optional[int]:
        for index, klass in enumerate(mro):
            if name in vars(klass):
                return index
        return None

    fused_index = definer_index("fused_fit")
    fit_index = definer_index("fit")
    if fused_index is None:
        return None
    if fit_index is not None and fit_index < fused_index:
        return None
    return fused


def compile_chain(pipeline: Any) -> Optional[CompiledChain]:
    """Compile a pipeline's transformer prefix, or ``None``.

    Every transformer advertising a usable ``fused_kernel()`` becomes a
    kernel stage; the rest stay interpreted components.  A stage whose
    ``fused_kernel()`` itself raises is treated as kernel-less rather
    than failing the batch — configuration errors must surface inside
    job execution (where the failure policy sees them), not at compile
    time.  Kernels inherited past an overridden ``fit``/``transform``
    are rejected (see :func:`~repro.ml.base.kernel_is_trustworthy`).

    Parameters
    ----------
    pipeline:
        A *configured* pipeline (parameters already applied) — kernels
        close over parameter values at compile time.

    Returns
    -------
    The compiled chain, or ``None`` for estimator-only pipelines.
    """
    transformers = pipeline.transformer_steps
    if not transformers:
        return None
    steps: List[Tuple[str, str, Any]] = []
    for name, component in transformers:
        kernel = None
        maker = getattr(component, "fused_kernel", None)
        if callable(maker) and kernel_is_trustworthy(component):
            try:
                kernel = maker()
            except Exception:
                kernel = None
        if kernel is not None:
            steps.append((_KERNEL, name, kernel))
        else:
            steps.append((_COMPONENT, name, component))
    return CompiledChain(steps)


class CompiledGroup:
    """One prefix group's jobs sharing a compiled chain and fold memo.

    The memo holds each fold's transformed ``(X_train, X_test)`` while
    sibling jobs of the group remain unexecuted, so the chain is fitted
    once per fold per group regardless of cache configuration.  Entries
    are dropped as soon as the last job finishes (:meth:`job_done`), so
    at most one group's folds are live under serial execution.

    Parameters
    ----------
    plan:
        Owning :class:`CompiledPlan` (receives the shared counters).
    prefix_key:
        The group's configured-prefix key (``None`` for estimator-only
        pipelines).
    chain:
        The group's :class:`CompiledChain` (``None`` when there is
        nothing to compile).
    n_jobs:
        Number of jobs in the group.
    """

    __slots__ = ("plan", "prefix_key", "chain", "remaining", "_memo", "_lock")

    def __init__(
        self,
        plan: "CompiledPlan",
        prefix_key: Optional[str],
        chain: Optional[CompiledChain],
        n_jobs: int,
    ):
        self.plan = plan
        self.prefix_key = prefix_key
        self.chain = chain
        self.remaining = n_jobs
        self._memo: Dict[str, Tuple[Any, Any]] = {}
        self._lock = threading.Lock()

    @property
    def shares_folds(self) -> bool:
        """Whether fold memoization can pay off: a real transformer
        prefix with more than one sibling still outstanding."""
        return self.prefix_key is not None and self.remaining > 1

    def memo_get(self, fold: str) -> Optional[Tuple[Any, Any]]:
        """The fold's transformed splits, if a sibling computed them."""
        with self._lock:
            value = self._memo.get(fold)
        if value is not None:
            self.plan.count("folds_shared")
        return value

    def memo_put(self, fold: str, value: Tuple[Any, Any]) -> None:
        """Retain a fold's transformed splits for the remaining siblings
        (dropped when no sibling is left to read them)."""
        with self._lock:
            if self.remaining > 1:
                self._memo[fold] = value

    def job_done(self) -> None:
        """Mark one job finished; the last one drops the memo."""
        with self._lock:
            self.remaining -= 1
            if self.remaining <= 0:
                self._memo.clear()


class CompiledPlan:
    """Compiled form of one engine call's prefix-grouped job stream.

    Parameters
    ----------
    groups:
        The ``prefix_key -> [job, ...]`` mapping from
        :meth:`~repro.core.engine.ExecutionPlan.groups`.  Each group's
        chain is compiled from its first job's configured pipeline —
        sharing the prefix key guarantees every sibling's configured
        transformer chain is identical.
    """

    def __init__(self, groups: Any):
        self._lock = threading.Lock()
        self.counters: Dict[str, int] = {
            "kernels_fused": 0,
            "stages_interpreted": 0,
            "jobs_batched": 0,
            "folds_shared": 0,
            "estimator_fused_fits": 0,
        }
        self._by_job: Dict[str, CompiledGroup] = {}
        self.groups: List[CompiledGroup] = []
        for prefix_key, jobs in groups.items():
            if not jobs:
                continue
            chain = None
            if prefix_key is not None:
                try:
                    chain = compile_chain(jobs[0].configured_pipeline())
                except Exception:
                    chain = None  # misconfigured jobs fail interpreted
            group = CompiledGroup(self, prefix_key, chain, len(jobs))
            self.groups.append(group)
            for job in jobs:
                self._by_job[job.key] = group
            if chain is not None:
                self.counters["kernels_fused"] += chain.n_fused
                self.counters["stages_interpreted"] += chain.n_interpreted
            if len(jobs) > 1 and prefix_key is not None:
                self.counters["jobs_batched"] += len(jobs)

    def group_for(self, job_key: str) -> Optional[CompiledGroup]:
        """The compiled group owning ``job_key`` (``None`` if unknown)."""
        return self._by_job.get(job_key)

    def count(self, name: str, value: int = 1) -> None:
        """Thread-safe counter bump (runtime events: memo hits, fused
        estimator fits)."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + value

    def snapshot(self) -> Dict[str, int]:
        """Point-in-time copy of the compile counters."""
        with self._lock:
            return dict(self.counters)
