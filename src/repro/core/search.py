"""Budgeted search strategies over Transformer-Estimator Graphs.

Paper Section III: "The total number of possible calculations for a data
set is generally too large to exhaustively determine.  This is
particularly true given the large number of parameter settings."  The
exhaustive sweep of :class:`~repro.core.evaluation.GraphEvaluator` is the
baseline; this module adds two budget-aware strategies:

* :class:`RandomizedGraphSearch` — evaluate a uniform random sample of
  ``n_iter`` (pipeline, parameter-setting) jobs.
* :class:`SuccessiveHalvingSearch` — evaluate all candidates under a
  cheap cross-validation budget, keep the best ``1/eta`` fraction, and
  re-evaluate survivors under successively larger budgets (more folds /
  more data), so the full budget is spent only on promising paths.

Both route execution through the evaluator's
:class:`~repro.core.engine.ExecutionEngine`, so the ``job_filter``
(applied once, at plan time), the ``result_hook`` and the fitted-prefix
transform cache behave exactly as in the exhaustive evaluator — they
compose with the DARR and with parallel/distributed executors unchanged.
"""

from __future__ import annotations

import time
from typing import Any, List, Mapping, Optional

import numpy as np

from repro.core.evaluation import (
    EvaluationJob,
    EvaluationReport,
    GraphEvaluator,
    rekey_job,
)
from repro.ml.model_selection.splits import KFold

__all__ = ["RandomizedGraphSearch", "SuccessiveHalvingSearch"]


def _finish_report(
    report: EvaluationReport,
    jobs_by_key: Mapping[str, EvaluationJob],
    X: Any,
    y: Any,
    refit_best: bool,
    started: float,
) -> EvaluationReport:
    """Shared selection/refit epilogue of every search strategy."""
    best = report.best_result()
    if best is not None:
        report.best_path = best.path
        report.best_params = dict(best.params)
        if refit_best and best.key in jobs_by_key:
            model = jobs_by_key[best.key].configured_pipeline()
            model.fit(np.asarray(X), np.asarray(y))
            report.best_model = model
    report.elapsed_seconds = time.perf_counter() - started
    return report


class RandomizedGraphSearch:
    """Evaluate a random sample of the graph's job space.

    Sampling happens on the *filtered* job space: jobs the evaluator's
    ``job_filter`` rejects are removed before drawing, so the strategy
    always evaluates ``min(n_iter, |eligible jobs|)`` jobs rather than
    silently shrinking the budget by however many draws the filter
    happened to reject.

    Parameters
    ----------
    evaluator:
        The configured :class:`GraphEvaluator` (graph + CV + metric).
    n_iter:
        Number of jobs to sample (without replacement; clipped to the
        eligible job-space size).
    random_state:
        Sampling seed.
    """

    def __init__(
        self,
        evaluator: GraphEvaluator,
        n_iter: int = 20,
        random_state: Optional[int] = None,
    ):
        if n_iter < 1:
            raise ValueError("n_iter must be >= 1")
        self.evaluator = evaluator
        self.n_iter = n_iter
        self.random_state = random_state

    def evaluate(
        self,
        X: Any,
        y: Any,
        param_grid: Optional[Mapping[str, Any]] = None,
        refit_best: bool = True,
    ) -> EvaluationReport:
        started = time.perf_counter()
        tel = self.evaluator.telemetry
        plan = self.evaluator.plan(X, y, param_grid)
        jobs = plan.jobs()
        rng = np.random.default_rng(self.random_state)
        k = min(self.n_iter, len(jobs))
        chosen_indices = rng.choice(len(jobs), size=k, replace=False)
        selected = [jobs[index] for index in sorted(chosen_indices)]
        report = EvaluationReport(
            metric=self.evaluator.metric_name,
            greater_is_better=self.evaluator.greater_is_better,
        )
        with tel.span(
            "search.randomized", n_iter=self.n_iter, sampled=k
        ):
            report.results.extend(
                self.evaluator.engine.execute(
                    selected,
                    X,
                    y,
                    cv=self.evaluator.cv,
                    metric=self.evaluator.metric,
                    result_hook=self.evaluator.result_hook,
                )
            )
        if tel.enabled:
            tel.count("search.jobs_enumerated", len(jobs) + plan.n_filtered)
            tel.count("search.jobs_sampled", k)
        report.stats = {
            "cache": self.evaluator.engine.cache_stats(),
            "jobs": {
                "eligible": len(jobs),
                "filtered": plan.n_filtered,
                "sampled": k,
            },
        }
        jobs_by_key = {job.key: job for job in selected}
        return _finish_report(
            report, jobs_by_key, X, y, refit_best, started
        )


class SuccessiveHalvingSearch:
    """Multi-round elimination over the graph's pipelines.

    Round r evaluates the surviving candidates with ``folds[r]``-fold
    cross validation (cheap first, expensive last) and keeps the best
    ``ceil(n / eta)``.  The report carries the final-round results; the
    per-round history is available as ``rounds_``.

    Each round re-keys the surviving jobs under the round's CV budget by
    substituting the CV spec directly into the job spec
    (:func:`~repro.core.evaluation.rekey_job`) — O(survivors) per round
    instead of re-enumerating the whole job space per survivor — so DARR
    entries from different budgets never collide.

    Parameters
    ----------
    evaluator:
        Configured evaluator; its ``cv`` is *ignored* — the schedule
        below replaces it.
    folds:
        Cross-validation folds per round, ascending cost
        (default ``(2, 3, 5)``).
    eta:
        Elimination factor per round.
    """

    def __init__(
        self,
        evaluator: GraphEvaluator,
        folds: tuple = (2, 3, 5),
        eta: float = 3.0,
        random_state: Optional[int] = 0,
    ):
        if not folds:
            raise ValueError("folds must be non-empty")
        if any(f < 2 for f in folds):
            raise ValueError("every round needs >= 2 folds")
        if eta <= 1.0:
            raise ValueError("eta must be > 1")
        self.evaluator = evaluator
        self.folds = tuple(folds)
        self.eta = eta
        self.random_state = random_state
        self.rounds_: List[dict] = []

    def evaluate(
        self,
        X: Any,
        y: Any,
        param_grid: Optional[Mapping[str, Any]] = None,
        refit_best: bool = True,
    ) -> EvaluationReport:
        started = time.perf_counter()
        tel = self.evaluator.telemetry
        survivors: List[EvaluationJob] = self.evaluator.plan(
            X, y, param_grid
        ).jobs()
        self.rounds_ = []
        final_results = []
        greater = self.evaluator.greater_is_better
        for round_index, n_folds in enumerate(self.folds):
            round_cv = KFold(n_folds, random_state=self.random_state)
            round_jobs = [rekey_job(job, round_cv) for job in survivors]
            with tel.span(
                "search.halving_round",
                round=round_index,
                folds=n_folds,
                candidates=len(round_jobs),
            ):
                round_results = self.evaluator.engine.execute(
                    round_jobs,
                    X,
                    y,
                    cv=round_cv,
                    metric=self.evaluator.metric,
                    result_hook=self.evaluator.result_hook,
                )
            if tel.enabled:
                tel.count("search.halving_rounds")
                tel.count("search.budget_folds", n_folds * len(round_jobs))
            by_key = {result.key: result for result in round_results}
            results = [
                (job, by_key[round_job.key])
                for job, round_job in zip(survivors, round_jobs)
            ]
            results.sort(
                key=lambda pair: pair[1].score, reverse=greater
            )
            self.rounds_.append(
                {
                    "folds": n_folds,
                    "candidates": len(survivors),
                    "scores": [r.score for _, r in results],
                }
            )
            final_results = results
            if round_index < len(self.folds) - 1:
                keep = max(1, int(np.ceil(len(results) / self.eta)))
                survivors = [job for job, _ in results[:keep]]
            if len(survivors) == 1:
                break
        report = EvaluationReport(
            metric=self.evaluator.metric_name,
            greater_is_better=greater,
        )
        report.results = [result for _, result in final_results]
        report.stats = {
            "cache": self.evaluator.engine.cache_stats(),
            "halving": {
                "rounds": [dict(r) for r in self.rounds_],
                "total_evaluations": self.total_evaluations_,
                "budget_folds": sum(
                    r["folds"] * r["candidates"] for r in self.rounds_
                ),
            },
        }
        jobs_by_key = {
            result.key: job for job, result in final_results
        }
        return _finish_report(
            report, jobs_by_key, X, y, refit_best, started
        )

    @property
    def total_evaluations_(self) -> int:
        """Jobs actually executed across all rounds."""
        return sum(r["candidates"] for r in self.rounds_)
