"""Model validation and selection over a Transformer-Estimator Graph.

Paper Section IV-B: "Given a dataset D and a Transformer-Estimator Graph
G, the objective of model validation and selection process is to identify
a pipeline from the Transformer-Estimator Graph that performs reasonably
well for a given dataset.  Basically, each pipeline in a Graph is
evaluated for a given dataset D, and a path with good model performance
is selected."

:class:`GraphEvaluator` enumerates (pipeline x parameter-setting) jobs,
scores each with the configured cross-validation strategy and metric, and
returns an :class:`EvaluationReport` whose best entry is refitted on the
full dataset.  Jobs are first-class (:class:`EvaluationJob`): the
distributed scheduler fans them out across nodes and the DARR coordinator
uses their spec keys to skip work other clients already did.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional

import numpy as np

from repro.core.engine import ExecutionEngine, ExecutionPlan
from repro.core.graph import TransformerEstimatorGraph
from repro.core.params import ParamGrid
from repro.core.pipeline import Pipeline
from repro.core.spec import (
    computation_spec,
    cv_spec,
    dataset_fingerprint,
    spec_key,
)
from repro.ml.model_selection.cross_validate import (
    CrossValidationResult,
    resolve_metric,
)
from repro.ml.model_selection.splits import KFold
from repro.obs import resolve_telemetry

__all__ = [
    "EvaluationJob",
    "PipelineResult",
    "EvaluationReport",
    "GraphEvaluator",
    "rekey_job",
]


@dataclass
class EvaluationJob:
    """One unit of evaluation work: a pipeline plus a parameter setting.

    ``key`` is the canonical spec key — the identity under which the
    result is stored in (and deduplicated by) the DARR.
    """

    pipeline: Pipeline
    params: Dict[str, Any]
    key: str
    spec: Dict[str, Any]

    @property
    def path(self) -> str:
        """Human-readable pipeline path of this job."""
        return self.pipeline.path_string()

    def configured_pipeline(self) -> Pipeline:
        """A fresh pipeline clone with this job's parameters applied."""
        clone = self.pipeline.clone()
        if self.params:
            clone.set_params(**self.params)
        return clone


def rekey_job(job: "EvaluationJob", cv: Any) -> "EvaluationJob":
    """The same calculation re-keyed under a different CV budget.

    Substitutes ``cv`` into the job's spec and recomputes the key, so
    DARR entries from different budgets never collide — without
    re-enumerating the whole job space to find the matching job.

    Parameters
    ----------
    job:
        The job to re-key.
    cv:
        Splitter instance or strategy name for the new budget.

    Returns
    -------
    A new :class:`EvaluationJob` identical except for spec and key.
    """
    spec = dict(job.spec)
    spec["cv"] = cv_spec(cv)
    return EvaluationJob(
        pipeline=job.pipeline,
        params=job.params,
        key=spec_key(spec),
        spec=spec,
    )


@dataclass
class PipelineResult:
    """Outcome of one evaluation job."""

    path: str
    params: Dict[str, Any]
    cv_result: CrossValidationResult
    key: str
    from_cache: bool = False

    @property
    def score(self) -> float:
        return self.cv_result.mean_score

    def summary(self) -> Dict[str, Any]:
        """One-dict digest of this result."""
        return {
            "path": self.path,
            "params": self.params,
            "score": self.score,
            "std": self.cv_result.std_score,
            "metric": self.cv_result.metric,
            "from_cache": self.from_cache,
        }


@dataclass
class EvaluationReport:
    """All results of a graph evaluation plus the selected winner.

    ``stats`` carries the run's execution accounting — the engine's
    prefix-cache counters under ``stats["cache"]``, the
    plan-compilation counters under ``stats["compile"]`` (fused
    kernels, batched jobs, interpreted stages), plus per-strategy
    extras (job counts, halving budgets, cooperative reuse) — so callers
    read ``report.stats`` instead of reaching into ``engine.cache``.
    """

    metric: str
    greater_is_better: bool
    results: List[PipelineResult] = field(default_factory=list)
    best_model: Optional[Pipeline] = None
    best_path: Optional[str] = None
    best_params: Dict[str, Any] = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    stats: Dict[str, Any] = field(default_factory=dict)

    @property
    def best_score(self) -> Optional[float]:
        """Score of the winning result (None when nothing was run)."""
        best = self.best_result()
        return None if best is None else best.score

    def best_result(self) -> Optional[PipelineResult]:
        """The winning result under the report's metric direction."""
        if not self.results:
            return None
        key: Callable[[PipelineResult], float] = lambda r: r.score
        if self.greater_is_better:
            return max(self.results, key=key)
        return min(self.results, key=key)

    def ranked(self) -> List[PipelineResult]:
        """Results ordered best-first under the report's metric."""
        return sorted(
            self.results,
            key=lambda r: r.score,
            reverse=self.greater_is_better,
        )

    def leaderboard(self, top: int = 10) -> str:
        """Formatted best-first table for human inspection."""
        lines = [f"{'score':>12}  {'std':>8}  path / params"]
        for result in self.ranked()[:top]:
            params = f" {result.params}" if result.params else ""
            lines.append(
                f"{result.score:12.5f}  {result.cv_result.std_score:8.5f}"
                f"  {result.path}{params}"
            )
        return "\n".join(lines)


class GraphEvaluator:
    """Evaluate every (pipeline, parameter-setting) of a graph.

    Parameters
    ----------
    graph:
        The :class:`TransformerEstimatorGraph` to sweep.
    cv:
        Splitter instance or ``None`` for 5-fold K-fold.
    metric:
        Metric name (see the registries in :mod:`repro.ml.metrics`) or a
        callable.
    job_filter:
        Optional predicate over :class:`EvaluationJob`; jobs for which it
        returns False are skipped.  This is the hook the cooperative
        coordinator uses to avoid redundant work ("Clients can then use
        previous results stored in the DARR ...  perform additional
        calculations which do not overlap", Section III).
    result_hook:
        Optional callback invoked with each fresh
        :class:`PipelineResult` — e.g. to publish into a DARR.
    engine:
        How jobs execute: ``"auto"`` (default) for an
        :class:`~repro.core.engine.ExecutionEngine` with cost-aware
        executor selection (prefix caching on; serial/fused execution
        unless core count, batch size and measured per-job cost predict
        the process pool pays for itself), ``None``/``"serial"`` to pin
        serial execution, ``"parallel"`` for thread-pool fan-out, an
        :class:`~repro.core.engine.Executor`, a
        :class:`~repro.distributed.scheduler.DistributedScheduler`, or a
        fully configured engine instance (e.g. to share one prefix cache
        across evaluators).  Every choice computes identical results.
    telemetry:
        ``None`` (default, no-op) or a :class:`~repro.obs.Telemetry`
        handle / sink(s).  One handle attached here observes the whole
        evaluation: it is propagated to the engine (job spans, fold
        times, cache counters), through it to a wrapped distributed
        scheduler, and is what the budgeted searches and the cooperative
        coordinator report their own counters to.
    failure_policy:
        ``None`` (default: keep the engine's policy — first failure
        aborts the sweep), a :class:`~repro.core.engine.FailurePolicy`,
        or the shorthand ``"raise"``/``"skip"``/``"retry"``.  Under
        ``"skip"``/``"retry"`` the sweep records failed jobs in
        ``report.stats["failures"]`` and selects the best among the
        paths that completed; :class:`~repro.core.engine.AllJobsFailed`
        is raised only when nothing completed.  Assigned onto the
        engine, so it also applies when the engine is shared.
    """

    def __init__(
        self,
        graph: TransformerEstimatorGraph,
        cv: Any = None,
        metric: Any = "rmse",
        job_filter: Optional[Callable[[EvaluationJob], bool]] = None,
        result_hook: Optional[Callable[[PipelineResult], None]] = None,
        engine: Any = "auto",
        telemetry: Any = None,
        failure_policy: Any = None,
    ):
        self.graph = graph
        self.cv = cv if cv is not None else KFold(5, random_state=0)
        metric_name, _, greater = resolve_metric(metric)
        self.metric = metric
        self.metric_name = metric_name
        self.greater_is_better = greater
        self.job_filter = job_filter
        self.result_hook = result_hook
        self.engine = ExecutionEngine.resolve(engine)
        if failure_policy is not None:
            from repro.core.engine import FailurePolicy

            self.engine.failure_policy = FailurePolicy.resolve(failure_policy)
        self.telemetry = resolve_telemetry(telemetry)
        if self.telemetry.enabled and not self.engine.telemetry.enabled:
            self.engine.telemetry = self.telemetry

    def iter_jobs(
        self,
        X: Any,
        y: Any,
        param_grid: Optional[Mapping[str, Any]] = None,
    ) -> Iterator[EvaluationJob]:
        """Enumerate all evaluation jobs for ``(X, y)``.

        The dataset fingerprint is baked into each job's spec key, so the
        same pipeline on different data is a different calculation.
        """
        fingerprint = dataset_fingerprint(X, y)
        grid = ParamGrid(param_grid or {})
        for pipeline in self.graph.pipelines():
            applicable = grid.for_pipeline(pipeline)
            for params in applicable.combinations():
                spec = computation_spec(
                    pipeline,
                    params=params,
                    cv=self.cv,
                    metric=self.metric_name,
                    dataset=fingerprint,
                )
                yield EvaluationJob(
                    pipeline=pipeline,
                    params=params,
                    key=spec_key(spec),
                    spec=spec,
                )

    def run_job(self, job: EvaluationJob, X: Any, y: Any) -> PipelineResult:
        """Execute one job through the engine (cache-aware), firing the
        ``result_hook`` for the fresh result."""
        return self.engine.execute_job(
            job,
            X,
            y,
            cv=self.cv,
            metric=self.metric,
            result_hook=self.result_hook,
        )

    def plan(
        self,
        X: Any,
        y: Any,
        param_grid: Optional[Mapping[str, Any]] = None,
    ) -> ExecutionPlan:
        """The deduplicated, ``job_filter``-respecting execution plan for
        ``(X, y)`` — the single place the filter is enforced."""
        return ExecutionPlan(
            self.iter_jobs(X, y, param_grid), job_filter=self.job_filter
        )

    def evaluate(
        self,
        X: Any,
        y: Any,
        param_grid: Optional[Mapping[str, Any]] = None,
        refit_best: bool = True,
        extra_results: Optional[List[PipelineResult]] = None,
    ) -> EvaluationReport:
        """Sweep the full graph and select the best pipeline.

        ``extra_results`` lets callers merge results obtained elsewhere
        (e.g. fetched from the DARR) into the selection.
        """
        started = time.perf_counter()
        report = EvaluationReport(
            metric=self.metric_name,
            greater_is_better=self.greater_is_better,
        )
        plan = self.plan(X, y, param_grid)
        with self.telemetry.span("evaluator.evaluate") as eval_span:
            report.results.extend(
                self.engine.execute(
                    plan,
                    X,
                    y,
                    cv=self.cv,
                    metric=self.metric,
                    result_hook=self.result_hook,
                )
            )
            eval_span.annotate(n_jobs=plan.n_jobs, n_filtered=plan.n_filtered)
        report.stats = {
            "cache": self.engine.cache_stats(),
            "compile": self.engine.compile_stats(),
            "jobs": {
                "executed": plan.n_jobs,
                "filtered": plan.n_filtered,
                "duplicates": plan.n_duplicates,
            },
            "failures": [
                failure.as_dict() for failure in self.engine.last_failures
            ],
        }
        jobs_by_key: Dict[str, EvaluationJob] = plan.jobs_by_key()
        if extra_results:
            seen = {result.key for result in report.results}
            for result in extra_results:
                if result.key not in seen:
                    report.results.append(result)
                    seen.add(result.key)
        best = report.best_result()
        if best is not None:
            report.best_path = best.path
            report.best_params = dict(best.params)
            if refit_best and best.key in jobs_by_key:
                model = jobs_by_key[best.key].configured_pipeline()
                model.fit(np.asarray(X), np.asarray(y))
                report.best_model = model
        report.elapsed_seconds = time.perf_counter() - started
        return report
