"""Machine-learning pipelines (paper Section IV-A, Fig. 5).

"A Pipeline is a sequence of adjacent connected graph nodes that starts
from root node v_root and ends at leaf node v_k."  Training passes data
through the internal nodes with "fit & transform" and fits the final
estimator; prediction passes data through "transform" operations and the
trained estimator — exactly the two operations every pipeline must
support for cross-validated graph evaluation.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.ml.base import BaseComponent, NotFittedError, clone

__all__ = ["Pipeline", "make_pipeline"]


class Pipeline:
    """An ordered chain of named components ending in an estimator.

    Parameters
    ----------
    steps:
        Sequence of ``(name, component)`` pairs.  All but the last must
        be transformers (``fit``/``transform``); the last must be an
        estimator (``fit``/``predict``).  Names must be unique — they are
        the handles for the ``name__param`` convention.
    """

    def __init__(self, steps: Sequence[Tuple[str, Any]]):
        steps = list(steps)
        if not steps:
            raise ValueError("a pipeline needs at least one step")
        names = [name for name, _ in steps]
        if len(set(names)) != len(names):
            duplicates = sorted(
                {name for name in names if names.count(name) > 1}
            )
            raise ValueError(f"duplicate step names: {duplicates}")
        for name, component in steps[:-1]:
            if not (hasattr(component, "fit") and hasattr(component, "transform")):
                raise TypeError(
                    f"intermediate step {name!r} must be a transformer "
                    "(fit + transform)"
                )
        final_name, final = steps[-1]
        if not (hasattr(final, "fit") and hasattr(final, "predict")):
            raise TypeError(
                f"final step {final_name!r} must be an estimator "
                "(fit + predict)"
            )
        self.steps: List[Tuple[str, Any]] = steps
        self.fitted_steps_: Optional[List[Tuple[str, Any]]] = None

    # -- introspection ----------------------------------------------------
    @property
    def step_names(self) -> List[str]:
        """Ordered node names of the pipeline's steps."""
        return [name for name, _ in self.steps]

    @property
    def transformer_steps(self) -> List[Tuple[str, Any]]:
        """The ``(name, component)`` transformer prefix (all steps but
        the final estimator) — the unit the prefix cache keys on and the
        plan compiler fuses."""
        return self.steps[:-1]

    @property
    def estimator(self) -> Any:
        """The final (unfitted template) estimator."""
        return self.steps[-1][1]

    @property
    def fitted_estimator(self) -> Any:
        """The final estimator of the last ``fit``."""
        if self.fitted_steps_ is None:
            raise NotFittedError("pipeline is not fitted yet")
        return self.fitted_steps_[-1][1]

    def named_steps(self) -> Dict[str, Any]:
        """Mapping of step name to (template) component."""
        return dict(self.steps)

    def path_string(self) -> str:
        """Human-readable path, e.g.
        ``Input -> robustscaler -> selectkbest -> decisiontree``."""
        return " -> ".join(["Input"] + self.step_names)

    def __repr__(self) -> str:
        return f"Pipeline({self.path_string()})"

    def __iter__(self) -> Iterator[Tuple[str, Any]]:
        return iter(self.steps)

    def __len__(self) -> int:
        return len(self.steps)

    # -- parameters --------------------------------------------------------
    def set_params(self, **params: Any) -> "Pipeline":
        """Set node hyper-parameters via the ``name__param`` convention.

        "The naming convention 'pca__n_components' (node name followed by
        two underscore sign followed by attribute name) is adopted from
        sklearn" (paper Section IV).
        """
        by_name = dict(self.steps)
        for key, value in params.items():
            if "__" not in key:
                raise ValueError(
                    f"parameter {key!r} is not in <node>__<param> form"
                )
            node, _, attribute = key.partition("__")
            if node not in by_name:
                raise ValueError(
                    f"unknown node {node!r}; pipeline nodes: "
                    f"{self.step_names}"
                )
            component = by_name[node]
            if isinstance(component, BaseComponent):
                component.set_params(**{attribute: value})
            else:
                if not hasattr(component, attribute):
                    raise ValueError(
                        f"{type(component).__name__} has no parameter "
                        f"{attribute!r}"
                    )
                setattr(component, attribute, value)
        return self

    def get_params(self) -> Dict[str, Any]:
        """All node parameters flattened to ``name__param`` keys."""
        out: Dict[str, Any] = {}
        for name, component in self.steps:
            getter = getattr(component, "get_params", None)
            if callable(getter):
                for key, value in getter().items():
                    out[f"{name}__{key}"] = value
        return out

    def clone(self) -> "Pipeline":
        """Unfitted copy with cloned components (cross-validation folds
        must never share fitted state)."""
        return Pipeline(
            [(name, clone(component)) for name, component in self.steps]
        )

    # -- training & prediction (paper Fig. 5) ------------------------------
    def fit(self, X: Any, y: Any = None) -> "Pipeline":
        """Training: internal nodes run "fit & transform", the last node
        runs "fit"."""
        fitted: List[Tuple[str, Any]] = []
        data = X
        for name, component in self.steps[:-1]:
            node = clone(component)
            data = node.fit_transform(data, y)
            fitted.append((name, node))
        final_name, final_component = self.steps[-1]
        final = clone(final_component)
        final.fit(data, y)
        fitted.append((final_name, final))
        self.fitted_steps_ = fitted
        return self

    #: Whole-chain incremental updates are tolerance-class even when
    #: every step is exact (later stages see data transformed by
    #: partially-updated upstream statistics) — see :meth:`partial_fit`.
    partial_fit_parity = "tolerance"

    def supports_partial_fit(self) -> bool:
        """Whether every step can be incrementally updated.

        Returns
        -------
        ``True`` when each component passes
        :func:`repro.ml.base.supports_partial_fit` (declared parity class,
        trustworthy inheritance, instance readiness), so the whole chain
        can advance via :meth:`partial_fit`.
        """
        from repro.ml.base import supports_partial_fit

        return all(
            supports_partial_fit(component) for _, component in self.steps
        )

    def partial_fit(self, X: Any, y: Any = None) -> "Pipeline":
        """Incrementally absorb a batch stage by stage.

        Each fitted transformer first ``partial_fit``s on the raw batch,
        then transforms it for the next stage; the final estimator
        ``partial_fit``s on the fully transformed batch.  On the first
        call the fitted chain is seeded from cloned (unfitted) templates.
        Whole-chain parity with a cold :meth:`fit` on the concatenated
        batches is *tolerance-class* even when every step declares exact
        parity, because later stages see data transformed by
        partially-updated upstream statistics.

        Parameters
        ----------
        X, y:
            The new batch of observations.

        Returns
        -------
        ``self``, with ``fitted_steps_`` advanced in place.
        """
        if not self.supports_partial_fit():
            blockers = [
                name
                for name, component in self.steps
                if not _step_supports_partial_fit(component)
            ]
            raise TypeError(
                f"pipeline steps {blockers} do not support partial_fit"
            )
        if self.fitted_steps_ is None:
            self.fitted_steps_ = [
                (name, clone(component)) for name, component in self.steps
            ]
        data = X
        for _, node in self.fitted_steps_[:-1]:
            node.partial_fit(data, y)
            data = node.transform(data)
        self.fitted_steps_[-1][1].partial_fit(data, y)
        return self

    def _transform_through(self, X: Any) -> Any:
        if self.fitted_steps_ is None:
            raise NotFittedError("pipeline is not fitted yet; call fit()")
        data = X
        for _, node in self.fitted_steps_[:-1]:
            data = node.transform(data)
        return data

    def predict(self, X: Any) -> np.ndarray:
        """Prediction: internal nodes run "transform", the trained final
        node runs "predict"."""
        data = self._transform_through(X)
        return self.fitted_steps_[-1][1].predict(data)

    def predict_proba(self, X: Any) -> np.ndarray:
        """Probability predictions where the final estimator supports
        them."""
        data = self._transform_through(X)
        final = self.fitted_steps_[-1][1]
        if not hasattr(final, "predict_proba"):
            raise AttributeError(
                f"{type(final).__name__} does not implement predict_proba"
            )
        return final.predict_proba(data)

    def transform(self, X: Any) -> Any:
        """Run the fitted transformer prefix only (no estimator)."""
        return self._transform_through(X)

    def score(self, X: Any, y: Any) -> float:
        """Delegate to the final estimator's default score."""
        data = self._transform_through(X)
        return self.fitted_steps_[-1][1].score(data, y)


def _step_supports_partial_fit(component: Any) -> bool:
    from repro.ml.base import supports_partial_fit

    return supports_partial_fit(component)


def _auto_name(component: Any, taken: set) -> str:
    base = type(component).__name__.lower()
    name = base
    suffix = 2
    while name in taken:
        name = f"{base}_{suffix}"
        suffix += 1
    return name


def make_pipeline(*components: Any) -> Pipeline:
    """Build a pipeline with auto-generated node names.

    Parameters
    ----------
    *components:
        Transformers followed by at most one trailing estimator.

    Returns
    -------
    A :class:`Pipeline` whose step names are the lower-cased class
    names, deduplicated with ``_2``, ``_3`` … suffixes.
    """
    taken: set = set()
    steps = []
    for component in components:
        name = _auto_name(component, taken)
        taken.add(name)
        steps.append((name, component))
    return Pipeline(steps)
