"""Transformer-Estimator Graphs: the paper's primary contribution.

Build a staged graph of transformer/estimator options, enumerate every
root-to-leaf pipeline, evaluate each under a cross-validation strategy
and metric, and select the best path (paper Section IV).
"""

from repro.core.builders import (
    prepare_classification_graph,
    prepare_regression_graph,
)
from repro.core.declarative import (
    OPTION_FACTORIES,
    StructuredTaskOutcome,
    resolve_option,
    run_structured_task,
)
from repro.core.compile import (
    CompiledChain,
    CompiledGroup,
    CompiledPlan,
    compile_chain,
)
from repro.core.engine import (
    AllJobsFailed,
    AutoExecutor,
    DistributedExecutor,
    ExecutionEngine,
    ExecutionPlan,
    Executor,
    FailurePolicy,
    JobFailure,
    ParallelExecutor,
    PrefixCache,
    PrefixCacheStats,
    SerialExecutor,
    pipeline_prefix_key,
    resolve_executor,
)
from repro.core.procpool import (
    ProcessExecutor,
    SharedArraySpec,
    ShmDataPlane,
    WorkerBatchError,
    WorkerJobError,
    active_shared_segments,
)
from repro.core.evaluation import (
    EvaluationJob,
    EvaluationReport,
    GraphEvaluator,
    PipelineResult,
    rekey_job,
)
from repro.core.graph import (
    GraphValidationError,
    Stage,
    StageOption,
    TransformerEstimatorGraph,
)
from repro.core.params import ParamGrid, applicable_grid, expand_grid
from repro.core.spec import cv_spec
from repro.core.registry import (
    component_from_spec,
    pipeline_from_spec,
    register_component,
    registered_components,
)
from repro.core.search import RandomizedGraphSearch, SuccessiveHalvingSearch
from repro.core.pipeline import Pipeline, make_pipeline
from repro.core.spec import (
    component_spec,
    computation_spec,
    dataset_fingerprint,
    pipeline_spec,
    spec_key,
)
from repro.core.visualize import describe, to_ascii, to_dot

__all__ = [
    "TransformerEstimatorGraph",
    "Stage",
    "StageOption",
    "GraphValidationError",
    "Pipeline",
    "make_pipeline",
    "ParamGrid",
    "applicable_grid",
    "expand_grid",
    "GraphEvaluator",
    "RandomizedGraphSearch",
    "SuccessiveHalvingSearch",
    "EvaluationJob",
    "EvaluationReport",
    "PipelineResult",
    "rekey_job",
    "ExecutionEngine",
    "ExecutionPlan",
    "FailurePolicy",
    "JobFailure",
    "AllJobsFailed",
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "ProcessExecutor",
    "AutoExecutor",
    "DistributedExecutor",
    "CompiledChain",
    "CompiledGroup",
    "CompiledPlan",
    "compile_chain",
    "SharedArraySpec",
    "ShmDataPlane",
    "WorkerJobError",
    "WorkerBatchError",
    "active_shared_segments",
    "PrefixCache",
    "PrefixCacheStats",
    "pipeline_prefix_key",
    "resolve_executor",
    "cv_spec",
    "component_spec",
    "pipeline_spec",
    "computation_spec",
    "spec_key",
    "register_component",
    "component_from_spec",
    "pipeline_from_spec",
    "registered_components",
    "run_structured_task",
    "StructuredTaskOutcome",
    "resolve_option",
    "OPTION_FACTORIES",
    "dataset_fingerprint",
    "prepare_regression_graph",
    "prepare_classification_graph",
    "describe",
    "to_ascii",
    "to_dot",
]
