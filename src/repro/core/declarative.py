"""Declarative structured analytics tasks (paper Section III).

"Our system implements a pre-defined set of methods for various steps in
data analytics, including data cleansing, outlier detection, data
imputation, model training, and model testing.  Users can specify the
options that they want for each step, as well as the input parameters
and output results to collect.  The system will then run the appropriate
data analytics calculations and optionally store the results in the data
analytics results repository (DARR)."

:func:`run_structured_task` is that interface: the task is a plain
dictionary naming the options per step (no component imports needed —
options are resolved through named factories), the system builds the
Transformer-Estimator Graph, evaluates it, optionally publishes every
result to a DARR, and reports the winner with a held-out test score.

Example::

    task = {
        "task": "regression",
        "steps": {
            "imputation": ["mean"],
            "scaling": ["standard", "minmax", "none"],
            "feature_selection": [{"name": "select_k_best", "k": 4}, "none"],
            "models": ["decision_tree", "random_forest", "linear"],
        },
        "cv": {"strategy": "kfold", "k": 5},
        "metric": "rmse",
        "test_size": 0.25,
    }
    outcome = run_structured_task(task, X, y)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.core.evaluation import EvaluationReport, GraphEvaluator
from repro.core.graph import TransformerEstimatorGraph
from repro.ml.model_selection.cross_validate import resolve_metric
from repro.ml.model_selection.splits import resolve_splitter

__all__ = [
    "OPTION_FACTORIES",
    "StructuredTaskOutcome",
    "resolve_option",
    "run_structured_task",
]


def _factories() -> Dict[str, Dict[str, Callable[..., Any]]]:
    """Named option factories per step kind (lazy imports keep startup
    light)."""
    from repro.ml.cluster import DBSCAN, KMeans
    from repro.ml.decomposition import LDA, PCA, Covariance, KernelPCA
    from repro.ml.ensemble import (
        GradientBoostingClassifier,
        GradientBoostingRegressor,
        RandomForestClassifier,
        RandomForestRegressor,
    )
    from repro.ml.feature_selection import SelectKBest, VarianceThreshold
    from repro.ml.linear import (
        LinearRegression,
        LogisticRegression,
        RidgeRegression,
    )
    from repro.ml.neighbors import KNeighborsClassifier, KNeighborsRegressor
    from repro.ml.preprocessing import (
        IterativeImputer,
        KBinsDiscretizer,
        KNNImputer,
        MatrixFactorizationImputer,
        MinMaxScaler,
        NoOp,
        OneHotEncoder,
        OutlierClipper,
        PolynomialFeatures,
        RobustScaler,
        SimpleImputer,
        StandardScaler,
    )
    from repro.ml.svm import LinearSVC, LinearSVR
    from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor
    from repro.nn.estimators import DNNRegressor

    return {
        "imputation": {
            "mean": lambda **kw: SimpleImputer(strategy="mean", **kw),
            "median": lambda **kw: SimpleImputer(strategy="median", **kw),
            "mode": lambda **kw: SimpleImputer(strategy="mode", **kw),
            "knn": KNNImputer,
            "mice": IterativeImputer,
            "matrix_factorization": MatrixFactorizationImputer,
            "none": NoOp,
        },
        "outliers": {
            "clip": OutlierClipper,
            "none": NoOp,
        },
        "scaling": {
            "standard": StandardScaler,
            "minmax": MinMaxScaler,
            "robust": RobustScaler,
            "none": NoOp,
        },
        "feature_engineering": {
            "polynomial": PolynomialFeatures,
            "one_hot": OneHotEncoder,
            "binning": KBinsDiscretizer,
            "none": NoOp,
        },
        "feature_selection": {
            "select_k_best": SelectKBest,
            "variance_threshold": VarianceThreshold,
            "pca": PCA,
            "kernel_pca": KernelPCA,
            "lda": LDA,
            "covariance": Covariance,
            "none": NoOp,
        },
        "models": {
            # regression
            "linear": LinearRegression,
            "ridge": RidgeRegression,
            "decision_tree": DecisionTreeRegressor,
            "random_forest": RandomForestRegressor,
            "gradient_boosting": GradientBoostingRegressor,
            "knn": KNeighborsRegressor,
            "neural_net": DNNRegressor,
            "svr": LinearSVR,
            # classification
            "logistic": LogisticRegression,
            "decision_tree_classifier": DecisionTreeClassifier,
            "random_forest_classifier": RandomForestClassifier,
            "gradient_boosting_classifier": GradientBoostingClassifier,
            "knn_classifier": KNeighborsClassifier,
            "svc": LinearSVC,
            # clustering (for completeness)
            "kmeans": KMeans,
            "dbscan": DBSCAN,
        },
    }


#: Public view of the named options per step.
OPTION_FACTORIES: Dict[str, Dict[str, Callable[..., Any]]] = {}


def _ensure_factories() -> Dict[str, Dict[str, Callable[..., Any]]]:
    if not OPTION_FACTORIES:
        OPTION_FACTORIES.update(_factories())
    return OPTION_FACTORIES


OptionSpec = Union[str, Mapping[str, Any]]


def resolve_option(step: str, option: OptionSpec) -> Any:
    """Build one component from a named option.

    Parameters
    ----------
    step:
        Step name (``"scaling"``, ``"selection"``, ``"models"``, …).
    option:
        A name (``"standard"``) or a dict with ``"name"`` plus
        constructor parameters (``{"name": "select_k_best", "k": 4}``).

    Returns
    -------
    A fresh component instance built from the step's factory table.
    """
    factories = _ensure_factories()
    if step not in factories:
        raise KeyError(
            f"unknown step {step!r}; steps: {sorted(factories)}"
        )
    if isinstance(option, str):
        name, params = option, {}
    else:
        option = dict(option)
        try:
            name = option.pop("name")
        except KeyError:
            raise ValueError(
                f"option dict for step {step!r} needs a 'name' key"
            ) from None
        params = option
    try:
        factory = factories[step][name]
    except KeyError:
        raise KeyError(
            f"unknown option {name!r} for step {step!r}; available: "
            f"{sorted(factories[step])}"
        ) from None
    return factory(**params)


@dataclass
class StructuredTaskOutcome:
    """Everything a structured-task run produces."""

    report: EvaluationReport
    best_model: Any
    best_path: Optional[str]
    best_cv_score: Optional[float]
    test_score: Optional[float]
    metric: str
    graph: TransformerEstimatorGraph
    published: int = 0

    def summary(self) -> Dict[str, Any]:
        """One-dict digest of the run (paths, scores, DARR activity)."""
        return {
            "best_path": self.best_path,
            "cv_score": self.best_cv_score,
            "test_score": self.test_score,
            "metric": self.metric,
            "pipelines_evaluated": len(self.report.results),
            "published_to_darr": self.published,
        }


_STEP_ORDER = (
    "imputation",
    "outliers",
    "scaling",
    "feature_engineering",
    "feature_selection",
    "models",
)


def run_structured_task(
    task: Mapping[str, Any],
    X: Any,
    y: Any,
    darr: Any = None,
    client: str = "structured-task",
) -> StructuredTaskOutcome:
    """Run a declarative analytics task end to end.

    Parameters
    ----------
    task:
        Dict with ``"steps"`` (step name -> list of option specs; the
        ``"models"`` step is required), optional ``"cv"``
        (``{"strategy": ..., "k": ...}``), ``"metric"`` and
        ``"test_size"`` (held-out fraction for final model testing; 0
        disables the holdout).
    darr:
        Optional :class:`~repro.darr.repository.DARR`; every evaluated
        result is published, and already-published results are reused —
        the structured interface composes with cooperation unchanged.

    Returns
    -------
    A :class:`StructuredTaskOutcome` with the evaluation report, the
    fitted best model, its path, and the holdout test score (if any).
    """
    steps: Mapping[str, Sequence[OptionSpec]] = task.get("steps") or {}
    if "models" not in steps or not steps["models"]:
        raise ValueError("task['steps'] must include a non-empty 'models' list")
    unknown = set(steps) - set(_STEP_ORDER)
    if unknown:
        raise ValueError(
            f"unknown steps {sorted(unknown)}; valid: {list(_STEP_ORDER)}"
        )

    graph = TransformerEstimatorGraph(name=task.get("name", "structured_task"))
    for step in _STEP_ORDER:
        options = steps.get(step)
        if not options:
            continue
        components = [resolve_option(step, option) for option in options]
        graph.add_stage(step, components)
    graph.create_graph()

    cv_spec = dict(task.get("cv") or {"strategy": "kfold", "k": 5})
    strategy = cv_spec.pop("strategy", "kfold")
    if "k" in cv_spec:
        cv_spec["n_splits"] = cv_spec.pop("k")
    cv = resolve_splitter(strategy, **cv_spec)
    metric = task.get("metric", "rmse")
    metric_name, metric_fn, _ = resolve_metric(metric)

    # Optional held-out split for final model *testing* (paper: "Once a
    # model has been trained, it has to be tested on data").
    test_size = float(task.get("test_size", 0.0))
    X = np.asarray(X, dtype=float)
    y = np.asarray(y)
    if test_size > 0.0:
        if not test_size < 1.0:
            raise ValueError("test_size must be in [0, 1)")
        n_test = max(1, int(round(test_size * len(X))))
        rng = np.random.default_rng(task.get("random_state", 0))
        order = rng.permutation(len(X))
        test_idx, train_idx = order[:n_test], order[n_test:]
        X_train, y_train = X[train_idx], y[train_idx]
        X_test, y_test = X[test_idx], y[test_idx]
    else:
        X_train, y_train = X, y
        X_test = y_test = None

    evaluator = GraphEvaluator(graph, cv=cv, metric=metric)
    published = 0
    if darr is not None:
        from repro.darr.coordinator import CooperativeEvaluator

        coop = CooperativeEvaluator(evaluator, darr, client)
        report = coop.evaluate(X_train, y_train)
        published = coop.stats.computed
    else:
        report = evaluator.evaluate(X_train, y_train)

    test_score = None
    if X_test is not None and report.best_model is not None:
        test_score = float(
            metric_fn(y_test, report.best_model.predict(X_test))
        )
    return StructuredTaskOutcome(
        report=report,
        best_model=report.best_model,
        best_path=report.best_path,
        best_cv_score=report.best_score,
        test_score=test_score,
        metric=metric_name,
        graph=graph,
        published=published,
    )
