"""Component registry and pipeline rehydration from specs.

The DARR shares results as canonical specs (paper Section III: results
are stored "along with an explanation of how the results were
achieved").  A consuming client that wants to *use* a shared winner —
not just read its score — must rebuild the pipeline from its spec.
This module maintains a registry of component classes by name and
reconstructs components, pipelines and full computations from the spec
documents produced by :mod:`repro.core.spec`.

All built-in components register automatically; user components can be
added with :func:`register_component`.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Type

from repro.core.pipeline import Pipeline

__all__ = [
    "register_component",
    "resolve_component_class",
    "component_from_spec",
    "pipeline_from_spec",
    "registered_components",
]

_REGISTRY: Dict[str, Type] = {}
_BUILTINS_LOADED = False


def register_component(cls: Type, name: str = None) -> Type:
    """Register a component class for spec rehydration.

    Usable as a decorator.  Re-registering the same class under the same
    name is a no-op; a *different* class under an existing name raises.

    Parameters
    ----------
    cls:
        The component class.
    name:
        Registry name (default: the class name, which is what specs
        record).

    Returns
    -------
    ``cls`` unchanged, so the decorator form composes.
    """
    key = name or cls.__name__
    existing = _REGISTRY.get(key)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"component name {key!r} already registered to "
            f"{existing.__module__}.{existing.__name__}"
        )
    _REGISTRY[key] = cls
    return cls


def registered_components() -> Dict[str, Type]:
    """Snapshot of the registry.

    Returns
    -------
    A fresh ``{name: class}`` dict (built-ins loaded on first call).
    """
    _ensure_builtins()
    return dict(_REGISTRY)


def resolve_component_class(name: str) -> Type:
    """Look up a component class by spec class name."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown component class {name!r}; register it with "
            "repro.core.registry.register_component"
        ) from None


def _decode_param(value: Any) -> Any:
    """Inverse of :func:`repro.core.spec._jsonable` for rebuildable
    values; callable/repr placeholders raise (they are descriptive
    only)."""
    if isinstance(value, Mapping):
        if "__ndarray__" in value:
            import numpy as np

            return np.asarray(value["__ndarray__"])
        if "class" in value and "params" in value:
            return component_from_spec(value)
        if "__callable__" in value or "__repr__" in value:
            raise ValueError(
                f"parameter value {value} is not rehydratable (callable "
                "or opaque repr); share named options instead"
            )
        return {k: _decode_param(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode_param(v) for v in value]
    return value


def component_from_spec(spec: Mapping[str, Any]) -> Any:
    """Instantiate a component from its spec document.

    Parameters
    ----------
    spec:
        ``{"class": ..., "params": {...}}`` as produced by
        :func:`repro.core.spec.component_spec`.

    Returns
    -------
    A fresh, unfitted component instance.
    """
    cls = resolve_component_class(spec["class"])
    params = {
        name: _decode_param(value)
        for name, value in spec.get("params", {}).items()
    }
    # Drop fitted-state attributes that are not constructor parameters
    # (specs only ever contain constructor params, but be permissive).
    return cls(**params)


def pipeline_from_spec(spec: Mapping[str, Any]) -> Pipeline:
    """Rebuild an unfitted :class:`Pipeline` from a pipeline spec.

    Parameters
    ----------
    spec:
        A computation spec (its ``"pipeline"`` entry is used) or a bare
        pipeline spec document.

    Returns
    -------
    The reconstructed unfitted pipeline, step names preserved.
    """
    if "pipeline" in spec:
        spec = spec["pipeline"]
    steps = [
        (step["name"], component_from_spec(step))
        for step in spec["steps"]
    ]
    return Pipeline(steps)


def _ensure_builtins() -> None:
    """Populate the registry with every built-in component (idempotent)."""
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    from repro.ml import cluster, decomposition, ensemble, linear, neighbors
    from repro.ml import feature_selection, preprocessing, tree
    from repro.nn import estimators as nn_estimators
    from repro.timeseries import models as ts_models
    from repro.timeseries import windows as ts_windows

    modules = [
        preprocessing,
        feature_selection,
        decomposition,
        linear,
        tree,
        ensemble,
        neighbors,
        cluster,
        nn_estimators,
        ts_models,
        ts_windows,
    ]
    from repro.ml.base import BaseComponent

    for module in modules:
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name, None)
            if isinstance(obj, type) and issubclass(obj, BaseComponent):
                _REGISTRY.setdefault(name, obj)
    _BUILTINS_LOADED = True
