"""The Transformer-Estimator Graph (paper Section IV).

"A Transformer-Estimator Graph, denoted as G(V, E), is a directed acyclic
rooted graph (DAG) ...  Each vertex v_i in the graph represents a
meaningful AI/ML operation to be performed on the in-coming data, and
edge e_i in the graph represents data/function flow between vertices."

A graph is a sequence of *stages*; each stage offers multiple *options*
(a single component, or a chain of components as in Listing 1's
``[Covariance(), PCA()]``).  Consecutive stages are fully connected by
default; :meth:`TransformerEstimatorGraph.restrict_edges` installs the
selective wiring the time-series graph of Fig. 11 needs
("The CascadedWindows is connected to the TemporalDNNs, the
FlatWindowing and TS-as-IID are connected to StandardDNNs and finally
the TS-as-is is connected to Statistical models").

Every root→leaf path is a :class:`repro.core.pipeline.Pipeline`; the
Fig. 3 example (4 scalers x 3 selectors x 3 models) yields exactly 36.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.ml.base import clone
from repro.core.pipeline import Pipeline

__all__ = ["StageOption", "Stage", "TransformerEstimatorGraph", "GraphValidationError"]

ROOT = "Input"


class GraphValidationError(ValueError):
    """Raised when a graph is structurally unusable (empty stages, broken
    wiring, missing estimator stage)."""


@dataclass(frozen=True)
class StageOption:
    """One selectable option within a stage.

    ``components`` is a tuple: usually one component, but chains such as
    ``[Covariance(), PCA()]`` become a multi-component option that expands
    to consecutive pipeline nodes.
    """

    name: str
    components: Tuple[Any, ...]

    def steps(self) -> List[Tuple[str, Any]]:
        """Pipeline steps contributed by this option, cloned so pipelines
        never share mutable component state with the graph template."""
        if len(self.components) == 1:
            return [(self.name, clone(self.components[0]))]
        return [
            (f"{self.name}.{i}_{type(c).__name__.lower()}", clone(c))
            for i, c in enumerate(self.components)
        ]

    def label(self) -> str:
        """Human-readable class-name label (``A+B`` for chains)."""
        if len(self.components) == 1:
            return type(self.components[0]).__name__
        return "+".join(type(c).__name__ for c in self.components)


@dataclass
class Stage:
    """A named stage holding its options in declaration order."""

    name: str
    options: List[StageOption] = field(default_factory=list)

    def option_names(self) -> List[str]:
        """Names of this stage's options, in declaration order."""
        return [option.name for option in self.options]

    def get_option(self, name: str) -> StageOption:
        """Look up an option by name; raises ``KeyError`` with the valid
        names on a miss."""
        for option in self.options:
            if option.name == name:
                return option
        raise KeyError(
            f"stage {self.name!r} has no option {name!r}; "
            f"options: {self.option_names()}"
        )


def _auto_option_name(components: Sequence[Any], taken: Set[str]) -> str:
    if len(components) == 1:
        base = type(components[0]).__name__.lower()
    else:
        base = "+".join(type(c).__name__.lower() for c in components)
    name = base
    suffix = 2
    while name in taken:
        name = f"{base}_{suffix}"
        suffix += 1
    return name


class TransformerEstimatorGraph:
    """A staged DAG of transformer/estimator options.

    Typical construction follows Listing 1::

        task = TransformerEstimatorGraph()
        task.add_feature_scalers([MinMaxScaler(), StandardScaler(),
                                  RobustScaler(), NoOp()])
        task.add_feature_selector([[Covariance(), PCA()], SelectKBest(),
                                   NoOp()])
        task.add_regression_models([DecisionTreeRegressor(),
                                    MLPRegressor(), RandomForestRegressor()])
        task.create_graph()

    Evaluation (Listing 2) lives on
    :class:`repro.core.evaluation.GraphEvaluator`; the convenience
    methods ``set_cross_validation`` / ``set_accuracy`` / ``execute`` on
    this class delegate to it.

    Parameters
    ----------
    name:
        Task name, used in rendered views of the graph.
    """

    def __init__(self, name: str = "task"):
        self.name = name
        self.stages: List[Stage] = []
        # (stage_index -> set of (src_option, dst_option)); absent means
        # full mesh between stage i and stage i+1.
        self._edges: Dict[int, Set[Tuple[str, str]]] = {}
        self._option_names: Set[str] = set()
        # Listing-2 evaluation settings
        self._cv: Any = None
        self._metric: Any = None

    # -- construction -------------------------------------------------------
    def add_stage(
        self,
        stage_name: str,
        options: Sequence[Any],
        option_names: Optional[Sequence[str]] = None,
    ) -> "TransformerEstimatorGraph":
        """Append a stage.

        ``options`` items are components or lists of components (chains).
        ``option_names`` overrides auto-generated names; names must be
        unique across the whole graph because they are the
        ``name__param`` handles.
        """
        if not options:
            raise GraphValidationError(
                f"stage {stage_name!r} needs at least one option"
            )
        if any(stage.name == stage_name for stage in self.stages):
            raise GraphValidationError(f"duplicate stage name {stage_name!r}")
        if option_names is not None and len(option_names) != len(options):
            raise GraphValidationError(
                "option_names must match options in length"
            )
        stage = Stage(stage_name)
        for index, raw in enumerate(options):
            components = tuple(raw) if isinstance(raw, (list, tuple)) else (raw,)
            if not components:
                raise GraphValidationError(
                    f"stage {stage_name!r} option {index} is an empty chain"
                )
            if option_names is not None:
                name = option_names[index]
                if name in self._option_names:
                    raise GraphValidationError(
                        f"duplicate option name {name!r}"
                    )
            else:
                name = _auto_option_name(components, self._option_names)
            self._option_names.add(name)
            stage.options.append(StageOption(name, components))
        self.stages.append(stage)
        return self

    # Listing-1 convenience methods -----------------------------------------
    def add_feature_scalers(self, scalers: Sequence[Any]) -> "TransformerEstimatorGraph":
        """Listing 1: ``add_feature_scalers([...])``."""
        return self.add_stage("feature_scaling", scalers)

    def add_feature_selector(self, selectors: Sequence[Any]) -> "TransformerEstimatorGraph":
        """Listing 1: ``add_feature_selector([...])``."""
        return self.add_stage("feature_selection", selectors)

    def add_feature_transformers(self, transformers: Sequence[Any]) -> "TransformerEstimatorGraph":
        """Table I's feature-transformation stage (PCA/kernel-PCA/LDA)."""
        return self.add_stage("feature_transformation", transformers)

    def add_regression_models(self, models: Sequence[Any]) -> "TransformerEstimatorGraph":
        """Listing 1: ``add_regression_models([...])``."""
        return self.add_stage("regression_models", models)

    def add_classification_models(self, models: Sequence[Any]) -> "TransformerEstimatorGraph":
        """Classification twin of ``add_regression_models``."""
        return self.add_stage("classification_models", models)

    # -- wiring ---------------------------------------------------------------
    def restrict_edges(
        self,
        from_stage: str,
        to_stage: str,
        pairs: Sequence[Tuple[str, str]],
    ) -> "TransformerEstimatorGraph":
        """Replace the default full mesh between two *adjacent* stages
        with explicit ``(src_option, dst_option)`` pairs — the selective
        wiring of Fig. 11."""
        index = self._stage_index(from_stage)
        if index + 1 >= len(self.stages) or self.stages[index + 1].name != to_stage:
            raise GraphValidationError(
                f"stages {from_stage!r} and {to_stage!r} are not adjacent"
            )
        src_names = set(self.stages[index].option_names())
        dst_names = set(self.stages[index + 1].option_names())
        validated: Set[Tuple[str, str]] = set()
        for src, dst in pairs:
            if src not in src_names:
                raise GraphValidationError(
                    f"unknown source option {src!r} in stage {from_stage!r}"
                )
            if dst not in dst_names:
                raise GraphValidationError(
                    f"unknown destination option {dst!r} in stage {to_stage!r}"
                )
            validated.add((src, dst))
        if not validated:
            raise GraphValidationError("pairs must not be empty")
        self._edges[index] = validated
        return self

    def _stage_index(self, stage_name: str) -> int:
        for index, stage in enumerate(self.stages):
            if stage.name == stage_name:
                return index
        raise GraphValidationError(
            f"unknown stage {stage_name!r}; stages: "
            f"{[s.name for s in self.stages]}"
        )

    def _edge_pairs(self, index: int) -> Set[Tuple[str, str]]:
        """Edges from stage ``index`` to ``index + 1`` (full mesh unless
        restricted)."""
        if index in self._edges:
            return self._edges[index]
        return {
            (src.name, dst.name)
            for src in self.stages[index].options
            for dst in self.stages[index + 1].options
        }

    # -- validation & materialization ---------------------------------------
    def validate(self) -> None:
        """Check the graph is a usable rooted DAG: at least one stage,
        a final estimator stage, and every option reachable-from-root and
        co-reachable-to-a-leaf under the installed wiring."""
        if not self.stages:
            raise GraphValidationError("graph has no stages")
        for option in self.stages[-1].options:
            final = option.components[-1]
            if not (hasattr(final, "fit") and hasattr(final, "predict")):
                raise GraphValidationError(
                    f"final-stage option {option.name!r} must end in an "
                    "estimator (fit + predict)"
                )
        for stage in self.stages[:-1]:
            for option in stage.options:
                for component in option.components:
                    if not (
                        hasattr(component, "fit")
                        and hasattr(component, "transform")
                    ):
                        raise GraphValidationError(
                            f"option {option.name!r} in stage "
                            f"{stage.name!r} must be a transformer "
                            "(fit + transform)"
                        )
        # Reachability under restricted wiring.
        reachable: Set[str] = set(self.stages[0].option_names())
        for index in range(len(self.stages) - 1):
            pairs = self._edge_pairs(index)
            next_reachable = {
                dst for src, dst in pairs if src in reachable
            }
            if not next_reachable:
                raise GraphValidationError(
                    f"no path crosses from stage "
                    f"{self.stages[index].name!r} to "
                    f"{self.stages[index + 1].name!r}"
                )
            reachable = next_reachable

    def create_graph(self) -> nx.DiGraph:
        """Materialize the DAG as a ``networkx.DiGraph`` rooted at
        ``Input`` (Listing 1's final ``create_graph`` call, used for
        visual inspection via :mod:`repro.core.visualize`)."""
        self.validate()
        graph = nx.DiGraph(name=self.name)
        graph.add_node(ROOT, kind="root", stage=None)
        for stage in self.stages:
            for option in stage.options:
                graph.add_node(
                    option.name,
                    kind="option",
                    stage=stage.name,
                    label=option.label(),
                )
        for option in self.stages[0].options:
            graph.add_edge(ROOT, option.name)
        for index in range(len(self.stages) - 1):
            for src, dst in sorted(self._edge_pairs(index)):
                graph.add_edge(src, dst)
        if not nx.is_directed_acyclic_graph(graph):
            raise GraphValidationError("graph contains a cycle")
        return graph

    # -- pipeline enumeration -------------------------------------------------
    def iter_paths(self) -> Iterator[Tuple[StageOption, ...]]:
        """Yield every root→leaf option path in deterministic order."""
        self.validate()

        def extend(index: int, prefix: Tuple[StageOption, ...]):
            if index == len(self.stages):
                yield prefix
                return
            if index == 0:
                allowed = self.stages[0].option_names()
            else:
                pairs = self._edge_pairs(index - 1)
                previous = prefix[-1].name
                allowed = [dst for src, dst in sorted(pairs) if src == previous]
            for name in allowed:
                option = self.stages[index].get_option(name)
                yield from extend(index + 1, prefix + (option,))

        yield from extend(0, ())

    def pipelines(self) -> List[Pipeline]:
        """Every path as an independent, unfitted
        :class:`~repro.core.pipeline.Pipeline`."""
        result = []
        for path in self.iter_paths():
            steps: List[Tuple[str, Any]] = []
            for option in path:
                steps.extend(option.steps())
            result.append(Pipeline(steps))
        return result

    @property
    def n_pipelines(self) -> int:
        """Total path count (36 for the paper's Fig. 3 example)."""
        counts = {name: 1 for name in self.stages[-1].option_names()}
        for index in range(len(self.stages) - 2, -1, -1):
            pairs = self._edge_pairs(index)
            new_counts = {name: 0 for name in self.stages[index].option_names()}
            for src, dst in pairs:
                new_counts[src] += counts.get(dst, 0)
            counts = new_counts
        return sum(counts.values())

    # -- Listing 2 evaluation API ----------------------------------------------
    def set_cross_validation(self, k: int = 10, strategy: str = "kfold", **kwargs) -> "TransformerEstimatorGraph":
        """Listing 2: ``Task.set_cross_validation(k=10)``."""
        from repro.ml.model_selection.splits import resolve_splitter

        self._cv = resolve_splitter(strategy, n_splits=k, **kwargs)
        return self

    def set_accuracy(self, metric: str) -> "TransformerEstimatorGraph":
        """Listing 2: ``Task.set_accuracy('f1-score')``."""
        self._metric = metric
        return self

    def execute(
        self,
        X: Any,
        y: Any,
        param_grid: Optional[Dict] = None,
        engine: Any = None,
    ):
        """Listing 2's "Execute Task": evaluate every pipeline and return
        ``(model, best_score, best_path)`` where ``model`` is the winning
        pipeline refitted on all of ``(X, y)``.  ``engine`` selects how
        jobs run (e.g. ``engine="parallel"``); see
        :class:`repro.core.engine.ExecutionEngine`."""
        from repro.core.evaluation import GraphEvaluator

        evaluator = GraphEvaluator(
            self,
            cv=self._cv,
            metric=self._metric or "rmse",
            engine=engine,
        )
        report = evaluator.evaluate(X, y, param_grid=param_grid)
        return report.best_model, report.best_score, report.best_path
