"""Ready-made graph builders (paper Listing 1 and Table I).

:func:`prepare_regression_graph` reproduces Listing 1 / Fig. 3 exactly:
4 feature scalers x 3 feature selectors x 3 regression models = 36
pipelines.  (The paper's ``MLPRegressor`` maps to our
:class:`repro.nn.estimators.DNNRegressor`, the same multilayer-perceptron
architecture.)  :func:`prepare_classification_graph` is the
classification twin used by the solution templates.
"""

from __future__ import annotations

from typing import Optional

from repro.core.graph import TransformerEstimatorGraph
from repro.ml.decomposition import PCA, Covariance
from repro.ml.ensemble import RandomForestClassifier, RandomForestRegressor
from repro.ml.feature_selection import SelectKBest
from repro.ml.linear import LogisticRegression
from repro.ml.preprocessing import (
    MinMaxScaler,
    NoOp,
    RobustScaler,
    StandardScaler,
)
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor
from repro.nn.estimators import DNNRegressor

__all__ = ["prepare_regression_graph", "prepare_classification_graph"]


def prepare_regression_graph(
    k_best: int = 10,
    n_components: Optional[int] = None,
    random_state: Optional[int] = 0,
    fast: bool = False,
) -> TransformerEstimatorGraph:
    """Listing 1's ``prepare_graph`` — the Fig. 3 regression graph.

    Stages: feature scaling (MinMax / Standard / Robust / NoOp), feature
    selection ([Covariance, PCA] / SelectKBest / NoOp), regression models
    (DecisionTree / MLP-style DNN / RandomForest).  36 pipelines total.

    Parameters
    ----------
    k_best:
        ``k`` for the SelectKBest option.
    n_components:
        Component count for the PCA option (``None`` keeps all).
    random_state:
        Seed shared by the stochastic models.
    fast:
        Shrink the model budgets (forest size, DNN epochs) for tests
        and benchmarks without changing the graph shape.

    Returns
    -------
    The validated :class:`TransformerEstimatorGraph` (graph created).
    """
    n_estimators = 10 if fast else 50
    epochs = 10 if fast else 40
    task = TransformerEstimatorGraph(name="regression_task")
    task.add_feature_scalers(
        [MinMaxScaler(), StandardScaler(), RobustScaler(), NoOp()]
    )
    task.add_feature_selector(
        [
            [Covariance(), PCA(n_components=n_components)],
            SelectKBest(k=k_best),
            NoOp(),
        ]
    )
    task.add_regression_models(
        [
            DecisionTreeRegressor(max_depth=8, random_state=random_state),
            DNNRegressor(
                architecture="simple",
                epochs=epochs,
                random_state=random_state,
            ),
            RandomForestRegressor(
                n_estimators=n_estimators, random_state=random_state
            ),
        ]
    )
    task.create_graph()
    return task


def prepare_classification_graph(
    k_best: int = 10,
    random_state: Optional[int] = 0,
    fast: bool = False,
) -> TransformerEstimatorGraph:
    """Classification counterpart used by the FPA/anomaly templates:
    same scaling/selection stages, classifier model stage.

    Parameters
    ----------
    k_best:
        ``k`` for the SelectKBest option.
    random_state:
        Seed shared by the stochastic models.
    fast:
        Shrink the model budgets for tests and benchmarks.

    Returns
    -------
    The validated :class:`TransformerEstimatorGraph` (graph created).
    """
    n_estimators = 10 if fast else 50
    task = TransformerEstimatorGraph(name="classification_task")
    task.add_feature_scalers(
        [MinMaxScaler(), StandardScaler(), RobustScaler(), NoOp()]
    )
    task.add_feature_selector([SelectKBest(k=k_best), NoOp()])
    task.add_classification_models(
        [
            DecisionTreeClassifier(max_depth=8, random_state=random_state),
            RandomForestClassifier(
                n_estimators=n_estimators, random_state=random_state
            ),
            LogisticRegression(class_weight="balanced"),
        ]
    )
    task.create_graph()
    return task
