"""Graph rendering: DOT and ASCII views of a Transformer-Estimator Graph.

Listing 1 ends with ``create_graph`` generating "a graph for visual
inspection.  The output would be similar to Figure 3."  Matplotlib is not
assumed; :func:`to_dot` emits Graphviz source and :func:`to_ascii` prints
a stage-by-stage view with the wiring, which is enough to inspect graphs
in a terminal or notebook.
"""

from __future__ import annotations

from typing import List

from repro.core.graph import ROOT, TransformerEstimatorGraph

__all__ = ["to_dot", "to_ascii", "describe"]


def to_dot(graph: TransformerEstimatorGraph) -> str:
    """Graphviz DOT source for the graph.

    Parameters
    ----------
    graph:
        The graph to render (``create_graph`` is called if needed).

    Returns
    -------
    DOT source with one ranked cluster per stage.
    """
    g = graph.create_graph()
    lines: List[str] = [
        f'digraph "{graph.name}" {{',
        "  rankdir=LR;",
        '  node [shape=box, style=rounded];',
        f'  "{ROOT}" [shape=ellipse];',
    ]
    for index, stage in enumerate(graph.stages):
        lines.append(f"  subgraph cluster_{index} {{")
        lines.append(f'    label="{stage.name}";')
        for option in stage.options:
            lines.append(f'    "{option.name}" [label="{option.label()}"];')
        lines.append("  }")
    for src, dst in sorted(g.edges()):
        lines.append(f'  "{src}" -> "{dst}";')
    lines.append("}")
    return "\n".join(lines)


def to_ascii(graph: TransformerEstimatorGraph) -> str:
    """Terminal-friendly rendering of a validated graph.

    Parameters
    ----------
    graph:
        The graph to render (validated first).

    Returns
    -------
    A multi-line string: one block per stage with options and
    non-default wiring annotations, ending with the path count.
    """
    graph.validate()
    lines: List[str] = [f"TransformerEstimatorGraph {graph.name!r}"]
    lines.append(f"[{ROOT}]")
    for index, stage in enumerate(graph.stages):
        lines.append("   |")
        lines.append(f"   v  stage {index + 1}: {stage.name}")
        for option in stage.options:
            lines.append(f"     - {option.name} ({option.label()})")
        if index < len(graph.stages) - 1 and index in graph._edges:
            lines.append("     wiring ->")
            for src, dst in sorted(graph._edges[index]):
                lines.append(f"       {src} -> {dst}")
    lines.append(f"paths: {graph.n_pipelines}")
    return "\n".join(lines)


def describe(graph: TransformerEstimatorGraph) -> str:
    """One-line summary of a graph.

    Parameters
    ----------
    graph:
        The graph to summarize.

    Returns
    -------
    ``"<name>: N stages (a x b x c options), P pipelines"``.
    """
    sizes = " x ".join(str(len(stage.options)) for stage in graph.stages)
    return (
        f"{graph.name}: {len(graph.stages)} stages ({sizes} options), "
        f"{graph.n_pipelines} pipelines"
    )
