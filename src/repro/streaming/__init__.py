"""Incremental recompute over growing datasets.

The paper's change monitoring (Section III) answers *when* to recompute
analytics; this package answers *what*: after a small data delta, only
the invalidated frontier of the ``(spec, fold)`` matrix is re-executed.
:class:`StreamingEvaluator` appends observations to a home data store,
advances anchored cross-validation folds as data arrives, classifies
each fold as reusable / advance-only (``partial_fit`` warm start) /
cold, and routes only the cold work through the ordinary execution
engine.  A fired drift policy escalates to a full cold sweep.
"""

from repro.streaming.evaluator import StreamingEvaluator
from repro.streaming.folds import FixedFolds, FoldWindow

__all__ = ["StreamingEvaluator", "FixedFolds", "FoldWindow"]
